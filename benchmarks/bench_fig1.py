"""Fig. 1 bench — slowdown-CDF computation over a campaign.

Times the CDF aggregation and regenerates the Fig. 1 checkpoint numbers
(fraction of chains at slowdown <= 1.0 / 1.1 / 1.5) for the balanced budget.
"""

from __future__ import annotations

import pytest

from repro.analysis.slowdown import slowdown_cdf, slowdown_ratios
from repro.core.registry import PAPER_ORDER
from repro.core.types import Resources
from repro.experiments import fig1
from repro.experiments.common import run_campaign

from conftest import SCALE


def test_cdf_computation_speed(benchmark):
    campaign = run_campaign(
        Resources(10, 10), 0.5, num_chains=12 * SCALE, num_tasks=12
    )
    optimal = campaign.optimal_periods
    record = campaign.records["fertac"]

    def build():
        return slowdown_cdf(slowdown_ratios(record.periods, optimal))

    cdf = benchmark(build)
    assert 0.0 <= cdf.fraction_optimal <= 1.0


def test_fig1_checkpoints(benchmark):
    def run():
        return fig1.run(
            num_chains=15 * SCALE,
            budgets=[Resources(10, 10)],
            stateless_ratios=[0.5],
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(fig1.render(result))
    scenario = result.scenarios[0]
    # Shape assertions mirroring the paper's qualitative claims:
    # HeRAD dominates, OTAC (L) never reaches the optimum.
    assert scenario.cdfs["herad"].fraction_optimal == pytest.approx(1.0)
    assert scenario.cdfs["otac_l"].fraction_optimal == 0.0
    for name in PAPER_ORDER:
        benchmark.extra_info[f"{name}_pct_optimal"] = round(
            scenario.cdfs[name].fraction_optimal * 100, 1
        )
