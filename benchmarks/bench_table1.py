"""Table I bench — schedule-quality campaign over the paper's scenarios.

Benchmarks each strategy's scheduling throughput on the paper's chain
distribution and regenerates the Table I statistics rows (at reduced
campaign size; run ``python -m repro table1 --chains 1000`` for the full
population).  The reproduced rows are attached to the benchmark's
``extra_info`` and printed (visible with ``-s``).
"""

from __future__ import annotations

import pytest

from repro.core.registry import PAPER_ORDER, get_info
from repro.core.types import Resources
from repro.experiments import table1

from conftest import SCALE


@pytest.mark.parametrize("strategy", PAPER_ORDER)
def test_strategy_scheduling_rate(benchmark, campaign_chains, strategy):
    """Time one strategy over the shared campaign population."""
    func = get_info(strategy).func
    resources = Resources(10, 10)

    def run_all():
        return [func(profile, resources).period for profile in campaign_chains]

    periods = benchmark(run_all)
    assert len(periods) == len(campaign_chains)
    benchmark.extra_info["strategy"] = strategy
    benchmark.extra_info["chains"] = len(campaign_chains)


@pytest.mark.parametrize("budget", [(16, 4), (10, 10), (4, 16)])
def test_table1_rows(benchmark, budget):
    """Regenerate one Table I row group and attach it to the report."""
    big, little = budget

    def run():
        return table1.run(
            num_chains=15 * SCALE,
            budgets=[Resources(big, little)],
            stateless_ratios=[0.5],
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rendered = table1.render(result)
    print()
    print(rendered)
    scenario = result.scenarios[0]
    benchmark.extra_info["budget"] = f"({big}B,{little}L)"
    for name in PAPER_ORDER:
        stats = scenario.stats[name]
        benchmark.extra_info[f"{name}_pct_opt"] = round(stats.percent_optimal, 1)
        benchmark.extra_info[f"{name}_avg_slowdown"] = round(stats.avg_slowdown, 3)
    # Sanity: HeRAD is the optimum of its own campaign.
    assert scenario.stats["herad"].percent_optimal == 100.0
