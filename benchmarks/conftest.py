"""Shared fixtures for the benchmark harness.

Every paper table/figure has a ``bench_*.py`` module here.  Benchmarks run
at a reduced scale by default (so ``pytest benchmarks/ --benchmark-only``
finishes in minutes on a laptop); the environment variable
``REPRO_BENCH_SCALE`` multiplies the campaign sizes for closer-to-paper
runs, and the CLI (``python -m repro``) regenerates any experiment at full
scale.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.chain_stats import ChainProfile
from repro.workloads.synthetic import GeneratorConfig, random_chain

#: Campaign-size multiplier (1 = quick CI scale).
SCALE = max(1, int(os.environ.get("REPRO_BENCH_SCALE", "1")))


def paper_profiles(num_chains: int, stateless_ratio: float, num_tasks: int = 20, seed: int = 0):
    """Pre-profiled chains from the paper's distribution."""
    rng = np.random.default_rng(seed)
    config = GeneratorConfig(num_tasks=num_tasks, stateless_ratio=stateless_ratio)
    return [ChainProfile(random_chain(rng, config)) for _ in range(num_chains)]


@pytest.fixture(scope="session")
def campaign_chains():
    """A shared small campaign population (SR = 0.5, n = 20)."""
    return paper_profiles(10 * SCALE, 0.5)
