"""Table II bench — DVB-S2 scheduling and throughput reproduction.

Times the scheduling of the real receiver chain per strategy/config and
regenerates the Table II rows (expected period, Sim/Real FPS and Mb/s) with
the calibrated runtime simulation standing in for StreamPU on hardware.
"""

from __future__ import annotations

import pytest

from repro.core.registry import PAPER_ORDER, get_info
from repro.core.types import Resources
from repro.experiments import table2
from repro.experiments.paper_data import PAPER_TABLE2
from repro.platform.presets import MAC_STUDIO, X7_TI
from repro.sdr.dvbs2 import dvbs2_chain

CONFIGS = {
    "mac-half": (MAC_STUDIO, Resources(8, 2)),
    "mac-full": (MAC_STUDIO, Resources(16, 4)),
    "x7-half": (X7_TI, Resources(3, 4)),
    "x7-full": (X7_TI, Resources(6, 8)),
}


@pytest.mark.parametrize("config", CONFIGS)
@pytest.mark.parametrize("strategy", PAPER_ORDER)
def test_dvbs2_scheduling_time(benchmark, strategy, config):
    """Time one strategy on the real 23-task receiver chain."""
    platform, resources = CONFIGS[config]
    chain = dvbs2_chain(platform)
    func = get_info(strategy).func

    outcome = benchmark(func, chain, resources)
    benchmark.extra_info["period_us"] = round(outcome.period, 1)
    paper = next(
        (
            row
            for row in PAPER_TABLE2
            if row.resources == resources
            and row.platform == platform.name
            and row.strategy == get_info(strategy).name
        ),
        None,
    )
    if paper is not None:
        benchmark.extra_info["paper_period_us"] = paper.period_us
        # The expected periods must reproduce the paper's.
        assert outcome.period == pytest.approx(paper.period_us, rel=0.001)


def test_table2_rows(benchmark):
    """Regenerate the full Table II (reduced frame count)."""

    def run():
        return table2.run(num_frames=600)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(table2.render(result))
    for row in result.rows:
        assert row.real_mbps <= row.sim_mbps + 1e-9
    benchmark.extra_info["rows"] = len(result.rows)
