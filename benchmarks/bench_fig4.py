"""Fig. 4 bench — strategy execution times vs core counts.

One benchmark per (strategy, budget) point at fixed n = 20.  Expected
shapes: the greedy strategies stay roughly flat while HeRAD's time grows
with ``b * l * (b + l)``.
"""

from __future__ import annotations

import pytest

from repro.core.registry import get_info
from repro.core.types import Resources

from conftest import paper_profiles

BUDGETS = (Resources(10, 10), Resources(20, 20), Resources(40, 40))


@pytest.mark.parametrize("budget", BUDGETS, ids=lambda r: f"{r.big}x{r.little}")
@pytest.mark.parametrize(
    "strategy", ["fertac", "2catac", "herad", "otac_b", "otac_l"]
)
def test_strategy_time_vs_cores(benchmark, strategy, budget):
    profiles = paper_profiles(5, 0.5, num_tasks=20, seed=1)
    func = get_info(strategy).func

    def run():
        for profile in profiles:
            func(profile, budget)

    benchmark(run)
    benchmark.extra_info["strategy"] = strategy
    benchmark.extra_info["budget"] = str(budget)
