"""Ablation benches for the design choices called out in DESIGN.md.

* vectorized HeRAD vs the literal pseudocode reference (same results,
  orders-of-magnitude speed difference);
* 2CATAC with vs without the memoization extension;
* HeRAD's merge post-pass cost;
* MaxPacking's binary search vs a naive linear scan.
"""

from __future__ import annotations

import pytest

from repro.core.chain_stats import ChainProfile
from repro.core.herad import herad
from repro.core.herad_reference import herad_reference
from repro.core.twocatac import twocatac
from repro.core.types import CoreType, Resources

from conftest import paper_profiles


@pytest.mark.parametrize("impl", ["fast", "reference"])
def test_herad_fast_vs_reference(benchmark, impl):
    profiles = paper_profiles(3, 0.5, num_tasks=10, seed=5)
    resources = Resources(4, 4)

    if impl == "fast":
        run = lambda: [herad(p, resources).period for p in profiles]  # noqa: E731
    else:
        run = lambda: [  # noqa: E731
            herad_reference(p, resources).period(p) for p in profiles
        ]

    periods = benchmark(run)
    benchmark.extra_info["impl"] = impl
    benchmark.extra_info["periods"] = [round(x, 3) for x in periods]


def test_herad_implementations_agree():
    profiles = paper_profiles(5, 0.5, num_tasks=9, seed=6)
    resources = Resources(3, 3)
    for profile in profiles:
        fast = herad(profile, resources, merge=False)
        ref = herad_reference(profile, resources)
        assert fast.period == ref.period(profile)
        assert fast.solution.core_usage() == ref.core_usage()


@pytest.mark.parametrize("memoize", [False, True], ids=["plain", "memoized"])
def test_2catac_memoization(benchmark, memoize):
    profiles = paper_profiles(3, 0.5, num_tasks=20, seed=7)
    resources = Resources(10, 10)

    def run():
        return [
            twocatac(p, resources, memoize=memoize).period for p in profiles
        ]

    periods = benchmark(run)
    benchmark.extra_info["memoize"] = memoize
    benchmark.extra_info["periods"] = [round(x, 3) for x in periods]


@pytest.mark.parametrize("merge", [True, False], ids=["merge", "no-merge"])
def test_herad_merge_cost(benchmark, merge):
    profiles = paper_profiles(3, 0.8, num_tasks=15, seed=8)
    resources = Resources(6, 6)

    def run():
        return [herad(p, resources, merge=merge).period for p in profiles]

    benchmark(run)
    benchmark.extra_info["merge"] = merge


@pytest.mark.parametrize("impl", ["binary-search", "linear-scan"])
def test_max_packing_strategies(benchmark, impl):
    profile = paper_profiles(1, 0.5, num_tasks=160, seed=9)[0]
    period = profile.total_weight(CoreType.BIG) / 20

    def naive(start: int, cores: int) -> int:
        best = start
        for e in range(start, profile.n):
            if profile.stage_weight(start, e, cores, CoreType.BIG) <= period:
                best = e
            elif e > start:
                break
        return best

    if impl == "binary-search":
        run = lambda: [  # noqa: E731
            profile.max_packing(s, 2, CoreType.BIG, period)
            for s in range(profile.n)
        ]
    else:
        run = lambda: [naive(s, 2) for s in range(profile.n)]  # noqa: E731

    results = benchmark(run)
    benchmark.extra_info["impl"] = impl
    # Both implementations agree.
    expected = [
        profile.max_packing(s, 2, CoreType.BIG, period)
        for s in range(profile.n)
    ]
    assert results == expected
