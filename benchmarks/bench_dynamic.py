"""Ablation bench: static pipeline schedules vs dynamic per-task dispatch.

Quantifies the paper's Section II argument against dynamic runtime
schedulers at SDR task granularity: sweep the per-dispatch overhead of a
HEFT-flavoured dynamic list scheduler on the DVB-S2 receiver and report the
crossover against HeRAD's static pipeline.
"""

from __future__ import annotations

import pytest

from repro.core.herad import herad
from repro.core.types import Resources
from repro.sdr.dvbs2 import dvbs2_mac_studio_chain
from repro.streampu.dynamic import simulate_dynamic_scheduler

RESOURCES = Resources(8, 2)


@pytest.fixture(scope="module")
def static_period():
    return herad(dvbs2_mac_studio_chain(), RESOURCES).period


@pytest.mark.parametrize("overhead_us", [0.0, 20.0, 100.0, 500.0])
def test_dynamic_scheduler_overhead_sweep(benchmark, overhead_us, static_period):
    chain = dvbs2_mac_studio_chain()

    def run():
        return simulate_dynamic_scheduler(
            chain, RESOURCES, num_frames=200, dispatch_overhead=overhead_us
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["dispatch_overhead_us"] = overhead_us
    benchmark.extra_info["dynamic_period_us"] = round(result.measured_period, 1)
    benchmark.extra_info["static_period_us"] = round(static_period, 1)
    if overhead_us == 0.0:
        # Full flexibility: dynamic matches or beats any interval mapping.
        assert result.measured_period <= static_period * 1.02
    if overhead_us >= 100.0:
        # Realistic dispatch costs: the static schedule wins.
        assert result.measured_period > static_period
