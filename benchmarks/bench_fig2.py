"""Fig. 2 bench — FERTAC-vs-HeRAD core-usage heatmaps.

Regenerates the heatmaps for R = (10B, 10L), SR = 0.5 and reports the
"at most 1 / 2 extra cores" shares the paper quotes (59.0% / 83.1% over all
chains).
"""

from __future__ import annotations

from repro.experiments import fig2

from conftest import SCALE


def test_fig2_heatmaps(benchmark):
    def run():
        return fig2.run(num_chains=20 * SCALE)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(fig2.render(result))

    within1 = result.all_results.share_within_extra_cores(1)
    within2 = result.all_results.share_within_extra_cores(2)
    benchmark.extra_info["within_1_extra"] = round(within1, 1)
    benchmark.extra_info["within_2_extra"] = round(within2, 1)
    benchmark.extra_info["paper_within_1_extra"] = 59.0
    benchmark.extra_info["paper_within_2_extra"] = 83.1
    # Shape: most chains stay within two extra cores.
    assert within2 >= within1
    assert within2 > 50.0
