"""Fig. 3 bench — strategy execution times vs chain length.

This is the paper's Fig. 3 measured directly by pytest-benchmark: one
benchmark per (strategy, n) point at a fixed budget.  Expected shapes:
FERTAC/OTAC nearly flat, HeRAD ~ n^2, 2CATAC exponential (hence capped).
"""

from __future__ import annotations

import pytest

from repro.core.registry import get_info
from repro.core.types import Resources

from conftest import paper_profiles

BUDGET = Resources(20, 20)
TASK_COUNTS = (10, 20, 40)
# 2CATAC is exponential in n (the paper stops at 60 tasks in C++; pure
# Python crosses the seconds-per-chain line near n = 30), so the shared
# sweep caps it and a dedicated single-round bench shows the blow-up.
CAPS = {"2catac": 20, "2catac_memo": 20}


@pytest.mark.parametrize("num_tasks", TASK_COUNTS)
@pytest.mark.parametrize(
    "strategy", ["fertac", "2catac", "herad", "otac_b", "otac_l"]
)
def test_strategy_time_vs_tasks(benchmark, strategy, num_tasks):
    if num_tasks > CAPS.get(strategy, 10**9):
        pytest.skip("capped: exponential strategy")
    profiles = paper_profiles(5, 0.5, num_tasks=num_tasks)
    func = get_info(strategy).func

    def run():
        for profile in profiles:
            func(profile, BUDGET)

    benchmark(run)
    benchmark.extra_info["strategy"] = strategy
    benchmark.extra_info["num_tasks"] = num_tasks
    benchmark.extra_info["budget"] = str(BUDGET)


@pytest.mark.parametrize("num_tasks", [10, 20, 30])
def test_2catac_exponential_growth(benchmark, num_tasks):
    """Fig. 3's 2CATAC curve: super-linear growth in the chain length.

    Run once per point (no benchmark rounds) — at n = 30 a single schedule
    already costs seconds in pure Python.
    """
    profiles = paper_profiles(2, 0.5, num_tasks=num_tasks, seed=2)
    func = get_info("2catac").func

    def run():
        for profile in profiles:
            func(profile, BUDGET)

    benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["num_tasks"] = num_tasks


@pytest.mark.parametrize("stateless_ratio", [0.2, 0.5, 0.8])
def test_2catac_sr_sensitivity(benchmark, stateless_ratio):
    """The paper's SR effect: 2CATAC gets *cheaper* at SR = 0.8 because
    long replicable stages shorten the recursion."""
    profiles = paper_profiles(5, stateless_ratio, num_tasks=20, seed=3)
    func = get_info("2catac").func

    def run():
        for profile in profiles:
            func(profile, BUDGET)

    benchmark(run)
    benchmark.extra_info["stateless_ratio"] = stateless_ratio
