"""Campaign-engine bench — executor tiers, memo replay, sweep kernel.

Times the three engine execution tiers (serial, process-pool, memoized
replay) over a shared campaign and asserts, on every run, that the tiers
produce bitwise-identical arrays — CI fails on any engine-vs-serial
mismatch.  Also times the HeRAD solve whose ``_neighbor_sweep`` hot path
is vectorized above ``_SWEEP_SCALAR_CUTOFF`` cells.

Run ``python scripts/bench_trajectory.py`` for the standalone trajectory
report (``BENCH_engine.json``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.herad import _SWEEP_SCALAR_CUTOFF, herad
from repro.core.registry import PAPER_ORDER
from repro.core.types import Resources
from repro.engine import CampaignEngine

from conftest import SCALE, paper_profiles

_RESOURCES = Resources(10, 10)


@pytest.fixture(scope="module")
def engine_chains():
    return [p.chain for p in paper_profiles(10 * SCALE, 0.5, seed=7)]


def _arrays_equal(a, b) -> bool:
    return set(a) == set(b) and all(
        np.array_equal(a[n].periods, b[n].periods)
        and np.array_equal(a[n].big_used, b[n].big_used)
        and np.array_equal(a[n].little_used, b[n].little_used)
        for n in a
    )


def test_campaign_serial(benchmark, engine_chains):
    engine = CampaignEngine(jobs=1, backend="serial", memo=False)

    def run():
        return engine.solve_instances(engine_chains, _RESOURCES, PAPER_ORDER)

    arrays = benchmark(run)
    assert set(arrays) == set(PAPER_ORDER)
    benchmark.extra_info["chains"] = len(engine_chains)


def test_campaign_process_pool_matches_serial(benchmark, engine_chains):
    """The engine-vs-serial mismatch gate: bitwise parity is asserted."""
    serial = CampaignEngine(jobs=1, backend="serial", memo=False).solve_instances(
        engine_chains, _RESOURCES, PAPER_ORDER
    )
    engine = CampaignEngine(jobs=2, backend="process", memo=False)

    def run():
        return engine.solve_instances(engine_chains, _RESOURCES, PAPER_ORDER)

    arrays = benchmark.pedantic(run, rounds=1, iterations=1)
    assert _arrays_equal(serial, arrays), "engine-vs-serial mismatch"


def test_campaign_memo_replay(benchmark, engine_chains):
    """Replay of a warmed cache — the figure drivers' common case."""
    engine = CampaignEngine(jobs=1, memo=True)
    cold = engine.solve_instances(engine_chains, _RESOURCES, PAPER_ORDER)

    def run():
        return engine.solve_instances(engine_chains, _RESOURCES, PAPER_ORDER)

    warm = benchmark(run)
    assert _arrays_equal(cold, warm), "memo replay mismatch"
    assert engine.memo.stats.hit_rate > 0.9
    benchmark.extra_info["hit_rate"] = round(engine.memo.stats.hit_rate, 4)


@pytest.mark.parametrize("budget", [(4, 4), (10, 10), (40, 40)])
def test_herad_sweep_kernel(benchmark, engine_chains, budget):
    """Single-instance HeRAD solve across the sweep's scalar/vector regimes."""
    big, little = budget
    resources = Resources(big, little)
    profile = paper_profiles(1, 0.5, seed=13)[0]

    outcome = benchmark(lambda: herad(profile, resources))
    assert outcome.feasible
    cells = (big + 1) * (little + 1)
    benchmark.extra_info["sweep_path"] = (
        "scalar" if cells <= _SWEEP_SCALAR_CUTOFF else "vectorized"
    )
