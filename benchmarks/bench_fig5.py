"""Fig. 5 bench — pipeline simulation throughput (the runtime substrate).

Times the discrete-event simulator itself on the DVB-S2 schedules (frames
per wall-second of simulation) and regenerates the Fig. 5 throughput bars.
"""

from __future__ import annotations

import pytest

from repro.core.registry import get_info
from repro.core.types import Resources
from repro.experiments import fig5
from repro.platform.presets import MAC_STUDIO, X7_TI
from repro.sdr.dvbs2 import dvbs2_chain
from repro.streampu.overheads import CalibratedOverhead
from repro.streampu.pipeline import PipelineSpec
from repro.streampu.simulator import simulate_pipeline


@pytest.mark.parametrize("strategy", ["herad", "fertac"])
def test_simulator_speed(benchmark, strategy):
    chain = dvbs2_chain(MAC_STUDIO)
    outcome = get_info(strategy).func(chain, Resources(8, 2))
    spec = PipelineSpec.from_solution(outcome.solution, chain)

    result = benchmark(
        simulate_pipeline, spec, 1000, CalibratedOverhead()
    )
    benchmark.extra_info["measured_period_us"] = round(
        result.report.measured_period, 1
    )


def test_fig5_bars(benchmark):
    def run():
        return fig5.run(num_frames=600)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(fig5.render(result))
    rows = result.table2.rows
    # Paper shape checks: on the X7 Ti full budget, heterogeneous
    # strategies beat OTAC (B) by roughly 2x (paper: 84.8 vs 39.7 Mb/s
    # expected; 53% gap measured).
    x7_full = {
        r.strategy: r.real_mbps
        for r in rows
        if r.platform == X7_TI.name and r.resources == Resources(6, 8)
    }
    assert x7_full["herad"] > 1.5 * x7_full["otac_b"]
    # OTAC (L) is always the slowest on the Mac Studio.
    mac_half = {
        r.strategy: r.real_mbps
        for r in rows
        if r.platform == MAC_STUDIO.name and r.resources == Resources(8, 2)
    }
    assert min(mac_half, key=mac_half.get) == "otac_l"
