"""Benches for Table III (dataset validation/profiling) and Fig. 6 (summary).

Table III is a dataset, so its bench times the profiling *procedure* (the
measure-each-task loop that produced the paper's numbers) and validates the
embedded totals.  Fig. 6 regenerates the quantified strategy summary at
reduced campaign size.
"""

from __future__ import annotations

import pytest

from repro.core.types import Resources
from repro.experiments import fig6, table3

from conftest import SCALE


def test_table3_dataset_and_profiling(benchmark):
    result = benchmark(table3.run)
    assert result.totals_match
    benchmark.extra_info["totals"] = [round(t, 1) for t in result.totals]


def test_table3_profiling_procedure(benchmark):
    rows = benchmark.pedantic(
        table3.profile_chain_executors,
        kwargs={"time_scale": 1e-7, "repetitions": 2},
        rounds=1,
        iterations=1,
    )
    assert len(rows) == 23
    # The sleep executors track their nominal latency to within scheduler
    # noise; at 1e-7 scale each task is sub-millisecond.
    for _, nominal, measured in rows:
        assert measured >= 0.0


def test_fig6_summary(benchmark):
    def run():
        return fig6.run(
            num_chains=8 * SCALE,
            budgets=[Resources(6, 6)],
            stateless_ratios=[0.5],
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(fig6.render(result))
    by_name = {row.strategy: row for row in result.rows}
    assert by_name["herad"].avg_slowdown == pytest.approx(1.0)
    assert by_name["fertac"].mean_time_us < by_name["herad"].mean_time_us
    benchmark.extra_info["herad_gap_percent"] = round(
        by_name["herad"].real_vs_best_percent, 1
    )
