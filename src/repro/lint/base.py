"""Lint rule machinery: file context, rule base class, and the registry.

A rule is an :class:`ast.NodeVisitor` subclass registered with
:func:`register`.  The engine instantiates each applicable rule once per
file, hands it the parsed module, and collects the findings the rule
reported.  Rules declare *where* they apply through :meth:`LintRule.applies`
(e.g. the determinism rule only guards the solver paths) so the engine can
lint the whole tree with one file walk.

Suppression: a source line ending in ``# lint: ignore[rule-name]`` (or the
blanket ``# lint: ignore``) silences findings reported on that line.  The
pragma is per-line and per-rule by design — blanket file-level opt-outs are
exactly the kind of drift this engine exists to prevent.  Two narrow
widenings keep that spirit while making the pragma writable in practice:

* a pragma on *any* line of one multi-line **simple** statement covers every
  line the statement spans (an expression split across parentheses is one
  logical decision; compound statements — ``def``/``if``/``with``/... — are
  not widened, so a pragma can never silence a whole suite);
* a pragma on a ``def``/``class`` line also covers findings anchored to that
  definition's decorator lines (the decorator belongs to the definition it
  adorns).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import ClassVar, Iterable

from .findings import Finding, Severity

__all__ = [
    "FileContext",
    "LintRule",
    "RULE_REGISTRY",
    "register",
    "rules_by_name",
]

_PRAGMA = re.compile(r"#\s*lint:\s*ignore(?:\[([A-Za-z0-9_,\- ]+)\])?")


@dataclass
class FileContext:
    """Everything a rule needs to know about the file being linted.

    Attributes:
        path: absolute path of the file.
        rel: path relative to the linted root (used in findings).
        module: dotted module name when the file sits under a package root
            (e.g. ``repro.core.herad``), else the stem.
        source: full text of the file.
        tree: the parsed module.
    """

    path: Path
    rel: str
    module: str
    source: str
    tree: ast.Module
    _suppressions: dict[int, "set[str] | None"] = field(default_factory=dict)

    _covering: dict[int, tuple[int, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for lineno, line in enumerate(self.source.splitlines(), start=1):
            match = _PRAGMA.search(line)
            if match is None:
                continue
            names = match.group(1)
            if names is None:
                self._suppressions[lineno] = None  # blanket: every rule
            else:
                parsed = {n.strip() for n in names.split(",") if n.strip()}
                existing = self._suppressions.get(lineno)
                if existing is None and lineno in self._suppressions:
                    continue  # blanket pragma already wins
                self._suppressions[lineno] = (existing or set()) | parsed
        self._map_statement_spans()

    def _map_statement_spans(self) -> None:
        """Map finding lines to the other lines whose pragmas also cover them.

        A pragma on any line of a multi-line *simple* statement covers the
        whole statement, and a pragma on a ``def``/``class`` line covers
        findings anchored to its decorators.  Compound statements are never
        widened: a pragma inside a function body must not silence the body.
        """
        for node in ast.walk(self.tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                for decorator in node.decorator_list:
                    span = self._covering.setdefault(decorator.lineno, ())
                    if node.lineno not in span:
                        self._covering[decorator.lineno] = (*span, node.lineno)
                continue
            if not isinstance(node, ast.stmt) or isinstance(
                node,
                (
                    ast.If, ast.For, ast.AsyncFor, ast.While, ast.With,
                    ast.AsyncWith, ast.Try, ast.Match,
                ),
            ):
                continue
            end = getattr(node, "end_lineno", None)
            if end is None or end <= node.lineno:
                continue
            lines = tuple(range(node.lineno, end + 1))
            for lineno in lines:
                span = self._covering.setdefault(lineno, ())
                merged = span + tuple(n for n in lines if n not in span and n != lineno)
                self._covering[lineno] = merged

    def is_suppressed(self, line: int, rule: "LintRule | type[LintRule]") -> bool:
        """True when a pragma covering ``line`` silences ``rule``."""
        for candidate in (line, *self._covering.get(line, ())):
            if candidate not in self._suppressions:
                continue
            names = self._suppressions[candidate]
            if names is None or rule.name in names or rule.id in names:
                return True
        return False

    @property
    def in_core(self) -> bool:
        """True for modules under ``repro.core``."""
        return self.module.startswith("repro.core")

    @property
    def in_engine(self) -> bool:
        """True for modules under ``repro.engine``."""
        return self.module.startswith("repro.engine")

    @property
    def in_solver_paths(self) -> bool:
        """True for the determinism-guarded solver packages."""
        return self.in_core or self.in_engine


class LintRule(ast.NodeVisitor):
    """Base class for one lint rule (a per-file AST visitor).

    Subclasses set the class attributes, implement ``visit_*`` methods, and
    call :meth:`report` on violations.  The engine calls :meth:`run`.
    """

    #: Stable identifier, e.g. ``REP101``.
    id: ClassVar[str]
    #: Human slug, e.g. ``float-equality``.
    name: ClassVar[str]
    #: One-line description shown by ``repro lint --list-rules``.
    description: ClassVar[str]
    #: Default fix hint attached to findings.
    hint: ClassVar[str]
    #: Default severity of the rule's findings.
    severity: ClassVar[Severity] = Severity.ERROR

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.findings: list[Finding] = []

    @classmethod
    def applies(cls, ctx: FileContext) -> bool:
        """Whether the rule runs on this file (default: everywhere)."""
        return True

    def run(self) -> list[Finding]:
        """Visit the file and return the (unsuppressed) findings."""
        self.visit(self.ctx.tree)
        return [
            f
            for f in self.findings
            if not self.ctx.is_suppressed(f.line, self)
        ]

    def report(
        self,
        node: ast.AST,
        message: str,
        hint: "str | None" = None,
        severity: "Severity | None" = None,
    ) -> None:
        """Record one violation anchored at ``node``."""
        self.findings.append(
            Finding(
                rule_id=self.id,
                rule_name=self.name,
                message=message,
                hint=hint if hint is not None else self.hint,
                path=self.ctx.rel,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                severity=severity if severity is not None else self.severity,
            )
        )


#: All registered rules, keyed by slug, in registration order.
RULE_REGISTRY: dict[str, type[LintRule]] = {}


def register(cls: type[LintRule]) -> type[LintRule]:
    """Class decorator adding a rule to :data:`RULE_REGISTRY`."""
    for attr in ("id", "name", "description", "hint"):
        if not getattr(cls, attr, None):
            raise ValueError(f"rule {cls.__name__} is missing {attr!r}")
    if cls.name in RULE_REGISTRY:
        raise ValueError(f"duplicate rule name {cls.name!r}")
    ids = {rule.id for rule in RULE_REGISTRY.values()}
    if cls.id in ids:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    RULE_REGISTRY[cls.name] = cls
    return cls


def rules_by_name(names: "Iterable[str] | None" = None) -> list[type[LintRule]]:
    """Resolve rule selectors (slugs or ids) to rule classes.

    Args:
        names: rule slugs/ids; ``None`` selects every registered rule.

    Raises:
        KeyError: for an unknown selector, listing the available rules.
    """
    if names is None:
        return list(RULE_REGISTRY.values())
    by_id = {rule.id: rule for rule in RULE_REGISTRY.values()}
    selected: list[type[LintRule]] = []
    for name in names:
        rule = RULE_REGISTRY.get(name) or by_id.get(name.upper())
        if rule is None:
            raise KeyError(
                f"unknown lint rule {name!r}; available: "
                f"{sorted(RULE_REGISTRY)}"
            )
        if rule not in selected:
            selected.append(rule)
    return selected
