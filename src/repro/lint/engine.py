"""The lint driver: file discovery, parsing, rule dispatch.

One AST parse per file; every applicable rule visits that tree.  Findings
come back sorted and deduplicated, with syntax errors surfaced as findings
of the pseudo-rule ``REP000`` rather than crashing the run (a broken file
must fail the build, not the linter).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from .base import FileContext, LintRule, rules_by_name
from .findings import Finding, Severity

__all__ = [
    "LintReport",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_project",
]

#: Directory names never descended into.
_SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".venv", "venv", "build", "dist", "node_modules"}
)


@dataclass(frozen=True)
class LintReport:
    """Outcome of one lint run.

    Attributes:
        findings: all findings, sorted by location then rule.
        files_checked: number of Python files parsed.
    """

    findings: tuple[Finding, ...]
    files_checked: int

    @property
    def errors(self) -> tuple[Finding, ...]:
        """The findings that fail the build."""
        return tuple(
            f for f in self.findings if f.severity is Severity.ERROR
        )

    @property
    def ok(self) -> bool:
        """True when no error-severity finding was produced."""
        return not self.errors


def iter_python_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Raises:
        FileNotFoundError: when a requested path does not exist.
    """
    files: set[Path] = set()
    for path in paths:
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    files.add(candidate.resolve())
        elif path.suffix == ".py":
            files.add(path.resolve())
    return sorted(files)


def _module_name(path: Path) -> str:
    """Dotted module name inferred from the path (best effort).

    Files under a directory named ``repro`` get their real dotted name so
    path-scoped rules (core/engine/cli carve-outs) fire correctly; files
    elsewhere (tests, fixtures) get their stem, which matches no carve-out
    and therefore runs the default rule set.
    """
    parts = list(path.parts)
    if "repro" in parts:
        tail = parts[parts.index("repro") :]
        tail[-1] = path.stem
        return ".".join(tail)
    return path.stem


def _relative_to(path: Path, root: "Path | None") -> str:
    if root is not None:
        try:
            return str(path.relative_to(root))
        except ValueError:
            pass
    return str(path)


def lint_file(
    path: Path,
    rules: Sequence[type[LintRule]],
    root: "Path | None" = None,
) -> list[Finding]:
    """Lint one file with the given rules."""
    rel = _relative_to(path, root)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(
                rule_id="REP000",
                rule_name="syntax-error",
                message=f"file does not parse: {exc.msg}",
                hint="fix the syntax error",
                path=rel,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
            )
        ]
    ctx = FileContext(
        path=path, rel=rel, module=_module_name(path), source=source, tree=tree
    )
    findings: list[Finding] = []
    for rule_cls in rules:
        if rule_cls.applies(ctx):
            findings.extend(rule_cls(ctx).run())
    return findings


def lint_paths(
    paths: Iterable["Path | str"],
    rule_names: "Iterable[str] | None" = None,
    root: "Path | str | None" = None,
) -> LintReport:
    """Lint files/directories and return the consolidated report.

    Args:
        paths: files or directories to lint.
        rule_names: rule slugs/ids to run (default: all registered rules).
        root: paths in findings are rendered relative to this directory.
    """
    rules = rules_by_name(None if rule_names is None else list(rule_names))
    root_path = None if root is None else Path(root).resolve()
    findings: list[Finding] = []
    files = iter_python_files(Path(p) for p in paths)
    for path in files:
        findings.extend(lint_file(path, rules, root=root_path))
    findings.sort(key=lambda f: f.sort_key)
    return LintReport(findings=tuple(findings), files_checked=len(files))


def lint_project(
    package_root: "Path | str" = "src/repro",
    rule_names: "Iterable[str] | None" = None,
    project_root: "Path | str | None" = None,
    allowlist: "Sequence[object] | None" = None,
) -> LintReport:
    """Run the whole-project rules (REP201-REP206) over one package tree.

    Parses every module under ``package_root`` once, builds the shared
    :class:`~repro.lint.project.ProjectContext` (symbol table, import
    graph, call graph), and runs the selected project rules over it.

    Args:
        package_root: directory of the analyzed package (default
            ``src/repro`` relative to the current directory).
        rule_names: project rule slugs/REP2xx ids (default: all).
        project_root: repository root used for REP206 reference scanning
            and for rendering finding paths (inferred when omitted).
        allowlist: sanctioned-site entries; ``None`` selects the shipped
            allowlist, pass ``()`` to disable (fixture corpora do).
    """
    from .project import ProjectContext, project_rules_by_name

    pctx = ProjectContext.build(
        package_root,
        project_root=project_root,
        allowlist=allowlist,  # type: ignore[arg-type]
    )
    rules = project_rules_by_name(
        None if rule_names is None else list(rule_names)
    )
    findings: list[Finding] = []
    for rule_cls in rules:
        findings.extend(rule_cls(pctx).run())
    findings.sort(key=lambda f: f.sort_key)
    return LintReport(
        findings=tuple(findings), files_checked=len(pctx.files)
    )
