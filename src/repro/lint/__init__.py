"""Project-specific static analysis for the scheduling library.

A small AST-based lint engine with rules guarding the invariants the
paper's correctness claims rest on: float comparison discipline on
periods/weights (Eqs. (1)-(2)), immutability of the scheduling value
objects, the core error hierarchy, engine determinism (the ``--jobs``
bitwise guarantee), numpy scalar containment, strict public typing,
stdout hygiene, and process-pool picklability.

Run it with ``repro lint``, ``python -m repro.lint``, or
programmatically::

    from repro.lint import lint_paths
    report = lint_paths(["src/repro"])
    assert report.ok, report.findings

Suppress an intentional violation with a justified per-line pragma::

    if a == b:  # lint: ignore[float-equality] exact DP tie-break
"""

from .base import RULE_REGISTRY, FileContext, LintRule, register, rules_by_name
from .engine import LintReport, iter_python_files, lint_file, lint_paths, lint_project
from .findings import EvidenceStep, Finding, Severity
from .reporters import render_json, render_sarif, render_text
from . import rules as _rules  # noqa: F401  (importing registers the rules)
from .project import (
    PROJECT_RULE_REGISTRY,
    ProjectContext,
    ProjectRule,
    project_register,
    project_rules_by_name,
)

__all__ = [
    "Finding",
    "EvidenceStep",
    "Severity",
    "FileContext",
    "LintRule",
    "RULE_REGISTRY",
    "register",
    "rules_by_name",
    "LintReport",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_project",
    "render_text",
    "render_json",
    "render_sarif",
    "ProjectContext",
    "ProjectRule",
    "PROJECT_RULE_REGISTRY",
    "project_register",
    "project_rules_by_name",
]
