"""Project-specific static analysis for the scheduling library.

A small AST-based lint engine with rules guarding the invariants the
paper's correctness claims rest on: float comparison discipline on
periods/weights (Eqs. (1)-(2)), immutability of the scheduling value
objects, the core error hierarchy, engine determinism (the ``--jobs``
bitwise guarantee), numpy scalar containment, strict public typing,
stdout hygiene, and process-pool picklability.

Run it with ``repro lint``, ``python -m repro.lint``, or
programmatically::

    from repro.lint import lint_paths
    report = lint_paths(["src/repro"])
    assert report.ok, report.findings

Suppress an intentional violation with a justified per-line pragma::

    if a == b:  # lint: ignore[float-equality] exact DP tie-break
"""

from .base import RULE_REGISTRY, FileContext, LintRule, register, rules_by_name
from .engine import LintReport, iter_python_files, lint_file, lint_paths
from .findings import Finding, Severity
from .reporters import render_json, render_text
from . import rules as _rules  # noqa: F401  (importing registers the rules)

__all__ = [
    "Finding",
    "Severity",
    "FileContext",
    "LintRule",
    "RULE_REGISTRY",
    "register",
    "rules_by_name",
    "LintReport",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "render_text",
    "render_json",
]
