"""The lint engine's data model: findings and severities.

A :class:`Finding` is one rule violation anchored to a ``file:line:col``
location, carrying the rule identity, a human message, and a concrete fix
hint.  Findings are plain data — rendering lives in
:mod:`repro.lint.reporters` — so they can be sorted, filtered, serialized
to JSON, and asserted on in tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

__all__ = ["Severity", "EvidenceStep", "Finding"]


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings fail the build (non-zero ``repro lint`` exit);
    ``WARNING`` findings are reported but do not affect the exit code.
    """

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, slots=True)
class EvidenceStep:
    """One link in a cross-file evidence chain.

    Project-wide rules justify a finding with the path that connects cause
    to effect — definition site, call edges, violation site.  Each step is
    one location plus a note saying what role it plays in the chain.
    """

    path: str
    line: int
    note: str

    @property
    def location(self) -> str:
        """The clickable ``path:line`` anchor of this step."""
        return f"{self.path}:{self.line}"

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable representation."""
        return {"path": self.path, "line": self.line, "note": self.note}


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        rule_id: stable rule identifier (e.g. ``REP101``).
        rule_name: human slug of the rule (e.g. ``float-equality``).
        message: what is wrong, specific to this occurrence.
        hint: how to fix it (rule-level guidance, possibly specialized).
        path: file path, relative to the linted root when possible.
        line: 1-based source line.
        col: 0-based source column (AST convention).
        severity: :class:`Severity` of the finding.
        evidence: cross-file chain (definition site → call path → violation
            site) attached by project-wide rules; empty for per-file rules.
    """

    rule_id: str
    rule_name: str
    message: str
    hint: str
    path: str
    line: int
    col: int
    severity: Severity = Severity.ERROR
    evidence: tuple[EvidenceStep, ...] = ()

    @property
    def location(self) -> str:
        """The clickable ``path:line:col`` anchor."""
        return f"{self.path}:{self.line}:{self.col}"

    @property
    def sort_key(self) -> tuple[str, int, int, str]:
        """Stable ordering: by file, line, column, then rule id."""
        return (self.path, self.line, self.col, self.rule_id)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable representation (used by the JSON reporter)."""
        payload = {
            "rule_id": self.rule_id,
            "rule_name": self.rule_name,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }
        if self.evidence:
            payload["evidence"] = [step.to_dict() for step in self.evidence]
        return payload
