"""``repro lint`` / ``python -m repro.lint`` — run the project lint.

Two tiers share this entry point: the per-file rules (REP1xx, default)
and the whole-project rules (REP2xx, ``--project``).  Exit codes: 0
clean, 1 error findings, 2 usage errors (argparse or unknown selectors).
"""

from __future__ import annotations

import argparse
from pathlib import Path

from .base import RULE_REGISTRY
from .engine import lint_paths, lint_project
from .reporters import REPORTERS

__all__ = ["add_lint_arguments", "build_parser", "run_lint", "main"]

#: Default lint targets, relative to the repository root.
DEFAULT_TARGETS = ("src/repro",)


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to a parser (shared with ``repro lint``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        default=None,
        help=f"files/directories to lint (default: {' '.join(DEFAULT_TARGETS)})",
    )
    parser.add_argument(
        "--project",
        action="store_true",
        help=(
            "run the whole-project rules (REP201-REP206): symbol table, "
            "import graph, call graph over the full tree"
        ),
    )
    parser.add_argument(
        "--format",
        choices=sorted(REPORTERS),
        default="text",
        dest="output_format",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules",
        action="append",
        default=None,
        metavar="NAME[,NAME...]",
        help="restrict to specific rules (slug or id); repeatable",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        dest="rules",
        metavar="NAME",
        help="alias for --rules (one selector per flag)",
    )
    parser.add_argument(
        "--explain",
        default=None,
        metavar="REPxxx",
        help="print what a rule checks and why, then exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="directory findings are reported relative to (default: cwd)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The standalone ``python -m repro.lint`` parser."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Project-specific static analysis: float-comparison, "
            "immutability, error-hierarchy, determinism, typing, and "
            "picklability rules guarding the paper's invariants — plus "
            "whole-project race/fork-safety/layering rules (--project)."
        ),
    )
    add_lint_arguments(parser)
    return parser


def _explain(selector: str) -> int:
    """Print the long-form description of one rule (either tier)."""
    from .project.base import PROJECT_RULE_REGISTRY

    wanted = selector.strip()
    for registry in (RULE_REGISTRY, PROJECT_RULE_REGISTRY):
        for rule in registry.values():
            if wanted.upper() == rule.id or wanted == rule.name:
                print(f"{rule.id} [{rule.name}]")
                print(f"  {rule.description}")
                explanation = getattr(rule, "explanation", "")
                if explanation:
                    print()
                    print(f"  {explanation}")
                print()
                print(f"  hint: {rule.hint}")
                return 0
    print(f"repro lint: unknown rule {selector!r}")
    return 2


def _list_rules() -> int:
    from .project.base import PROJECT_RULE_REGISTRY

    print("per-file rules:")
    for rule in RULE_REGISTRY.values():
        print(f"  {rule.id}  {rule.name:<22} {rule.description}")
    print("project rules (--project):")
    for rule in PROJECT_RULE_REGISTRY.values():
        print(f"  {rule.id}  {rule.name:<22} {rule.description}")
    return 0


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    if getattr(args, "explain", None):
        return _explain(args.explain)
    if args.list_rules:
        return _list_rules()
    selectors = None
    if args.rules:
        selectors = [
            name.strip()
            for chunk in args.rules
            for name in chunk.split(",")
            if name.strip()
        ]
    paths = args.paths or [Path(p) for p in DEFAULT_TARGETS]
    try:
        if getattr(args, "project", False):
            report = lint_project(
                paths[0], rule_names=selectors, project_root=args.root
            )
        else:
            report = lint_paths(paths, rule_names=selectors, root=args.root)
    except (FileNotFoundError, KeyError) as exc:
        print(f"repro lint: {exc}")
        return 2
    print(REPORTERS[args.output_format](report))
    return 0 if report.ok else 1


def main(argv: "list[str] | None" = None) -> int:
    """Standalone entry point."""
    return run_lint(build_parser().parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
