"""The project-specific lint rules.

Each rule guards one invariant the paper's correctness claims depend on
(see DESIGN.md "Correctness tooling"):

* ``float-equality`` — periods and weights are floats rederived through
  different summation orders; bare ``==`` on them is a latent bug.
* ``frozen-mutation`` — :class:`~repro.core.task.TaskChain` and
  :class:`~repro.core.stage.Stage` are value objects; mutating them breaks
  fingerprint-keyed memoization.
* ``error-hierarchy`` — core raises only :mod:`repro.core.errors` types so
  callers can catch one family.
* ``determinism`` — the engine guarantees bitwise-identical campaigns for
  any ``--jobs``; wall-clock, global RNGs, and hash-ordered iteration in
  solver paths would silently void that guarantee.
* ``numpy-scalar-leak`` — public core APIs return Python scalars, not
  ``np.float64`` (which pickles bigger, compares oddly with ``is``, and
  leaks dtype decisions to callers).
* ``public-annotations`` — every public core function is fully annotated
  (the static half of the ``mypy --strict`` gate).
* ``no-print`` — library code reports through return values and
  exceptions; only the CLI prints.
* ``picklable-workers`` — process-pool work units must be module-level
  callables; lambdas/closures die in ``pickle`` only when ``--jobs`` > 1,
  the least-tested path.
* ``broad-except`` — ``except:`` and ``except BaseException`` swallow
  ``KeyboardInterrupt``/``SystemExit``; only the resilience layer (whose
  contract is to classify and re-raise them) may catch that broadly.
* ``raw-timing`` — every timing decision routes through the observability
  clock (:mod:`repro.obs.clock`), so what a timestamp means is decided in
  exactly one audited module; scattered ``time.perf_counter()`` calls
  fragment that authority.
* ``two-type-assumption`` — the platform layer is k-type; code that
  hard-codes exactly two core types (``CoreType.other``, ``is`` identity
  checks against ``CoreType`` members, literal ``(BIG, LITTLE)``
  enumerations) silently breaks on k > 2 budgets, except inside the
  sanctioned k = 2 shims that guard themselves with an explicit ktype
  check.

All rules are heuristic AST checks: they prefer false negatives over false
positives, and intentional exceptions carry a per-line
``# lint: ignore[rule-name]`` pragma next to a justification.
"""

from __future__ import annotations

import ast

from .base import FileContext, LintRule, register

__all__ = [
    "FloatEqualityRule",
    "FrozenMutationRule",
    "ErrorHierarchyRule",
    "DeterminismRule",
    "NumpyScalarLeakRule",
    "PublicAnnotationsRule",
    "NoPrintRule",
    "PicklableWorkersRule",
    "BroadExceptRule",
    "RawTimingRule",
    "TwoTypeAssumptionRule",
]


def _identifier_of(node: ast.AST) -> "str | None":
    """The trailing identifier of a Name/Attribute, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _dotted(node: ast.AST) -> "str | None":
    """Render a Name/Attribute chain as ``a.b.c`` (None for other shapes)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _tokens(identifier: str) -> set[str]:
    """Lower-cased underscore tokens of an identifier."""
    return {t for t in identifier.lower().split("_") if t}


# ---------------------------------------------------------------------------
# REP101 — float-equality
# ---------------------------------------------------------------------------

#: Identifier tokens that mark an expression as a float period/weight value.
_FLOAT_TOKENS = frozenset(
    {
        "period",
        "periods",
        "weight",
        "weights",
        "latency",
        "latencies",
        "slowdown",
        "epsilon",
        "eps",
        "pbest",
        "throughput",
    }
)

#: Calls whose result is a float period/weight quantity.
_FLOAT_CALLS = frozenset(
    {
        "period",
        "weight",
        "latency",
        "throughput",
        "stage_weight",
        "interval_weight",
        "total_weight",
        "max_weight",
        "max_sequential_weight",
        "weight_of",
        "midpoint",
        "search_epsilon",
        "norep_period",
        "brute_force_period",
        "solution_power",
    }
)


def _is_infinity(node: ast.expr) -> bool:
    """True for expressions that denote +/-inf (exact comparison is sound)."""
    if isinstance(node, ast.UnaryOp):
        return _is_infinity(node.operand)
    ident = _identifier_of(node)
    if ident is not None and ident.lower() in {"inf", "infinity", "_inf"}:
        return True
    if isinstance(node, ast.Call) and _identifier_of(node.func) == "float":
        if len(node.args) == 1 and isinstance(node.args[0], ast.Constant):
            value = node.args[0].value
            return isinstance(value, str) and value.strip("+-").lower() in {
                "inf",
                "infinity",
            }
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return node.value != node.value or abs(node.value) == float("inf")
    return False


def _is_float_flavored(node: ast.expr) -> bool:
    """Heuristic: does this expression hold a float period/weight?"""
    if isinstance(node, ast.Call):
        ident = _identifier_of(node.func)
        return ident in _FLOAT_CALLS
    ident = _identifier_of(node)
    if ident is not None and _tokens(ident) & _FLOAT_TOKENS:
        return True
    return False


@register
class FloatEqualityRule(LintRule):
    """Bare ``==``/``!=`` between float period/weight expressions."""

    id = "REP101"
    name = "float-equality"
    description = (
        "periods/weights are floats accumulated in different orders; "
        "compare them with math.isclose or an explicit epsilon, never =="
    )
    hint = (
        "use math.isclose(a, b, rel_tol=...) or abs(a - b) <= eps; "
        "exact comparison against math.inf is fine"
    )

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        has_eq = any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops)
        if (
            has_eq
            and not any(_is_infinity(o) for o in operands)
            and any(_is_float_flavored(o) for o in operands)
        ):
            self.report(
                node,
                "float equality on a period/weight expression "
                "(results differ across summation orders by ULPs)",
            )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# REP102 — frozen-mutation
# ---------------------------------------------------------------------------

#: Fields of the frozen value objects (TaskChain / Task / Stage / Solution).
_FROZEN_FIELDS = frozenset(
    {
        "tasks",
        "stages",
        "weight_big",
        "weight_little",
        "replicable",
        "cores",
        "core_type",
    }
)


@register
class FrozenMutationRule(LintRule):
    """Mutation of ``TaskChain``/``Stage`` fields outside their constructors."""

    id = "REP102"
    name = "frozen-mutation"
    description = (
        "TaskChain/Stage/Solution are frozen value objects; field writes "
        "outside their own constructors corrupt fingerprint-keyed caches"
    )
    hint = (
        "build a new object instead (e.g. Stage.with_cores, "
        "TaskChain.from_weights); object.__setattr__ is reserved for the "
        "owning class's __init__/__post_init__ and internal caches"
    )

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        self._class_depth = 0

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_depth += 1
        self.generic_visit(node)
        self._class_depth -= 1

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target)
        self.generic_visit(node)

    def _check_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Tuple):
            for element in target.elts:
                self._check_target(element)
            return
        if not isinstance(target, ast.Attribute):
            return
        if target.attr not in _FROZEN_FIELDS:
            return
        if isinstance(target.value, ast.Name) and target.value.id == "self":
            return  # a class managing its own (non-frozen) state
        self.report(
            target,
            f"assignment to {target.attr!r}, a field of a frozen "
            "scheduling value object",
        )

    def visit_Call(self, node: ast.Call) -> None:
        if (
            _dotted(node.func) == "object.__setattr__"
            and node.args
            and not (
                isinstance(node.args[0], ast.Name)
                and node.args[0].id == "self"
                and self._class_depth > 0
            )
        ):
            self.report(
                node,
                "object.__setattr__ on a foreign object bypasses frozen "
                "dataclass protection",
            )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# REP103 — error-hierarchy
# ---------------------------------------------------------------------------

#: Exception names the core may raise.
_ALLOWED_RAISES = frozenset(
    {
        "SchedulingError",
        "InvalidChainError",
        "InvalidPlatformError",
        "InvalidParameterError",
        "InfeasibleScheduleError",
        "UnknownStrategyError",
        "CertificationError",
        "NotImplementedError",
        "StopIteration",
    }
)

#: Builtin exceptions whose use in core signals a hierarchy escape.
_BANNED_RAISES = frozenset(
    {
        "ValueError",
        "TypeError",
        "KeyError",
        "RuntimeError",
        "Exception",
        "ArithmeticError",
        "LookupError",
        "IndexError",
        "AssertionError",
    }
)


@register
class ErrorHierarchyRule(LintRule):
    """Core modules must raise only the ``repro.core.errors`` hierarchy."""

    id = "REP103"
    name = "error-hierarchy"
    description = (
        "solver entry points raise only repro.core.errors types so callers "
        "can catch one family (the domain errors subclass ValueError/"
        "KeyError where builtin-compatibility matters)"
    )
    hint = (
        "raise InvalidChainError / InvalidPlatformError / "
        "InvalidParameterError / UnknownStrategyError (see "
        "repro.core.errors) instead of a bare builtin exception"
    )

    @classmethod
    def applies(cls, ctx: FileContext) -> bool:
        return ctx.in_core

    def visit_Raise(self, node: ast.Raise) -> None:
        exc = node.exc
        name = None
        if isinstance(exc, ast.Call):
            name = _identifier_of(exc.func)
        elif exc is not None:
            name = _identifier_of(exc)
        if name is not None and name in _BANNED_RAISES:
            self.report(
                node,
                f"core code raises builtin {name} instead of a "
                "repro.core.errors type",
            )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# REP104 — determinism
# ---------------------------------------------------------------------------

#: Dotted call names that inject wall-clock or entropy into a solve.
_NONDETERMINISTIC_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)


#: Filesystem-enumeration calls whose result order is OS-dependent: ext4,
#: APFS, and NFS each hand back directory entries in their own order, so
#: iterating them unsorted is the same bug class as set-order iteration.
_FS_ORDER_CALLS = frozenset(
    {"os.listdir", "listdir", "glob.glob", "glob.iglob", "glob", "iglob", "scandir", "os.scandir"}
)


@register
class DeterminismRule(LintRule):
    """No wall-clock, global RNG, or hash-ordered iteration in solver paths."""

    id = "REP104"
    name = "determinism"
    description = (
        "repro/core and repro/engine must be bitwise deterministic for any "
        "--jobs: no time.time, no global/unseeded RNG, no set-order "
        "iteration, no unsorted directory listings, no dict.popitem "
        "(time.perf_counter is allowed: measurement only)"
    )
    hint = (
        "thread an explicit seeded np.random.default_rng(seed) through the "
        "call, and iterate sorted() or list-ordered collections"
    )

    @classmethod
    def applies(cls, ctx: FileContext) -> bool:
        return ctx.in_solver_paths

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "popitem"
            and not node.args
            and not node.keywords
        ):
            # OrderedDict.popitem(last=...) states its direction explicitly
            # and stays legal; a bare popitem() pops in insertion-order-
            # dependent LIFO order, which silently couples results to fill
            # order.
            self.report(
                node,
                "bare popitem() pops in fill-order-dependent order",
                hint=(
                    "pop an explicit key, or use OrderedDict.popitem("
                    "last=...) to state the direction"
                ),
            )
        if dotted is not None:
            if dotted in _NONDETERMINISTIC_CALLS:
                self.report(
                    node, f"call to {dotted}() in a deterministic solver path"
                )
            elif dotted.startswith("random."):
                self.report(
                    node,
                    f"global random module call {dotted}() (shared, "
                    "seed-order dependent state)",
                )
            elif dotted.startswith(("np.random.", "numpy.random.")):
                tail = dotted.rsplit(".", 1)[1]
                if tail == "default_rng":
                    if not node.args and not node.keywords:
                        self.report(
                            node,
                            "np.random.default_rng() without a seed is "
                            "entropy-seeded",
                        )
                elif tail not in {"Generator", "SeedSequence"}:
                    self.report(
                        node,
                        f"legacy global numpy RNG {dotted}() (hidden "
                        "process-wide state)",
                    )
            elif dotted in {"random", "secrets.token_bytes", "secrets.token_hex"}:
                self.report(node, f"entropy source {dotted}()")
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def _check_iteration(self, iterable: ast.expr) -> None:
        if isinstance(iterable, ast.Set):
            self.report(
                iterable,
                "iteration over a set literal has hash-dependent order",
                hint="iterate a tuple/list, or sorted(...) the set",
            )
        elif (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id in {"set", "frozenset"}
        ):
            self.report(
                iterable,
                f"iteration over {iterable.func.id}(...) has "
                "hash-dependent order",
                hint="iterate a tuple/list, or sorted(...) the set",
            )
        elif isinstance(iterable, ast.Call):
            dotted = _dotted(iterable.func)
            if dotted in _FS_ORDER_CALLS:
                self.report(
                    iterable,
                    f"iteration over unsorted {dotted}(...) follows the "
                    "filesystem's directory order, which differs across "
                    "OSes and mounts",
                    hint=f"wrap it: sorted({dotted}(...))",
                )


# ---------------------------------------------------------------------------
# REP105 — numpy-scalar-leak
# ---------------------------------------------------------------------------

#: Method names that are numpy reductions (return np scalars on arrays).
_NP_REDUCTIONS = frozenset(
    {"max", "min", "sum", "mean", "prod", "ptp", "std", "var", "dot", "trace"}
)

#: Identifiers that conventionally hold numpy arrays in this codebase.
_ARRAYISH = frozenset(
    {
        "p",
        "pb",
        "pl",
        "wb",
        "wl",
        "prefix",
        "weights",
        "arr",
        "array",
        "plane",
        "cand",
        "per_task_min",
        "periods",
        "nxt",
        "next_sequential",
    }
)


def _subscripts_arrayish(node: ast.expr) -> bool:
    """True when the expression subscripts an array-conventional name."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Subscript):
            base = _identifier_of(sub.value)
            if base is not None and base in _ARRAYISH:
                return True
    return False


@register
class NumpyScalarLeakRule(LintRule):
    """Public core APIs must not return raw numpy scalars."""

    id = "REP105"
    name = "numpy-scalar-leak"
    description = (
        "public core functions annotated -> float/int must wrap numpy "
        "reductions and array subscripts in float()/int(): np.float64 "
        "leaks dtypes into caches, JSON, and equality checks"
    )
    hint = "wrap the returned expression in float(...) or int(...)"

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        self._class_stack: list[str] = []

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def _check_function(self, node: ast.FunctionDef) -> None:
        if node.name.startswith("_"):
            return
        if any(cls.startswith("_") for cls in self._class_stack):
            return
        returns = node.returns
        if not (
            isinstance(returns, ast.Name) and returns.id in {"float", "int"}
        ) and not (
            isinstance(returns, ast.Constant)
            and returns.value in {"float", "int"}
        ):
            return
        for stmt in self._own_returns(node):
            value = stmt.value
            if value is None:
                continue
            if isinstance(value, ast.Call) and _identifier_of(value.func) in {
                "float",
                "int",
                "bool",
                "len",
                "round",
            }:
                continue
            if self._leaks(value):
                self.report(
                    stmt,
                    f"{node.name}() is annotated -> "
                    f"{ast.unparse(returns)} but returns an unwrapped "
                    "numpy expression",
                )

    @staticmethod
    def _own_returns(func: ast.FunctionDef) -> "list[ast.Return]":
        """Return statements of ``func`` itself (not of nested functions)."""
        returns: list[ast.Return] = []
        stack: list[ast.AST] = list(func.body)
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            if isinstance(node, ast.Return):
                returns.append(node)
            stack.extend(ast.iter_child_nodes(node))
        return returns

    @staticmethod
    def _leaks(value: ast.expr) -> bool:
        if isinstance(value, ast.Call):
            dotted = _dotted(value.func)
            if dotted is not None and dotted.startswith(("np.", "numpy.")):
                return True
            if (
                isinstance(value.func, ast.Attribute)
                and value.func.attr in _NP_REDUCTIONS
            ):
                return True
        if isinstance(value, (ast.Subscript, ast.BinOp)):
            return _subscripts_arrayish(value)
        return False


# ---------------------------------------------------------------------------
# REP106 — public-annotations
# ---------------------------------------------------------------------------


@register
class PublicAnnotationsRule(LintRule):
    """Every public core function carries full type annotations."""

    id = "REP106"
    name = "public-annotations"
    description = (
        "public repro.core functions must annotate every parameter and the "
        "return type (the static half of the mypy --strict gate)"
    )
    hint = "add parameter and return annotations"

    @classmethod
    def applies(cls, ctx: FileContext) -> bool:
        return ctx.in_core

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        self._class_stack: list[str] = []
        self._func_depth = 0

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check(node)
        self._func_depth += 1
        self.generic_visit(node)
        self._func_depth -= 1

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def _check(self, node: ast.FunctionDef) -> None:
        if self._func_depth > 0:
            return  # local helpers are mypy's (strict) problem, not the API's
        public = not node.name.startswith("_") or (
            node.name.startswith("__") and node.name.endswith("__")
        )
        if not public or any(c.startswith("_") for c in self._class_stack):
            return
        missing: list[str] = []
        args = node.args
        positional = [*args.posonlyargs, *args.args]
        if positional and self._class_stack and positional[0].arg in {
            "self",
            "cls",
        }:
            positional = positional[1:]
        for arg in [*positional, *args.kwonlyargs]:
            if arg.annotation is None:
                missing.append(arg.arg)
        for star in (args.vararg, args.kwarg):
            if star is not None and star.annotation is None:
                missing.append(star.arg)
        if node.returns is None:
            missing.append("return")
        if missing:
            self.report(
                node,
                f"public function {node.name}() is missing annotations "
                f"for: {', '.join(missing)}",
            )


# ---------------------------------------------------------------------------
# REP107 — no-print
# ---------------------------------------------------------------------------

#: Modules allowed to write to stdout (the user-facing surfaces).
_PRINT_ALLOWED = ("repro.cli", "repro.__main__", "repro.lint")


@register
class NoPrintRule(LintRule):
    """No ``print()`` (or debugger leftovers) in library code."""

    id = "REP107"
    name = "no-print"
    description = (
        "library code communicates through return values and exceptions; "
        "only the CLI/reporter modules print"
    )
    hint = (
        "return the rendered string (like the experiment render() "
        "functions) or raise; printing belongs to repro.cli"
    )

    @classmethod
    def applies(cls, ctx: FileContext) -> bool:
        return ctx.module.startswith("repro") and not ctx.module.startswith(
            _PRINT_ALLOWED
        )

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if isinstance(node.func, ast.Name) and node.func.id in {
            "print",
            "breakpoint",
        }:
            self.report(node, f"{node.func.id}() call in library code")
        elif dotted in {"pdb.set_trace", "sys.stdout.write"}:
            self.report(node, f"{dotted}() call in library code")
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# REP108 — picklable-workers
# ---------------------------------------------------------------------------

#: Executor methods that ship their callable argument to workers.
_DISPATCH_METHODS = frozenset({"map", "submit", "apply_async", "imap", "starmap"})


@register
class PicklableWorkersRule(LintRule):
    """Engine work units must be module-level (picklable) callables."""

    id = "REP108"
    name = "picklable-workers"
    description = (
        "callables handed to executor.map/submit must be module-level "
        "functions: lambdas and closures fail to pickle, and only when "
        "--jobs > 1 — the least-tested configuration"
    )
    hint = (
        "move the worker to module scope (like repro.engine.batch."
        "solve_unit) and pass its inputs as picklable arguments"
    )

    @classmethod
    def applies(cls, ctx: FileContext) -> bool:
        return ctx.in_engine

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        self._nested: set[str] = set()
        self._collect_nested(ctx.tree, depth=0)

    def _collect_nested(self, node: ast.AST, depth: int) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if depth >= 1:
                    self._nested.add(child.name)
                self._collect_nested(child, depth + 1)
            else:
                self._collect_nested(child, depth)

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _DISPATCH_METHODS
            and node.args
        ):
            worker = node.args[0]
            if isinstance(worker, ast.Lambda):
                self.report(
                    node, "lambda passed to an executor dispatch method"
                )
            elif (
                isinstance(worker, ast.Name) and worker.id in self._nested
            ):
                self.report(
                    node,
                    f"locally-defined function {worker.id!r} passed to an "
                    "executor dispatch method (closures don't pickle)",
                )
        for keyword in node.keywords:
            if keyword.arg == "initializer" and isinstance(
                keyword.value, ast.Lambda
            ):
                self.report(node, "lambda used as a pool initializer")
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# REP109 — broad-except
# ---------------------------------------------------------------------------

#: Modules sanctioned to catch broadly: the resilience layer's whole job is
#: to classify failures, and it re-raises everything non-transient.
_BROAD_EXCEPT_ALLOWED = ("repro.engine.resilience",)


@register
class BroadExceptRule(LintRule):
    """No bare ``except:`` / ``except BaseException`` outside resilience."""

    id = "REP109"
    name = "broad-except"
    description = (
        "bare except and except BaseException swallow KeyboardInterrupt "
        "and SystemExit, breaking Ctrl-C and pool shutdown; only "
        "repro.engine.resilience (which classifies and re-raises) may "
        "catch that broadly"
    )
    hint = (
        "catch Exception (or a narrower type); if the handler must "
        "observe KeyboardInterrupt, route the work through "
        "repro.engine.resilience instead"
    )

    @classmethod
    def applies(cls, ctx: FileContext) -> bool:
        return ctx.module.startswith("repro") and ctx.module not in (
            _BROAD_EXCEPT_ALLOWED
        )

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(
                node,
                "bare 'except:' catches BaseException, including "
                "KeyboardInterrupt and SystemExit",
            )
        else:
            for exc in self._named_exceptions(node.type):
                if _identifier_of(exc) == "BaseException":
                    self.report(
                        node,
                        "'except BaseException' swallows KeyboardInterrupt "
                        "and SystemExit",
                    )
                    break
        self.generic_visit(node)

    @staticmethod
    def _named_exceptions(node: ast.expr) -> "list[ast.expr]":
        if isinstance(node, ast.Tuple):
            return list(node.elts)
        return [node]


# ---------------------------------------------------------------------------
# REP110 — raw-timing
# ---------------------------------------------------------------------------

#: Modules sanctioned to read raw clocks, named *exactly* — a new module
#: under ``repro.obs`` does not inherit the exemption by location, it must
#: be added here (with a reason) before it may touch ``time.*`` directly.
_RAW_TIMING_ALLOWED = frozenset(
    {
        # The single timing authority: everything else imports monotonic()
        # and wall() from here.
        "repro.obs.clock",
        # Self-time / flamegraph derivation; operates on recorded spans and
        # is sanctioned so profiling helpers can stay in one module even if
        # one ever needs a raw timestamp.
        "repro.obs.profile",
        # Models the C++ runtime's own instrumentation.
        "repro.streampu.profiler",
    }
)

#: ``time``-module functions that read a clock.  ``time.sleep`` is *not*
#: timing (it consumes time, it doesn't measure it) and stays legal.
_CLOCK_READS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "clock_gettime",
        "clock_gettime_ns",
    }
)


@register
class RawTimingRule(LintRule):
    """Raw ``time.*`` clock reads outside the observability clock module."""

    id = "REP110"
    name = "raw-timing"
    description = (
        "timing routes through repro.obs.clock (monotonic()/wall()) so the "
        "project has one audited place deciding what a timestamp means; "
        "only the modules named in the sanctioned-clock allowlist read "
        "time.* directly"
    )
    hint = (
        "from repro.obs.clock import monotonic  # durations\n"
        "    (or wall() for display timestamps); time.sleep is fine"
    )

    @classmethod
    def applies(cls, ctx: FileContext) -> bool:
        if not ctx.module.startswith("repro"):
            return False
        return ctx.module not in _RAW_TIMING_ALLOWED

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        # Only names actually bound to the time module (or imported from it)
        # are flagged: a local function named monotonic — e.g. the obs clock
        # imported as `from repro.obs.clock import monotonic` — must not
        # false-positive.
        self._time_aliases: set[str] = set()
        self._clock_names: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        self._time_aliases.add(alias.asname or "time")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time" and node.level == 0:
                    for alias in node.names:
                        if alias.name in _CLOCK_READS:
                            self._clock_names.add(alias.asname or alias.name)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _CLOCK_READS
            and isinstance(func.value, ast.Name)
            and func.value.id in self._time_aliases
        ):
            self.report(
                node,
                f"raw clock read time.{func.attr}() outside repro.obs",
            )
        elif isinstance(func, ast.Name) and func.id in self._clock_names:
            self.report(
                node,
                f"raw clock read {func.id}() (imported from time) outside "
                "repro.obs",
            )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# REP111 — two-type-assumption
# ---------------------------------------------------------------------------

#: Modules allowed to assume exactly two core types.  Each either *defines*
#: the two-type compatibility surface (``repro.core.types``) or is a paper
#: algorithm specialized to two types behind an explicit ``ktype == 2``
#: guard (HeRAD's DP, its literal-pseudocode oracle, the no-replication
#: optimal, and the batch-vectorized k=2 kernels — which fall back to the
#: generic python solvers on any other platform).
_SANCTIONED_TWO_TYPE = (
    "repro.core.types",
    "repro.core.herad",
    "repro.core.herad_reference",
    "repro.core.norep",
    "repro.core.kernels",
)


@register
class TwoTypeAssumptionRule(LintRule):
    """Hard-coded two-type platform assumptions outside sanctioned shims."""

    id = "REP111"
    name = "two-type-assumption"
    description = (
        "the platform layer is k-type: CoreType.other, `is` identity checks "
        "against CoreType members, and literal (BIG, LITTLE) enumerations "
        "assume exactly two core classes and silently break on k > 2 "
        "budgets; only the guarded k = 2 shims may assume two types"
    )
    hint = (
        "iterate resources.types() / core_types(ktype), compare type "
        "indices with == (CoreType is an IntEnum; plain int indices carry "
        "no identity), and derive the complement from the index instead of "
        ".other"
    )

    @classmethod
    def applies(cls, ctx: FileContext) -> bool:
        return ctx.module.startswith("repro") and not ctx.module.startswith(
            _SANCTIONED_TWO_TYPE
        )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr == "other":
            ident = _identifier_of(node.value)
            if ident is not None and (
                ident == "CoreType" or "type" in _tokens(ident)
            ):
                self.report(
                    node,
                    "CoreType.other assumes a two-type platform (the "
                    "complement of a type index is undefined for k > 2)",
                )
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        has_identity = any(
            isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops
        )
        if has_identity and any(
            (dotted := _dotted(operand)) is not None
            and dotted.startswith("CoreType.")
            for operand in operands
        ):
            self.report(
                node,
                "`is` identity check against a CoreType member: k-type "
                "code passes plain int type indices, which never satisfy "
                "enum identity",
            )
        self.generic_visit(node)

    def _check_literal_enumeration(self, node: "ast.Tuple | ast.List") -> None:
        members = {
            _dotted(element)
            for element in node.elts
            if isinstance(element, ast.Attribute)
        }
        if {"CoreType.BIG", "CoreType.LITTLE"} <= members:
            self.report(
                node,
                "literal (CoreType.BIG, CoreType.LITTLE) enumeration "
                "hard-codes two core types",
            )

    def visit_Tuple(self, node: ast.Tuple) -> None:
        self._check_literal_enumeration(node)
        self.generic_visit(node)

    def visit_List(self, node: ast.List) -> None:
        self._check_literal_enumeration(node)
        self.generic_visit(node)


def all_rule_docs() -> "list[tuple[str, str, str]]":
    """``(id, name, description)`` of every registered rule, for --list-rules."""
    from .base import RULE_REGISTRY

    return [
        (rule.id, rule.name, rule.description)
        for rule in RULE_REGISTRY.values()
    ]
