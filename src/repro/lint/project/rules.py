"""The six project-wide rules, REP201-REP206.

Each rule reasons over the :class:`ProjectContext` graphs rather than a
single file, and attaches an evidence chain (definition site -> call path
-> violation site) to every finding so reviewers can audit the reasoning.
All rules prefer a false negative over a false positive: an unresolvable
construct is skipped, never guessed against.
"""

from __future__ import annotations

import ast
import sys

from ..findings import EvidenceStep
from .base import ProjectRule, project_register
from .evidence import call_chain, entry_of
from .model import FunctionFacts

__all__ = [
    "WorkerGlobalWriteRule",
    "LockDisciplineRule",
    "ForkUnsafeCaptureRule",
    "LayerBoundaryRule",
    "MemoPurityRule",
    "DeadPublicSymbolRule",
]

#: Constructors whose instances must never cross a fork/pickle boundary.
_FORK_UNSAFE_CTORS = frozenset(
    {
        "Lock",
        "RLock",
        "Condition",
        "Semaphore",
        "BoundedSemaphore",
        "Event",
        "Barrier",
        "Queue",
        "SimpleQueue",
        "LifoQueue",
        "PriorityQueue",
        "local",
        "Thread",
        "ThreadPoolExecutor",
        "ProcessPoolExecutor",
        "Pool",
        "open",
        "TextIOWrapper",
        "BufferedWriter",
        "BufferedReader",
        # A live shared-memory mapping must never cross a WorkUnit boundary:
        # workers attach by *name* (repro.engine.shm.PlaneDescriptor), never
        # by pickled handle — a pickled handle re-registers ownership in the
        # child's resource tracker and double-unlinks the segment.
        "SharedMemory",
    }
)

#: Lock-like constructors recognized by the lock-discipline rule.
_LOCK_CTORS = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)

#: Clock-reading callables (terminal name) outside the sanctioned wrapper.
_CLOCK_NAMES = frozenset(
    {
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "time",
        "time_ns",
        "wall",
        "now",
    }
)

#: Stdlib modules that expose wall/monotonic clocks.
_CLOCK_MODULES = frozenset({"time", "datetime"})

#: Architecture ranks: an import must flow strictly downward (higher rank
#: may import lower rank, never sideways or up).  ``lint`` is rank 0 but
#: additionally restricted to the stdlib by :class:`LayerBoundaryRule`.
LAYER_RANKS: dict[str, int] = {
    "obs": 0,
    "lint": 0,
    "core": 10,
    "platform": 20,
    "workloads": 20,
    "engine": 30,
    "sim": 35,
    "streampu": 40,
    "sdr": 50,
    "analysis": 60,
    "experiments": 70,
    "bench": 75,
    "cli": 80,
    "": 80,
    "__init__": 80,
    "__main__": 90,
}

#: Construction methods exempt from lock discipline (no sharing yet/anymore).
_LOCK_EXEMPT_METHODS = frozenset({"__init__", "__post_init__", "__del__", "__repr__"})


def _package_of(module: str) -> "str | None":
    """Second-level package of ``module`` (top package inferred)."""
    parts = module.split(".")
    if len(parts) == 1:
        return ""
    if len(parts) == 2 and parts[1] in ("__init__", "__main__"):
        return parts[1]
    if len(parts) == 2:
        return parts[1]
    return parts[1]


@project_register
class WorkerGlobalWriteRule(ProjectRule):
    """REP201: module-level mutable state written on a worker-reachable path."""

    id = "REP201"
    name = "worker-global-write"
    description = (
        "module-level mutable state written by a function reachable from a "
        "worker entry point (static race detector)"
    )
    hint = (
        "pass the state through WorkUnit/return values, or make the binding "
        "immutable; workers must not mutate shared module globals"
    )
    explanation = (
        "Builds the over-approximate call graph, seeds it with every "
        "function dispatched to a pool (.map/.submit/.apply_async/...) plus "
        "every registered strategy (strategies execute inside workers), and "
        "flags any reachable function that rebinds a module global or "
        "mutates a module-level mutable binding (dict/list/set literal, "
        "mutable constructor, or non-frozen class instance). Two workers "
        "racing on such state break the engine's bitwise --jobs guarantee."
    )

    def check(self) -> None:
        pctx = self.pctx
        entries = pctx.worker_entry_points()
        reach = pctx.reachable_from(entries)
        seen: set[tuple[str, str, int]] = set()
        for fid in reach:
            func = pctx.functions[fid]
            for write in func.writes:
                resolved = pctx.resolve_module_binding(func.module, write.name)
                if write.kind == "global":
                    reason = "rebinds module global"
                elif resolved is not None and pctx.binding_is_mutable(resolved[1]):
                    reason = {
                        "subscript": "mutates (item assignment)",
                        "attribute": "mutates (attribute assignment)",
                        "mutcall": f"mutates via {write.detail}",
                    }.get(write.kind, "mutates")
                else:
                    continue
                key = (fid, write.name, write.lineno)
                if key in seen:
                    continue
                seen.add(key)
                entry = entry_of(reach, fid)
                evidence = call_chain(
                    pctx, reach, fid, "worker entry point"
                )
                if resolved is not None:
                    home, binding = resolved
                    evidence.insert(
                        0,
                        EvidenceStep(
                            path=pctx.facts[home].rel,
                            line=binding.lineno,
                            note=f"module-level binding `{write.name}` defined here",
                        ),
                    )
                evidence.append(
                    EvidenceStep(
                        path=pctx.facts[func.module].rel,
                        line=write.lineno,
                        note=f"`{func.qualname}` {reason} `{write.name}`",
                    )
                )
                self.report(
                    func.module,
                    write.lineno,
                    f"`{func.qualname}` {reason} `{write.name}`, and is "
                    f"reachable from worker entry "
                    f"`{pctx.functions[entry].qualname}` "
                    f"({entries.get(entry, 'worker entry')})",
                    symbol=write.name,
                    evidence=evidence,
                )


@project_register
class LockDisciplineRule(ProjectRule):
    """REP202: attrs guarded by a lock in some methods, unguarded in others."""

    id = "REP202"
    name = "lock-discipline"
    description = (
        "attribute guarded by a self-lock in some methods of a class but "
        "accessed unguarded in others"
    )
    hint = (
        "take the same lock around every access, or document why this one "
        "is safe with a per-line pragma"
    )
    explanation = (
        "For every class holding a threading.Lock/RLock attribute, collects "
        "the set of attributes ever accessed inside `with self._lock:` and "
        "flags accesses to those attributes outside the lock in any other "
        "method. Construction methods (__init__/__post_init__) are exempt, "
        "and private helpers invoked exclusively while the lock is held are "
        "treated as lock-held context."
    )

    def check(self) -> None:
        pctx = self.pctx
        for groups in pctx.classes_by_name.values():
            for klass in groups:
                lock_attrs = {
                    attr
                    for attr, ctor in klass.attr_classes
                    if ctor in _LOCK_CTORS
                }
                if not lock_attrs:
                    continue
                self._check_class(klass, lock_attrs)

    def _check_class(self, klass, lock_attrs: set[str]) -> None:
        guard_names = {f"self.{attr}" for attr in lock_attrs}
        method_names = {method.name for method in klass.methods}

        def is_guarded(guards: tuple[str, ...]) -> bool:
            return any(g in guard_names for g in guards)

        # Methods only ever invoked as self.m() while the lock is held are
        # lock-held context themselves (the classic private-helper pattern).
        invocations: dict[str, list[bool]] = {}
        for method in klass.methods:
            for access in method.self_accesses:
                if access.attr in method_names:
                    invocations.setdefault(access.attr, []).append(
                        is_guarded(access.guards)
                    )
        self._lock_held = {
            name
            for name, guarded in invocations.items()
            if guarded and all(guarded)
        }

        guarded_attrs: dict[str, tuple[str, int]] = {}  # attr -> witness site
        for method in klass.methods:
            for access in method.self_accesses:
                if (
                    access.attr not in lock_attrs
                    and access.attr not in method_names
                    and is_guarded(access.guards)
                    and access.attr not in guarded_attrs
                ):
                    guarded_attrs[access.attr] = (method.name, access.lineno)

        reported: set[tuple[str, str]] = set()
        for method in klass.methods:
            if (
                method.name in _LOCK_EXEMPT_METHODS
                or method.name in self._lock_held
            ):
                continue
            for access in method.self_accesses:
                if (
                    access.attr in guarded_attrs
                    and not is_guarded(access.guards)
                    and (method.name, access.attr) not in reported
                ):
                    reported.add((method.name, access.attr))
                    witness_method, witness_line = guarded_attrs[access.attr]
                    rel = self.pctx.facts[klass.module].rel
                    lock = sorted(lock_attrs)[0]
                    self.report(
                        klass.module,
                        access.lineno,
                        f"`{klass.name}.{method.name}` accesses "
                        f"`self.{access.attr}` without holding "
                        f"`self.{lock}`, which guards it in "
                        f"`{klass.name}.{witness_method}`",
                        symbol=f"{klass.name}.{method.name}",
                        evidence=[
                            EvidenceStep(
                                path=rel,
                                line=klass.lineno,
                                note=f"`{klass.name}` holds lock `self.{lock}`",
                            ),
                            EvidenceStep(
                                path=rel,
                                line=witness_line,
                                note=(
                                    f"`self.{access.attr}` guarded by "
                                    f"`self.{lock}` in `{witness_method}`"
                                ),
                            ),
                            EvidenceStep(
                                path=rel,
                                line=access.lineno,
                                note=f"unguarded access in `{method.name}`",
                            ),
                        ],
                    )

    _lock_held: set[str] = set()


@project_register
class ForkUnsafeCaptureRule(ProjectRule):
    """REP203: fork-unsafe objects flowing into process-tier work units."""

    id = "REP203"
    name = "fork-unsafe-capture"
    description = (
        "object holding a lock/file handle/thread flows into a WorkUnit or "
        "a worker dispatch call"
    )
    hint = (
        "ship a picklable config snapshot across the boundary and "
        "reconstruct the stateful object inside the worker"
    )
    explanation = (
        "Computes the transitive closure of fork-unsafe classes (holding "
        "threading primitives, file handles, pools, or other fork-unsafe "
        "project classes) and flags any such value passed into a WorkUnit "
        "constructor or directly into a pool dispatch call. Locks and "
        "handles do not survive pickling into a process worker."
    )

    def check(self) -> None:
        pctx = self.pctx
        unsafe = self._unsafe_classes()
        boundary = self._boundary_class_names()
        for module, ctx in pctx.files.items():
            self._scan_module(module, ctx.tree, unsafe, boundary)
        for site in pctx.dispatch_sites:
            func = self._enclosing(site.module, site.lineno)
            if func is None:
                continue
            for name in site.arg_names:
                cname = pctx.resolve_value_class(func, name)
                if cname is None:
                    continue
                reason = self._unsafety(cname, unsafe)
                if reason is None:
                    continue
                self._report_capture(
                    site.module, site.lineno, name, cname, reason, unsafe,
                    f"passed to a worker pool .{site.method}() call",
                )

    def _unsafe_classes(self) -> dict[str, str]:
        unsafe: dict[str, str] = {}
        changed = True
        while changed:
            changed = False
            for name, groups in self.pctx.classes_by_name.items():
                if name in unsafe:
                    continue
                for klass in groups:
                    for attr, ctor in klass.attr_classes:
                        if ctor in _FORK_UNSAFE_CTORS:
                            unsafe[name] = f"`{name}.{attr}` holds `{ctor}`"
                            changed = True
                        elif ctor in unsafe:
                            unsafe[name] = (
                                f"`{name}.{attr}` holds `{ctor}`; {unsafe[ctor]}"
                            )
                            changed = True
                        if name in unsafe:
                            break
                    if name in unsafe:
                        break
        return unsafe

    def _unsafety(self, cname: str, unsafe: dict[str, str]) -> "str | None":
        if cname in _FORK_UNSAFE_CTORS:
            return f"`{cname}` is fork-unsafe"
        return unsafe.get(cname)

    def _boundary_class_names(self) -> set[str]:
        names = {"WorkUnit"}
        for fid in self.pctx.worker_entry_points():
            func = self.pctx.functions.get(fid)
            if func is None:
                continue
            for _, tokens in func.param_annotations:
                for token in tokens:
                    if token in self.pctx.frozen_class_names:
                        names.add(token)
        return names

    def _enclosing(self, module: str, lineno: int) -> "FunctionFacts | None":
        best: "FunctionFacts | None" = None
        facts = self.pctx.facts.get(module)
        if facts is None:
            return None
        for func in facts.functions:
            if func.lineno <= lineno <= func.end_lineno:
                if best is None or func.lineno > best.lineno:
                    best = func
        return best

    def _scan_module(
        self,
        module: str,
        tree: ast.Module,
        unsafe: dict[str, str],
        boundary: set[str],
    ) -> None:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            leaf = _call_leaf(node)
            if leaf not in boundary:
                continue
            func = self._enclosing(module, node.lineno)
            values = [*node.args, *(kw.value for kw in node.keywords)]
            for value in values:
                cname: "str | None" = None
                name = ""
                if isinstance(value, ast.Name):
                    name = value.id
                    if func is not None:
                        cname = self.pctx.resolve_value_class(func, name)
                elif isinstance(value, ast.Call):
                    cname = _call_leaf(value)
                    name = f"{cname}()" if cname else ""
                if cname is None:
                    continue
                reason = self._unsafety(cname, unsafe)
                if reason is None:
                    continue
                self._report_capture(
                    module, node.lineno, name or cname, cname, reason, unsafe,
                    f"captured by `{leaf}(...)` (crosses the process boundary)",
                )

    def _report_capture(
        self,
        module: str,
        lineno: int,
        name: str,
        cname: str,
        reason: str,
        unsafe: dict[str, str],
        how: str,
    ) -> None:
        evidence = []
        groups = self.pctx.classes_by_name.get(cname, ())
        if groups:
            klass = groups[0]
            evidence.append(
                EvidenceStep(
                    path=self.pctx.facts[klass.module].rel,
                    line=klass.lineno,
                    note=f"fork-unsafe class: {reason}",
                )
            )
        evidence.append(
            EvidenceStep(
                path=self.pctx.facts[module].rel,
                line=lineno,
                note=f"`{name}` {how}",
            )
        )
        self.report(
            module,
            lineno,
            f"fork-unsafe `{name}` ({reason}) {how}",
            symbol=cname,
            evidence=evidence,
        )


@project_register
class LayerBoundaryRule(ProjectRule):
    """REP204: the architecture layering contract, machine-checked."""

    id = "REP204"
    name = "layer-boundary"
    description = (
        "import that inverts the architecture layering (obs < core < "
        "platform/workloads < engine < streampu < sdr < analysis < "
        "experiments < cli); lint imports stdlib only"
    )
    hint = (
        "depend downward: move the shared code into the lower layer or "
        "invert the dependency with a callback/protocol"
    )
    explanation = (
        "Assigns every second-level package a rank and requires each "
        "intra-project import to flow strictly downward (importer rank > "
        "importee rank, same package exempt). The lint package is held to a "
        "stricter contract: stdlib imports only, so the analyzer can never "
        "depend on the code it checks."
    )

    def check(self) -> None:
        pctx = self.pctx
        tops = {module.split(".", 1)[0] for module in pctx.facts}
        for module, mod_facts in sorted(pctx.facts.items()):
            src_pkg = _package_of(module)
            if src_pkg == "lint":
                self._check_lint_module(module, mod_facts, tops)
                continue
            if src_pkg is None or src_pkg not in LAYER_RANKS:
                continue
            for record in mod_facts.imports:
                tgt_top = record.target.split(".", 1)[0]
                if tgt_top not in tops:
                    continue
                tgt_pkg = _package_of(record.target)
                if tgt_pkg is None or tgt_pkg not in LAYER_RANKS:
                    continue
                if tgt_pkg == src_pkg:
                    continue
                if LAYER_RANKS[src_pkg] > LAYER_RANKS[tgt_pkg]:
                    continue
                direction = (
                    "sideways"
                    if LAYER_RANKS[src_pkg] == LAYER_RANKS[tgt_pkg]
                    else "upward"
                )
                self.report(
                    module,
                    record.lineno,
                    f"`{module}` (layer `{src_pkg or 'root'}`, rank "
                    f"{LAYER_RANKS[src_pkg]}) imports `{record.target}` "
                    f"(layer `{tgt_pkg or 'root'}`, rank "
                    f"{LAYER_RANKS[tgt_pkg]}): dependencies must flow "
                    f"strictly downward, this one points {direction}",
                    symbol=record.target,
                    evidence=[
                        EvidenceStep(
                            path=pctx.facts[module].rel,
                            line=record.lineno,
                            note=f"{direction} import of `{record.target}`",
                        )
                    ],
                )

    def _check_lint_module(self, module, mod_facts, tops) -> None:
        top = module.split(".", 1)[0]
        for record in mod_facts.imports:
            target = record.target
            if target == f"{top}.lint" or target.startswith(f"{top}.lint."):
                continue
            head = target.split(".", 1)[0]
            if head in tops:
                self.report(
                    module,
                    record.lineno,
                    f"`{module}` imports `{target}`: the lint package must "
                    f"import nothing but the stdlib (it cannot depend on "
                    f"the code it checks)",
                    symbol=target,
                )
            elif head not in sys.stdlib_module_names:
                self.report(
                    module,
                    record.lineno,
                    f"`{module}` imports third-party `{target}`: the lint "
                    f"package must import nothing but the stdlib",
                    symbol=target,
                )


@project_register
class MemoPurityRule(ProjectRule):
    """REP205: memo-feeding functions must be pure of ambient state/clocks."""

    id = "REP205"
    name = "memo-purity"
    description = (
        "function on a memoized-solve path reads ambient mutable state or a "
        "clock outside repro.obs.clock"
    )
    hint = (
        "thread the value through parameters so it lands in the memo "
        "fingerprint, or route timing through repro.obs.clock"
    )
    explanation = (
        "Seeds the call graph with every registered strategy function "
        "(func=/batch_func= in StrategyInfo) — their results enter the "
        "fingerprint-keyed memo — and flags reachable reads of module-level "
        "mutable bindings and direct stdlib clock calls (time.*, "
        "datetime.now). Anything a memoized result depends on must be part "
        "of its key; ambient state and clocks are not."
    )

    def check(self) -> None:
        pctx = self.pctx
        roots = {root.fid for root in pctx.strategy_roots}
        reach = pctx.reachable_from(roots)
        seen: set[tuple[str, int, str]] = set()
        for fid in reach:
            func = pctx.functions[fid]
            if func.module.endswith(".obs.clock"):
                continue  # the sanctioned wrapper itself
            self._check_clocks(func, reach, seen)
            self._check_ambient_reads(func, reach, seen)

    def _flag(self, func, lineno, message, reach, seen, key) -> None:
        if key in seen:
            return
        seen.add(key)
        evidence = call_chain(self.pctx, reach, func.fid, "memoized strategy root")
        evidence.append(
            EvidenceStep(
                path=self.pctx.facts[func.module].rel,
                line=lineno,
                note=message,
            )
        )
        self.report(
            func.module,
            lineno,
            f"`{func.qualname}` (memoized-solve path) {message}",
            symbol=func.qualname,
            evidence=evidence,
        )

    def _check_clocks(self, func, reach, seen) -> None:
        pctx = self.pctx
        for call in func.calls:
            if call.is_reference:
                continue
            parts = call.name.split(".")
            if parts[-1] not in _CLOCK_NAMES:
                continue
            resolved = pctx.resolve_callable(func.module, call.name)
            if resolved:
                # Resolves to project code: either the sanctioned
                # repro.obs.clock wrapper, or a project function that merely
                # shares a clock name (its own body is checked when reached).
                continue
            origin = None
            head = parts[0]
            if head in _CLOCK_MODULES:
                origin = head
            else:
                imported = pctx._import_maps.get(func.module, {}).get(head)
                if imported is not None and (
                    imported[0] in _CLOCK_MODULES
                    or imported[0].split(".", 1)[0] in _CLOCK_MODULES
                ):
                    origin = imported[0]
            if origin is None:
                continue
            self._flag(
                func,
                call.lineno,
                f"reads the `{origin}` clock via `{call.name}()` outside "
                f"`repro.obs.clock`",
                reach,
                seen,
                (func.fid, call.lineno, call.name),
            )

    def _check_ambient_reads(self, func, reach, seen) -> None:
        pctx = self.pctx
        for read in func.reads:
            resolved = pctx.resolve_module_binding(func.module, read.name)
            if resolved is None:
                continue
            home, binding = resolved
            if not pctx.binding_is_mutable(binding):
                continue
            self._flag(
                func,
                read.lineno,
                f"reads ambient mutable `{read.name}` "
                f"(module-level in `{home}`)",
                reach,
                seen,
                (func.fid, read.lineno, read.name),
            )


@project_register
class DeadPublicSymbolRule(ProjectRule):
    """REP206: exported names never referenced anywhere in the project."""

    id = "REP206"
    name = "dead-public-symbol"
    description = (
        "name exported via __all__ but never referenced in src, tests, "
        "scripts, benchmarks, or examples"
    )
    hint = (
        "delete the symbol (and its __all__ entry), or add the test/usage "
        "that should have existed"
    )
    explanation = (
        "Collects every identifier referenced anywhere under src/tests/"
        "scripts/benchmarks/examples (name loads, attributes, imports, and "
        "identifier tokens in string annotations/docs — __all__ entries "
        "themselves excluded) and flags exported names appearing in no "
        "reference set. Decorator-registered definitions are exempt: "
        "registration is their use."
    )

    def check(self) -> None:
        pctx = self.pctx
        for module, mod_facts in sorted(pctx.facts.items()):
            for export in mod_facts.exports:
                name = export.name
                if name.startswith("__") and name.endswith("__"):
                    continue
                if name in pctx.reference_names:
                    continue
                if self._is_registered_definition(mod_facts, name):
                    continue
                binding = mod_facts.binding(name)
                evidence = []
                if binding is not None:
                    evidence.append(
                        EvidenceStep(
                            path=mod_facts.rel,
                            line=binding.lineno,
                            note=f"`{name}` defined here",
                        )
                    )
                evidence.append(
                    EvidenceStep(
                        path=mod_facts.rel,
                        line=export.lineno,
                        note="exported here, referenced nowhere",
                    )
                )
                self.report(
                    module,
                    export.lineno,
                    f"`{module}.{name}` is exported via __all__ but "
                    f"referenced nowhere in src, tests, scripts, "
                    f"benchmarks, or examples",
                    symbol=name,
                    evidence=evidence,
                )

    def _is_registered_definition(self, mod_facts, name: str) -> bool:
        for func in mod_facts.functions:
            if func.qualname == name:
                return any(
                    not d.startswith("dataclass") for d in func.decorators
                )
        for klass in mod_facts.classes:
            if klass.name == name:
                return any(
                    not d.startswith("dataclass") for d in klass.decorators
                )
        return False


def _call_leaf(node: ast.Call) -> "str | None":
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None
