"""Whole-project semantic analysis (rules REP201-REP206).

Where the per-file rules (REP1xx) see one module at a time, this tier
parses the full tree once into a :class:`ProjectContext` — symbol table,
import graph, over-approximate call graph — and runs the cross-module
rules races, fork-safety, layering, and memo purity actually require.

Run it with ``repro lint --project`` or programmatically::

    from repro.lint.project import ProjectContext, project_rules_by_name
    pctx = ProjectContext.build("src/repro")
    findings = [f for rule in project_rules_by_name() for f in rule(pctx).run()]
"""

from .allowlist import ALLOWLIST, AllowEntry
from .base import (
    PROJECT_RULE_REGISTRY,
    ProjectRule,
    project_register,
    project_rules_by_name,
)
from .context import DispatchSite, ProjectContext, StrategyRoot
from .evidence import call_chain, definition_step, entry_of
from . import rules as _rules  # noqa: F401  (importing registers the rules)

__all__ = [
    "ALLOWLIST",
    "AllowEntry",
    "PROJECT_RULE_REGISTRY",
    "ProjectRule",
    "project_register",
    "project_rules_by_name",
    "ProjectContext",
    "DispatchSite",
    "StrategyRoot",
    "call_chain",
    "definition_step",
    "entry_of",
]
