"""Sanctioned sites for the project-wide rules.

Every entry names one (rule, module, symbol) triple and carries a one-line
justification.  The allowlist is the *only* blanket escape hatch the
project tier offers — everything else must be fixed at the source or
suppressed with a per-line pragma right next to the offending code.  Keep
it short: an entry without a crisp justification is a bug report.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AllowEntry", "ALLOWLIST"]


@dataclass(frozen=True, slots=True)
class AllowEntry:
    """One sanctioned (rule, module, symbol) site."""

    rule_id: str
    module: str
    symbol: str
    justification: str


#: The shipped tree's sanctioned sites.  Each line is a deliberate,
#: reviewed exception — not an accumulating junk drawer.
ALLOWLIST: tuple[AllowEntry, ...] = (
    AllowEntry(
        rule_id="REP201",
        module="repro.obs.context",
        symbol="_AMBIENT",
        justification=(
            "threading.local ambient obs context: each worker thread/process "
            "writes only its own slot, racing is impossible by construction"
        ),
    ),
    AllowEntry(
        rule_id="REP205",
        module="repro.obs.context",
        symbol="counter_add",
        justification=(
            "observability hook: records facts about the solve, never feeds "
            "back into results; bitwise parity is covered by tests"
        ),
    ),
    AllowEntry(
        rule_id="REP201",
        module="repro.engine.batch",
        symbol="_WORKER_MEMO",
        justification=(
            "process-local memo shard: each pool worker mutates only its own "
            "process's dict (never shared memory), values are a pure function "
            "of the key, and pools are campaign-scoped so nothing leaks "
            "across campaigns; cross-tier result parity is covered by tests"
        ),
    ),
)
