"""Per-module facts the project-wide analyzer extracts in one AST pass.

The whole-project rules (REP201-REP206) never re-walk raw trees: each file
is distilled once into a :class:`ModuleFacts` — imports, module-level
bindings with a mutability classification, function summaries (calls,
reads, writes, ``self`` attribute accesses with their guarding ``with``
contexts), class summaries, and ``__all__`` exports.  Rules then reason
over these summaries plus the graphs :mod:`repro.lint.project.context`
derives from them.

Everything here is deliberately *over-approximate in the safe direction
for a linter*: when a construct cannot be resolved statically (a call
through a variable, a dynamically-built name) it is recorded as unknown
and the rules prefer a false negative over a false positive.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable

__all__ = [
    "ImportRecord",
    "Binding",
    "CallSite",
    "ReadSite",
    "WriteSite",
    "SelfAccess",
    "FunctionFacts",
    "ClassFacts",
    "ExportedName",
    "ModuleFacts",
    "extract_module_facts",
    "annotation_tokens",
]

#: Constructors producing module-level *mutable* containers.
_MUTABLE_CTORS = frozenset(
    {
        "dict",
        "list",
        "set",
        "bytearray",
        "defaultdict",
        "OrderedDict",
        "Counter",
        "deque",
        "array",
        "zeros",
        "empty",
        "ones",
        "full",
    }
)

#: Constructors producing immutable values (exact comparison is sound).
_IMMUTABLE_CTORS = frozenset(
    {"tuple", "frozenset", "int", "float", "str", "bytes", "bool", "complex"}
)

#: Method names that mutate their receiver in place.
_MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "remove",
        "discard",
        "sort",
        "reverse",
        "move_to_end",
        "appendleft",
        "popleft",
    }
)


def _dotted(node: ast.AST) -> "str | None":
    """Render a Name/Attribute chain as ``a.b.c`` (None for other shapes)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _base_name(node: ast.AST) -> "str | None":
    """The root Name of an Attribute/Subscript chain, else None."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def annotation_tokens(node: "ast.expr | None") -> frozenset[str]:
    """Identifier tokens mentioned by an annotation (handles string forms)."""
    if node is None:
        return frozenset()
    tokens: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            tokens.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            tokens.add(sub.attr)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            for raw in sub.value.replace("|", " ").replace("[", " ").split():
                token = raw.strip("\"'[](),. ")
                if token.isidentifier():
                    tokens.add(token)
    return frozenset(tokens)


@dataclass(frozen=True, slots=True)
class ImportRecord:
    """One import statement edge out of a module.

    ``target`` is the imported module's dotted name with relative imports
    resolved against the importing module; ``names`` holds the
    ``from ... import`` bindings as ``(name, bound_as)`` pairs (empty for a
    plain ``import``, which binds ``bound_as`` to the module itself).
    """

    target: str
    names: tuple[tuple[str, str], ...]
    bound_as: "str | None"
    lineno: int


@dataclass(frozen=True, slots=True)
class Binding:
    """One module-level name binding with its mutability classification.

    ``mutability`` is ``"mutable"`` (container literal / mutable ctor /
    instance of a non-frozen project class), ``"immutable"`` (constants,
    frozen-dataclass instances, defs, imports), or ``"unknown"``.
    ``value_class`` records ``Cls`` when the binding is ``name = Cls(...)``.
    """

    name: str
    lineno: int
    mutability: str
    value_class: "str | None" = None
    kind: str = "value"  # "value" | "function" | "class" | "import"


@dataclass(frozen=True, slots=True)
class CallSite:
    """One call (or function reference) inside a function body."""

    name: str  # dotted ("a.b.c"), "self.x", or bare
    lineno: int
    is_reference: bool = False  # a bare Name load, not a direct call


@dataclass(frozen=True, slots=True)
class ReadSite:
    """A Name load of a non-local identifier inside a function body."""

    name: str
    lineno: int


@dataclass(frozen=True, slots=True)
class WriteSite:
    """A write whose target resolves to a non-local base name.

    ``kind`` is ``"global"`` (declared ``global`` and assigned),
    ``"subscript"`` (``NAME[...] = ...``), ``"attribute"``
    (``NAME.attr = ...``), or ``"mutcall"`` (``NAME.append(...)`` etc.).
    """

    name: str
    lineno: int
    kind: str
    detail: str = ""


@dataclass(frozen=True, slots=True)
class SelfAccess:
    """One ``self.<attr>`` access inside a method.

    ``guards`` lists the dotted context expressions of the ``with`` blocks
    enclosing the access (e.g. ``("self._lock",)``), which is how the
    lock-discipline rule decides whether the access was protected.
    """

    attr: str
    lineno: int
    write: bool
    guards: tuple[str, ...]


@dataclass(frozen=True, slots=True)
class FunctionFacts:
    """Summary of one function or method."""

    module: str
    qualname: str
    name: str
    lineno: int
    end_lineno: int
    class_name: "str | None"
    calls: tuple[CallSite, ...]
    reads: tuple[ReadSite, ...]
    writes: tuple[WriteSite, ...]
    self_accesses: tuple[SelfAccess, ...]
    global_decls: frozenset[str]
    local_names: frozenset[str]
    param_annotations: tuple[tuple[str, frozenset[str]], ...]
    local_instances: tuple[tuple[str, str, int], ...]
    is_generator: bool
    decorators: tuple[str, ...]

    @property
    def fid(self) -> str:
        """Project-unique function id, ``module:qualname``."""
        return f"{self.module}:{self.qualname}"


@dataclass(frozen=True, slots=True)
class ClassFacts:
    """Summary of one class: methods, attribute types, decorators."""

    module: str
    name: str
    lineno: int
    methods: tuple[FunctionFacts, ...]
    attr_classes: tuple[tuple[str, str], ...]  # self.x = Cls(...) in any method
    decorators: tuple[str, ...]
    bases: tuple[str, ...]

    @property
    def is_frozen_dataclass(self) -> bool:
        """True for ``@dataclass(frozen=True)`` classes (value objects)."""
        return any("frozen=True" in d for d in self.decorators)


@dataclass(frozen=True, slots=True)
class ExportedName:
    """One ``__all__`` entry with the line it appears on."""

    name: str
    lineno: int


@dataclass(frozen=True, slots=True)
class ModuleFacts:
    """Everything the project rules know about one module."""

    module: str
    rel: str
    imports: tuple[ImportRecord, ...]
    bindings: tuple[Binding, ...]
    functions: tuple[FunctionFacts, ...]
    classes: tuple[ClassFacts, ...]
    exports: tuple[ExportedName, ...]
    binding_map: dict[str, Binding] = field(default_factory=dict)

    def binding(self, name: str) -> "Binding | None":
        return self.binding_map.get(name)


class _FunctionScanner(ast.NodeVisitor):
    """Collects call/read/write/self-access facts from one function body."""

    def __init__(self, func: ast.AST, class_name: "str | None") -> None:
        self.class_name = class_name
        self.calls: list[CallSite] = []
        self.reads: list[ReadSite] = []
        self.writes: list[WriteSite] = []
        self.self_accesses: list[SelfAccess] = []
        self.global_decls: set[str] = set()
        self.local_names: set[str] = set()
        self.local_instances: list[tuple[str, str, int]] = []
        self.is_generator = False
        self._guards: list[str] = []
        self._collect_locals(func)

    def _collect_locals(self, func: ast.AST) -> None:
        args = func.args  # type: ignore[attr-defined]
        for arg in (
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        ):
            self.local_names.add(arg.arg)
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                self.global_decls.update(node.names)
            elif isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                self.local_names.add(node.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is not func:
                    self.local_names.add(node.name)
        self.local_names -= self.global_decls

    # -- traversal helpers ---------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Nested defs: their bodies still run in-process when called, so we
        # keep scanning (their locals were already folded in).
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Yield(self, node: ast.Yield) -> None:
        self.is_generator = True
        self.generic_visit(node)

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        self.is_generator = True
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: "ast.With | ast.AsyncWith") -> None:
        added = []
        for item in node.items:
            dotted = _dotted(item.context_expr)
            if dotted is None and isinstance(item.context_expr, ast.Call):
                dotted = _dotted(item.context_expr.func)
            if dotted is not None:
                self._guards.append(dotted)
                added.append(dotted)
            # the context expression itself is evaluated unguarded
            self._scan_expr(item.context_expr, guarded_before=len(added))
        for stmt in node.body:
            self.visit(stmt)
        for _ in added:
            self._guards.pop()

    def _scan_expr(self, expr: ast.expr, guarded_before: int) -> None:
        # Record self-accesses in the context expression with the guards
        # active *before* this with-item acquired its own.
        saved = self._guards
        self._guards = saved[: len(saved) - guarded_before]
        self.visit(expr)
        self._guards = saved

    # -- fact collection -----------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        if isinstance(node.value, ast.Call):
            ctor = node.value.func
            cname = (
                ctor.id
                if isinstance(ctor, ast.Name)
                else (ctor.attr if isinstance(ctor, ast.Attribute) else None)
            )
            if cname is not None:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.local_instances.append(
                            (target.id, cname, node.lineno)
                        )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is not None:
            self.calls.append(CallSite(name=dotted, lineno=node.lineno))
            base = dotted.split(".", 1)[0]
            if (
                "." in dotted
                and node.func.attr in _MUTATING_METHODS  # type: ignore[union-attr]
                and base not in self.local_names
                and base != "self"
            ):
                self.writes.append(
                    WriteSite(
                        name=base,
                        lineno=node.lineno,
                        kind="mutcall",
                        detail=f"{dotted}()",
                    )
                )
        for child in ast.iter_child_nodes(node):
            self.visit(child)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            if node.id not in self.local_names:
                self.reads.append(ReadSite(name=node.id, lineno=node.lineno))
                self.calls.append(
                    CallSite(name=node.id, lineno=node.lineno, is_reference=True)
                )
        elif isinstance(node.ctx, ast.Store) and node.id in self.global_decls:
            self.writes.append(
                WriteSite(name=node.id, lineno=node.lineno, kind="global")
            )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        base = _base_name(node)
        if base == "self" and isinstance(node.value, ast.Name):
            self.self_accesses.append(
                SelfAccess(
                    attr=node.attr,
                    lineno=node.lineno,
                    write=isinstance(node.ctx, (ast.Store, ast.Del)),
                    guards=tuple(self._guards),
                )
            )
        elif (
            isinstance(node.ctx, (ast.Store, ast.Del))
            and base is not None
            and base not in self.local_names
        ):
            self.writes.append(
                WriteSite(
                    name=base,
                    lineno=node.lineno,
                    kind="attribute",
                    detail=_dotted(node) or node.attr,
                )
            )
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        base = _base_name(node.value)
        if (
            isinstance(node.ctx, (ast.Store, ast.Del))
            and base is not None
            and base not in self.local_names
            and base != "self"
        ):
            self.writes.append(
                WriteSite(name=base, lineno=node.lineno, kind="subscript")
            )
        self.generic_visit(node)


def _classify_value(value: "ast.expr | None") -> "tuple[str, str | None]":
    """``(mutability, value_class)`` of a module-level assigned value."""
    if value is None:
        return "unknown", None
    if isinstance(
        value, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)
    ):
        return "mutable", None
    if isinstance(value, (ast.Constant, ast.Tuple, ast.JoinedStr)):
        return "immutable", None
    if isinstance(value, ast.Call):
        func = value.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else (func.attr if isinstance(func, ast.Attribute) else None)
        )
        if name in _MUTABLE_CTORS:
            return "mutable", None
        if name in _IMMUTABLE_CTORS:
            return "immutable", None
        if name is not None and name.lstrip("_")[:1].isupper():
            # instance of a class; frozen-ness resolved later by the context
            return "instance", name
    return "unknown", None


def _scan_function(
    node: "ast.FunctionDef | ast.AsyncFunctionDef",
    module: str,
    class_name: "str | None",
) -> FunctionFacts:
    scanner = _FunctionScanner(node, class_name)
    for stmt in node.body:
        scanner.visit(stmt)
    qualname = f"{class_name}.{node.name}" if class_name else node.name
    params = tuple(
        (arg.arg, annotation_tokens(arg.annotation))
        for arg in (*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs)
        if arg.annotation is not None
    )
    return FunctionFacts(
        module=module,
        qualname=qualname,
        name=node.name,
        lineno=node.lineno,
        end_lineno=getattr(node, "end_lineno", node.lineno) or node.lineno,
        class_name=class_name,
        calls=tuple(scanner.calls),
        reads=tuple(scanner.reads),
        writes=tuple(scanner.writes),
        self_accesses=tuple(scanner.self_accesses),
        global_decls=frozenset(scanner.global_decls),
        local_names=frozenset(scanner.local_names),
        param_annotations=params,
        local_instances=tuple(scanner.local_instances),
        is_generator=scanner.is_generator,
        decorators=tuple(
            ast.unparse(d) for d in node.decorator_list
        ),
    )


def _resolve_relative(module: str, level: int, target: "str | None") -> str:
    """Resolve a relative import against the importing module's name."""
    parts = module.split(".")[:-1]  # drop the module's own leaf
    if level > 1:
        parts = parts[: len(parts) - (level - 1)]
    if target:
        parts = [*parts, *target.split(".")]
    return ".".join(parts)


def extract_module_facts(
    module: str, rel: str, tree: ast.Module
) -> ModuleFacts:
    """Distill one parsed module into its :class:`ModuleFacts`."""
    imports: list[ImportRecord] = []
    bindings: list[Binding] = []
    functions: list[FunctionFacts] = []
    classes: list[ClassFacts] = []
    exports: list[ExportedName] = []

    def record_binding(
        name: str, lineno: int, value: "ast.expr | None", kind: str = "value"
    ) -> None:
        if kind in ("function", "class", "import"):
            bindings.append(
                Binding(name=name, lineno=lineno, mutability="immutable", kind=kind)
            )
            return
        mutability, value_class = _classify_value(value)
        bindings.append(
            Binding(
                name=name,
                lineno=lineno,
                mutability=mutability,
                value_class=value_class,
            )
        )

    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports.append(
                    ImportRecord(
                        target=alias.name,
                        names=(),
                        bound_as=alias.asname or alias.name.split(".")[0],
                        lineno=node.lineno,
                    )
                )
                record_binding(
                    alias.asname or alias.name.split(".")[0],
                    node.lineno,
                    None,
                    kind="import",
                )
        elif isinstance(node, ast.ImportFrom):
            target = (
                _resolve_relative(module, node.level, node.module)
                if node.level
                else (node.module or "")
            )
            imports.append(
                ImportRecord(
                    target=target,
                    names=tuple(
                        (alias.name, alias.asname or alias.name)
                        for alias in node.names
                    ),
                    bound_as=None,
                    lineno=node.lineno,
                )
            )
            for alias in node.names:
                record_binding(
                    alias.asname or alias.name, node.lineno, None, kind="import"
                )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.append(_scan_function(node, module, None))
            record_binding(node.name, node.lineno, None, kind="function")
        elif isinstance(node, ast.ClassDef):
            methods = [
                _scan_function(sub, module, node.name)
                for sub in node.body
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
            ]
            attr_classes: list[tuple[str, str]] = []
            for sub in ast.walk(node):
                if isinstance(sub, ast.Assign):
                    for target_node in sub.targets:
                        if (
                            isinstance(target_node, ast.Attribute)
                            and isinstance(target_node.value, ast.Name)
                            and target_node.value.id == "self"
                            and isinstance(sub.value, ast.Call)
                        ):
                            ctor = sub.value.func
                            cname = (
                                ctor.id
                                if isinstance(ctor, ast.Name)
                                else (
                                    ctor.attr
                                    if isinstance(ctor, ast.Attribute)
                                    else None
                                )
                            )
                            if cname is not None:
                                attr_classes.append((target_node.attr, cname))
            classes.append(
                ClassFacts(
                    module=module,
                    name=node.name,
                    lineno=node.lineno,
                    methods=tuple(methods),
                    attr_classes=tuple(attr_classes),
                    decorators=tuple(ast.unparse(d) for d in node.decorator_list),
                    bases=tuple(
                        filter(None, (_dotted(base) for base in node.bases))
                    ),
                )
            )
            functions.extend(methods)
            record_binding(node.name, node.lineno, None, kind="class")
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            value = node.value
            for target_node in targets:
                if not isinstance(target_node, ast.Name):
                    continue
                if target_node.id == "__all__" and isinstance(
                    value, (ast.List, ast.Tuple)
                ):
                    for element in value.elts:
                        if isinstance(element, ast.Constant) and isinstance(
                            element.value, str
                        ):
                            exports.append(
                                ExportedName(
                                    name=element.value, lineno=element.lineno
                                )
                            )
                    continue
                record_binding(target_node.id, node.lineno, value)

    facts = ModuleFacts(
        module=module,
        rel=rel,
        imports=tuple(imports),
        bindings=tuple(bindings),
        functions=tuple(functions),
        classes=tuple(classes),
        exports=tuple(exports),
    )
    for binding in bindings:
        facts.binding_map[binding.name] = binding
    return facts


def collect_reference_names(trees: Iterable[ast.Module]) -> set[str]:
    """Identifiers referenced anywhere in the given trees (REP206 input).

    A name counts as referenced when it appears as a Name load, an
    attribute, an imported name, a segment of an imported module path, or
    an identifier token inside any string constant (type annotations in
    string form, doctests, documented API names).  Definitions (Name
    stores, ``def``/``class`` statements) and ``__all__`` string entries do
    NOT count — an export mentioned only by its own ``__all__`` is dead.
    """
    referenced: set[str] = set()
    for tree in trees:
        all_strings: set[int] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id == "__all__"
                        and isinstance(node.value, (ast.List, ast.Tuple))
                    ):
                        for element in node.value.elts:
                            all_strings.add(id(element))
        for node in ast.walk(tree):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Load, ast.Del)
            ):
                referenced.add(node.id)
            elif isinstance(node, ast.Attribute):
                referenced.add(node.attr)
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    referenced.add(alias.name)
                if node.module:
                    referenced.update(node.module.split("."))
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    referenced.update(alias.name.split("."))
            elif (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and id(node) not in all_strings
            ):
                for raw in node.value.split():
                    for token in (
                        raw.replace("(", " ").replace(")", " ")
                        .replace("[", " ").replace("]", " ")
                        .replace(".", " ").replace(",", " ")
                        .replace("`", " ").replace(":", " ").split()
                    ):
                        if token.isidentifier():
                            referenced.add(token)
    return referenced


__all__.append("collect_reference_names")
