"""Evidence-chain construction for project-wide findings.

A cross-module finding is only actionable if the report shows *why* the
analyzer believes it: the definition site of the entry point, the call
edges that connect it to the offending function, and the violation site
itself.  :func:`call_chain` rebuilds that path from the BFS parent
pointers :meth:`ProjectContext.reachable_from` records.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..findings import EvidenceStep

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .context import ProjectContext

__all__ = ["call_chain", "definition_step", "entry_of"]


def entry_of(reach: dict[str, tuple["str | None", int]], fid: str) -> str:
    """The entry point whose BFS tree contains ``fid``."""
    cursor = fid
    while True:
        parent, _ = reach[cursor]
        if parent is None or parent == cursor:
            return cursor
        cursor = parent


def definition_step(pctx: "ProjectContext", fid: str, note: str) -> EvidenceStep:
    """An evidence step anchored at a function's ``def`` line."""
    func = pctx.functions[fid]
    rel = pctx.facts[func.module].rel
    return EvidenceStep(path=rel, line=func.lineno, note=note)


def call_chain(
    pctx: "ProjectContext",
    reach: dict[str, tuple["str | None", int]],
    fid: str,
    entry_note: str,
) -> list[EvidenceStep]:
    """Definition-site -> call-path evidence for ``fid``.

    Args:
        pctx: the project context.
        reach: parent map returned by ``reachable_from``.
        fid: the reached function the finding lives in.
        entry_note: role of the path's entry point (e.g. ``"worker entry
            point"``) — interpolated with the entry's qualname.
    """
    path: list[str] = []
    cursor: "str | None" = fid
    while cursor is not None:
        path.append(cursor)
        parent, _ = reach.get(cursor, (None, 0))
        if parent == cursor:
            break
        cursor = parent
    path.reverse()  # entry first

    steps: list[EvidenceStep] = []
    entry = path[0]
    steps.append(
        definition_step(
            pctx, entry, f"{entry_note}: `{pctx.functions[entry].qualname}`"
        )
    )
    for prev, nxt in zip(path, path[1:]):
        _, lineno = reach[nxt]
        prev_func = pctx.functions[prev]
        rel = pctx.facts[prev_func.module].rel
        steps.append(
            EvidenceStep(
                path=rel,
                line=lineno,
                note=(
                    f"`{prev_func.qualname}` calls "
                    f"`{pctx.functions[nxt].qualname}`"
                ),
            )
        )
    return steps
