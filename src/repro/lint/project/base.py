"""Project-rule machinery: base class and the REP2xx registry.

Project rules parallel the per-file :class:`~repro.lint.base.LintRule` but
see the whole tree at once through a :class:`ProjectContext`.  They live in
their own registry so the per-file engine, its CLI defaults, and the tests
that pin the per-file rule set are untouched; ``repro lint --project``
selects from this registry instead.

Suppression composes from both layers: a per-line pragma
(``# lint: ignore[rule-name]``) on the violation line still works — the
project engine resolves it through the same :class:`FileContext` — and a
sanctioned (rule, module, symbol) triple in the allowlist silences the
site tree-wide, each entry carrying a one-line justification.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterable, Sequence

from ..findings import EvidenceStep, Finding, Severity
from .context import ProjectContext

__all__ = [
    "ProjectRule",
    "PROJECT_RULE_REGISTRY",
    "project_register",
    "project_rules_by_name",
]


class ProjectRule:
    """Base class for one whole-project rule.

    Subclasses set the class attributes and implement :meth:`check`,
    calling :meth:`report` for each violation.  ``explanation`` backs
    ``repro lint --explain REPxxx``.
    """

    #: Stable identifier, e.g. ``REP201``.
    id: ClassVar[str]
    #: Human slug, e.g. ``worker-global-write``.
    name: ClassVar[str]
    #: One-line description shown by ``--list-rules``.
    description: ClassVar[str]
    #: Default fix hint attached to findings.
    hint: ClassVar[str]
    #: Longer prose for ``--explain``: what the rule computes and why.
    explanation: ClassVar[str] = ""
    #: Default severity of the rule's findings.
    severity: ClassVar[Severity] = Severity.ERROR

    def __init__(self, pctx: ProjectContext) -> None:
        self.pctx = pctx
        self.findings: list[Finding] = []

    def check(self) -> None:
        """Inspect the project and call :meth:`report` on violations."""
        raise NotImplementedError

    def run(self) -> list[Finding]:
        """Execute the rule and return its surviving findings."""
        self.check()
        return self.findings

    def report(
        self,
        module: str,
        line: "int | ast.AST",
        message: str,
        *,
        symbol: str,
        evidence: "Sequence[EvidenceStep] | None" = None,
        hint: "str | None" = None,
        severity: "Severity | None" = None,
        col: int = 0,
    ) -> None:
        """Record one violation unless a pragma or allowlist entry covers it.

        Args:
            module: dotted module the violation lives in.
            line: 1-based line number or the anchoring AST node.
            message: occurrence-specific description.
            symbol: the symbol the allowlist matches on (function qualname,
                binding name, or exported name).
            evidence: cross-file chain (definition -> call path -> site).
        """
        if isinstance(line, ast.AST):
            col = getattr(line, "col_offset", 0)
            line = getattr(line, "lineno", 1)
        ctx = self.pctx.files.get(module)
        if ctx is None:
            return
        if ctx.is_suppressed(line, self):  # type: ignore[arg-type]
            return
        if self.pctx.allowed(self.id, module, symbol) is not None:
            return
        self.findings.append(
            Finding(
                rule_id=self.id,
                rule_name=self.name,
                message=message,
                hint=hint if hint is not None else self.hint,
                path=ctx.rel,
                line=line,
                col=col,
                severity=severity if severity is not None else self.severity,
                evidence=tuple(evidence or ()),
            )
        )


#: All registered project rules, keyed by slug, in registration order.
PROJECT_RULE_REGISTRY: dict[str, type[ProjectRule]] = {}


def project_register(cls: type[ProjectRule]) -> type[ProjectRule]:
    """Class decorator adding a rule to :data:`PROJECT_RULE_REGISTRY`."""
    for attr in ("id", "name", "description", "hint"):
        if not getattr(cls, attr, None):
            raise ValueError(f"project rule {cls.__name__} is missing {attr!r}")
    if cls.name in PROJECT_RULE_REGISTRY:
        raise ValueError(f"duplicate project rule name {cls.name!r}")
    ids = {rule.id for rule in PROJECT_RULE_REGISTRY.values()}
    if cls.id in ids:
        raise ValueError(f"duplicate project rule id {cls.id!r}")
    PROJECT_RULE_REGISTRY[cls.name] = cls
    return cls


def project_rules_by_name(
    names: "Iterable[str] | None" = None,
) -> list[type[ProjectRule]]:
    """Resolve selectors (slugs or REP2xx ids) to project rule classes."""
    if names is None:
        return list(PROJECT_RULE_REGISTRY.values())
    by_id = {rule.id: rule for rule in PROJECT_RULE_REGISTRY.values()}
    selected: list[type[ProjectRule]] = []
    for name in names:
        rule = PROJECT_RULE_REGISTRY.get(name) or by_id.get(name.upper())
        if rule is None:
            raise KeyError(
                f"unknown project lint rule {name!r}; available: "
                f"{sorted(PROJECT_RULE_REGISTRY)}"
            )
        if rule not in selected:
            selected.append(rule)
    return selected
