"""The shared :class:`ProjectContext` handed to every project-wide rule.

Built once per ``repro lint --project`` run: parse every module under the
package root, distill each into :class:`~repro.lint.project.model.ModuleFacts`,
then derive the three graphs the REP201-REP206 rules reason over:

* the **symbol table** — every module-level binding, function, and class,
  indexed by module, bare name, and project-unique function id;
* the **import graph** — per-module import records with relative imports
  resolved, plus the per-name import map (``bound name -> (module, orig)``)
  used to resolve cross-module references;
* the **call graph** — an over-approximate edge set: direct calls resolve
  through the import map, ``self.x()`` resolves within the class, attribute
  calls fall back to *every* project method of that name, and a bare
  reference to a known function counts as a potential (higher-order) call.

Over-approximation is deliberate: reachability-based rules (REP201, REP205)
must not miss a worker-side write because the call went through a variable.
The cost — the occasional sanctioned site — is paid once, with a justified
allowlist entry.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from ..base import FileContext
from .allowlist import ALLOWLIST, AllowEntry
from .model import (
    Binding,
    ClassFacts,
    FunctionFacts,
    ModuleFacts,
    collect_reference_names,
    extract_module_facts,
)

__all__ = ["ProjectContext", "DispatchSite", "StrategyRoot"]

#: Method names that dispatch a callable onto a worker pool.
_DISPATCH_METHODS = frozenset(
    {"map", "submit", "apply_async", "imap", "imap_unordered", "starmap"}
)

#: Attribute-call names too generic to over-approximate into call edges
#: unless they resolve exactly (would connect every dict.get to a method).
_NO_FALLBACK_ATTRS = frozenset(
    {
        "get", "items", "keys", "values", "copy", "index", "count", "join",
        "split", "strip", "format", "read", "write", "close", "append",
        "extend", "add", "update", "pop", "sort", "setdefault",
    }
)


@dataclass(frozen=True, slots=True)
class DispatchSite:
    """One ``pool.map(fn, ...)``-style worker dispatch call."""

    module: str
    lineno: int
    method: str
    target_fids: tuple[str, ...]
    arg_names: tuple[str, ...]  # remaining argument base names (REP203)


@dataclass(frozen=True, slots=True)
class StrategyRoot:
    """One function registered as a strategy via ``StrategyInfo(func=...)``."""

    module: str
    lineno: int
    keyword: str  # "func" | "batch_func"
    fid: str


@dataclass
class ProjectContext:
    """Whole-project facts and graphs shared by all project rules."""

    package_root: Path
    project_root: Path
    files: dict[str, FileContext]
    facts: dict[str, ModuleFacts]
    functions: dict[str, FunctionFacts]
    classes_by_name: dict[str, tuple[ClassFacts, ...]]
    call_edges: dict[str, tuple[tuple[str, int], ...]]
    dispatch_sites: tuple[DispatchSite, ...]
    strategy_roots: tuple[StrategyRoot, ...]
    reference_names: frozenset[str]
    frozen_class_names: frozenset[str]
    allowlist: tuple[AllowEntry, ...]
    _import_maps: dict[str, dict[str, tuple[str, "str | None"]]] = field(
        default_factory=dict
    )
    _functions_by_bare: dict[str, tuple[str, ...]] = field(default_factory=dict)
    _methods_by_bare: dict[str, tuple[str, ...]] = field(default_factory=dict)

    # -- construction --------------------------------------------------------

    @classmethod
    def build(
        cls,
        package_root: "Path | str",
        project_root: "Path | str | None" = None,
        allowlist: "Sequence[AllowEntry] | None" = None,
        reference_dirs: "Sequence[str] | None" = None,
    ) -> "ProjectContext":
        """Parse the tree under ``package_root`` and derive all graphs.

        Args:
            package_root: directory of the analyzed package (e.g.
                ``src/repro``); every ``.py`` beneath it is analyzed.
            project_root: repository root; reference scanning for REP206
                covers ``src``, ``tests``, ``scripts``, ``benchmarks`` and
                ``examples`` under it (defaults to two levels above
                ``package_root`` when that looks like ``<root>/src/repro``,
                else ``package_root``'s parent).
            allowlist: sanctioned-site entries (default: the shipped
                :data:`~repro.lint.project.allowlist.ALLOWLIST`).
            reference_dirs: override the reference-scan subdirectories.
        """
        from ..engine import _module_name, iter_python_files

        package_root = Path(package_root).resolve()
        if project_root is None:
            if package_root.parent.name == "src":
                root = package_root.parent.parent
            else:
                root = package_root.parent
        else:
            root = Path(project_root).resolve()

        files: dict[str, FileContext] = {}
        facts: dict[str, ModuleFacts] = {}
        for path in iter_python_files([package_root]):
            source = path.read_text(encoding="utf-8")
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError:
                continue  # surfaced by the per-file pass as REP000
            module = _module_name(path)
            rel = _rel(path, root)
            files[module] = FileContext(
                path=path, rel=rel, module=module, source=source, tree=tree
            )
            facts[module] = extract_module_facts(module, rel, tree)

        functions: dict[str, FunctionFacts] = {}
        classes_by_name: dict[str, list[ClassFacts]] = {}
        frozen: set[str] = set()
        for mod_facts in facts.values():
            for func in mod_facts.functions:
                functions[func.fid] = func
            for klass in mod_facts.classes:
                classes_by_name.setdefault(klass.name, []).append(klass)
                if klass.is_frozen_dataclass:
                    frozen.add(klass.name)

        reference_names = _scan_references(
            root, reference_dirs or ("src", "tests", "scripts", "benchmarks", "examples")
        )

        ctx = cls(
            package_root=package_root,
            project_root=root,
            files=files,
            facts=facts,
            functions=functions,
            classes_by_name={
                name: tuple(group) for name, group in classes_by_name.items()
            },
            call_edges={},
            dispatch_sites=(),
            strategy_roots=(),
            reference_names=frozenset(reference_names),
            frozen_class_names=frozenset(frozen),
            allowlist=tuple(ALLOWLIST if allowlist is None else allowlist),
        )
        ctx._index_names()
        ctx._build_import_maps()
        ctx._build_call_graph()
        ctx._find_dispatch_sites()
        ctx._find_strategy_roots()
        return ctx

    def _index_names(self) -> None:
        by_func: dict[str, list[str]] = {}
        by_method: dict[str, list[str]] = {}
        for fid, func in self.functions.items():
            target = by_method if func.class_name else by_func
            target.setdefault(func.name, []).append(fid)
        self._functions_by_bare = {k: tuple(v) for k, v in by_func.items()}
        self._methods_by_bare = {k: tuple(v) for k, v in by_method.items()}

    def _build_import_maps(self) -> None:
        for module, mod_facts in self.facts.items():
            mapping: dict[str, tuple[str, "str | None"]] = {}
            for record in mod_facts.imports:
                if record.bound_as is not None:
                    mapping[record.bound_as] = (record.target, None)
                for name, bound_as in record.names:
                    mapping[bound_as] = (record.target, name)
            self._import_maps[module] = mapping

    # -- name resolution -----------------------------------------------------

    def resolve_callable(self, module: str, dotted: str) -> tuple[str, ...]:
        """Project function ids a call to ``dotted`` from ``module`` may hit.

        Exact resolution (own module, then the import map) is preferred;
        attribute calls that stay unresolved fall back to every project
        method with the same terminal name, except for the deliberately
        excluded generic names in ``_NO_FALLBACK_ATTRS``.
        """
        if dotted.startswith("self."):
            return ()  # resolved by the caller, which knows the class
        parts = dotted.split(".")
        head, leaf = parts[0], parts[-1]
        mod_facts = self.facts.get(module)
        if mod_facts is None:
            return ()

        if len(parts) == 1:
            fid = f"{module}:{head}"
            if fid in self.functions:
                return (fid,)
            for klass in mod_facts.classes:
                if klass.name == head:
                    return self._ctor_fids(klass)
            resolved = self._resolve_import(module, head)
            if resolved is not None:
                return resolved
            return ()

        # dotted: try "<imported module>.<leaf>" exactly first
        imported = self._import_maps.get(module, {}).get(head)
        if imported is not None:
            target_module, orig = imported
            base = (
                target_module
                if orig is None
                else f"{target_module}.{orig}"
            )
            middle = parts[1:-1]
            candidate_module = ".".join([base, *middle])
            fid = f"{candidate_module}:{leaf}"
            if fid in self.functions:
                return (fid,)
            target_facts = self.facts.get(candidate_module)
            if target_facts is not None:
                for klass in target_facts.classes:
                    if klass.name == leaf:
                        return self._ctor_fids(klass)
                return ()  # resolved module, no such symbol: stdlib-ish
        if leaf in _NO_FALLBACK_ATTRS:
            return ()
        return self._methods_by_bare.get(leaf, ())

    def _resolve_import(self, module: str, name: str) -> "tuple[str, ...] | None":
        imported = self._import_maps.get(module, {}).get(name)
        if imported is None:
            return None
        target_module, orig = imported
        if orig is None:
            return ()  # a module object, not a callable
        fid = f"{target_module}:{orig}"
        if fid in self.functions:
            return (fid,)
        target_facts = self.facts.get(target_module)
        if target_facts is not None:
            for klass in target_facts.classes:
                if klass.name == orig:
                    return self._ctor_fids(klass)
        # re-export hop: ``from repro.obs import activate`` where obs/__init__
        # itself imported activate from repro.obs.context
        hop = self._import_maps.get(target_module, {}).get(orig)
        if hop is not None:
            hop_module, hop_orig = hop
            fid = f"{hop_module}:{hop_orig or orig}"
            if fid in self.functions:
                return (fid,)
        return ()

    def _ctor_fids(self, klass: ClassFacts) -> tuple[str, ...]:
        fids = []
        for method in klass.methods:
            if method.name in ("__init__", "__post_init__", "__new__"):
                fids.append(method.fid)
        return tuple(fids)

    def resolve_value_class(self, func: FunctionFacts, name: str) -> "str | None":
        """Best-effort class of the local/module value bound to ``name``."""
        for local, cname, _ in reversed(func.local_instances):
            if local == name:
                return cname
        mod_facts = self.facts.get(func.module)
        if mod_facts is not None:
            binding = mod_facts.binding(name)
            if binding is not None and binding.value_class is not None:
                return binding.value_class
        for param, tokens in func.param_annotations:
            if param == name:
                for token in tokens:
                    if token in self.classes_by_name:
                        return token
        return None

    def resolve_module_binding(
        self, module: str, name: str
    ) -> "tuple[str, Binding] | None":
        """The module-level binding ``name`` refers to, following imports."""
        mod_facts = self.facts.get(module)
        if mod_facts is None:
            return None
        binding = mod_facts.binding(name)
        if binding is not None and binding.kind != "import":
            return (module, binding)
        imported = self._import_maps.get(module, {}).get(name)
        if imported is not None:
            target_module, orig = imported
            target_facts = self.facts.get(target_module)
            if target_facts is not None and orig is not None:
                hop = target_facts.binding(orig)
                if hop is not None and hop.kind != "import":
                    return (target_module, hop)
        return None

    def binding_is_mutable(self, binding: Binding) -> bool:
        """True when a module-level binding holds shared mutable state."""
        if binding.mutability == "mutable":
            return True
        if binding.mutability == "instance":
            cname = binding.value_class or ""
            if cname in self.frozen_class_names:
                return False
            if cname in self.classes_by_name:
                return True  # non-frozen project class instance
            return cname in ("local", "Lock", "RLock", "Event", "Queue")
        return False

    # -- graphs --------------------------------------------------------------

    def _build_call_graph(self) -> None:
        edges: dict[str, list[tuple[str, int]]] = {}
        for fid, func in self.functions.items():
            out: dict[str, int] = {}
            for call in func.calls:
                if call.name.startswith("self.") and func.class_name:
                    leaf = call.name.split(".", 1)[1]
                    if "." not in leaf:
                        callee = f"{func.module}:{func.class_name}.{leaf}"
                        if callee in self.functions:
                            out.setdefault(callee, call.lineno)
                    continue
                if call.is_reference and "." in call.name:
                    continue
                for callee in self.resolve_callable(func.module, call.name):
                    if callee != fid:
                        out.setdefault(callee, call.lineno)
            edges[fid] = list(out.items())
        self.call_edges = {
            fid: tuple(pairs) for fid, pairs in edges.items()
        }

    def reachable_from(
        self, entries: Iterable[str]
    ) -> dict[str, tuple["str | None", int]]:
        """BFS over the call graph; maps fid -> (parent fid, call line).

        Entry points map to ``(None, 0)``.  The parent pointers reconstruct
        one concrete call path for evidence chains.
        """
        visited: dict[str, tuple["str | None", int]] = {}
        queue: list[str] = []
        for entry in entries:
            if entry in self.functions and entry not in visited:
                visited[entry] = (None, 0)
                queue.append(entry)
        while queue:
            fid = queue.pop(0)
            for callee, lineno in self.call_edges.get(fid, ()):
                if callee not in visited:
                    visited[callee] = (fid, lineno)
                    queue.append(callee)
        return visited

    def package_import_graph(self) -> dict[str, set[tuple[str, str, int]]]:
        """Second-level package graph: pkg -> {(target_pkg, module, lineno)}.

        Only intra-project (``repro.*``) imports appear; the top package
        itself is the pseudo-package ``""``.
        """
        top = self._top_package()
        graph: dict[str, set[tuple[str, str, int]]] = {}
        for module, mod_facts in self.facts.items():
            src_pkg = _package_of(module, top)
            if src_pkg is None:
                continue
            for record in mod_facts.imports:
                tgt_pkg = _package_of(record.target, top)
                if tgt_pkg is None:
                    continue
                graph.setdefault(src_pkg, set()).add(
                    (tgt_pkg, module, record.lineno)
                )
        return graph

    def _top_package(self) -> str:
        for module in self.facts:
            return module.split(".", 1)[0]
        return "repro"

    # -- entry / root discovery ----------------------------------------------

    def _find_dispatch_sites(self) -> None:
        sites: list[DispatchSite] = []
        for module, ctx in self.files.items():
            for node in ast.walk(ctx.tree):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _DISPATCH_METHODS
                    and node.args
                ):
                    continue
                first = node.args[0]
                target = _expr_name(first)
                if target is None:
                    continue
                fids = self.resolve_callable(module, target)
                arg_names = tuple(
                    name
                    for arg in node.args[1:]
                    for name in [_expr_name(arg)]
                    if name is not None
                )
                if fids:
                    sites.append(
                        DispatchSite(
                            module=module,
                            lineno=node.lineno,
                            method=node.func.attr,
                            target_fids=fids,
                            arg_names=arg_names,
                        )
                    )
        self.dispatch_sites = tuple(sites)

    def _find_strategy_roots(self) -> None:
        roots: list[StrategyRoot] = []
        for module, ctx in self.files.items():
            for node in ast.walk(ctx.tree):
                if not (
                    isinstance(node, ast.Call)
                    and _expr_name(node.func) is not None
                    and _expr_name(node.func).rsplit(".", 1)[-1] == "StrategyInfo"
                ):
                    continue
                for keyword in node.keywords:
                    if keyword.arg not in ("func", "batch_func"):
                        continue
                    target = _expr_name(keyword.value)
                    if target is None:
                        continue
                    for fid in self.resolve_callable(module, target):
                        roots.append(
                            StrategyRoot(
                                module=module,
                                lineno=node.lineno,
                                keyword=keyword.arg,
                                fid=fid,
                            )
                        )
        self.strategy_roots = tuple(roots)

    def worker_entry_points(self) -> dict[str, str]:
        """fid -> why it is a worker entry point (REP201 seed set).

        Worker entries are functions handed to pool dispatch calls plus
        every registered strategy function (strategies execute inside
        worker processes/threads once dispatched).
        """
        entries: dict[str, str] = {}
        for site in self.dispatch_sites:
            where = self.facts[site.module].rel if site.module in self.facts else site.module
            for fid in site.target_fids:
                entries.setdefault(
                    fid,
                    f"dispatched to a worker pool via .{site.method}() at "
                    f"{where}:{site.lineno}",
                )
        for root in self.strategy_roots:
            entries.setdefault(
                root.fid,
                f"registered strategy ({root.keyword}=) runs inside workers",
            )
        return entries

    # -- allowlist -----------------------------------------------------------

    def allowed(self, rule_id: str, module: str, symbol: str) -> "AllowEntry | None":
        """The allowlist entry sanctioning ``symbol`` for ``rule_id``, if any."""
        for entry in self.allowlist:
            if (
                entry.rule_id == rule_id
                and entry.module == module
                and entry.symbol == symbol
            ):
                return entry
        return None


def _rel(path: Path, root: Path) -> str:
    try:
        return str(path.relative_to(root))
    except ValueError:
        return str(path)


def _package_of(module: str, top: str) -> "str | None":
    """Second-level package of a project module name, else None."""
    if module != top and not module.startswith(top + "."):
        return None
    rest = module[len(top) :].lstrip(".")
    if not rest or rest in ("__init__", "__main__"):
        return rest or ""
    return rest.split(".", 1)[0]


def _expr_name(node: ast.AST) -> "str | None":
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _scan_references(
    root: Path, subdirs: Sequence[str]
) -> set[str]:
    from ..engine import iter_python_files

    trees: list[ast.Module] = []
    bases = [root / sub for sub in subdirs if (root / sub).is_dir()]
    if not bases:
        bases = [root]  # fixture corpora: scan the tree itself
    for base in bases:
        for path in iter_python_files([base]):
            try:
                trees.append(
                    ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
                )
            except SyntaxError:
                continue
    return collect_reference_names(trees)
