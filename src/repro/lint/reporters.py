"""Finding reporters: human text and machine JSON."""

from __future__ import annotations

import json

from .engine import LintReport

__all__ = ["render_text", "render_json", "REPORTERS"]


def render_text(report: LintReport) -> str:
    """One line per finding plus a summary, in ``file:line:col`` format."""
    lines = [
        f"{f.location}: {f.severity} {f.rule_id} [{f.rule_name}] "
        f"{f.message}\n    hint: {f.hint}"
        for f in report.findings
    ]
    count = len(report.findings)
    noun = "finding" if count == 1 else "findings"
    lines.append(
        f"{count} {noun} ({len(report.errors)} error(s)) in "
        f"{report.files_checked} file(s)"
    )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """The report as a stable JSON document."""
    return json.dumps(
        {
            "findings": [f.to_dict() for f in report.findings],
            "summary": {
                "findings": len(report.findings),
                "errors": len(report.errors),
                "files_checked": report.files_checked,
                "ok": report.ok,
            },
        },
        indent=2,
        sort_keys=True,
    )


#: Reporter name -> renderer.
REPORTERS = {"text": render_text, "json": render_json}
