"""Finding reporters: human text, machine JSON, and SARIF 2.1.0.

The SARIF output follows the static-analysis results interchange format
consumed by GitHub code scanning: one run, one driver, the rule metadata
deduplicated into ``tool.driver.rules``, and each finding's evidence chain
mapped onto ``relatedLocations`` so the cross-module reasoning survives
the upload.
"""

from __future__ import annotations

import json

from .engine import LintReport
from .findings import Finding, Severity

__all__ = ["render_text", "render_json", "render_sarif", "REPORTERS"]

_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(report: LintReport) -> str:
    """One line per finding plus a summary, in ``file:line:col`` format.

    Project-wide findings carry their evidence chain as indented
    ``path:line`` steps under the finding line.
    """
    lines = []
    for f in report.findings:
        lines.append(
            f"{f.location}: {f.severity} {f.rule_id} [{f.rule_name}] "
            f"{f.message}\n    hint: {f.hint}"
        )
        for step in f.evidence:
            lines.append(f"    evidence: {step.location}: {step.note}")
    count = len(report.findings)
    noun = "finding" if count == 1 else "findings"
    lines.append(
        f"{count} {noun} ({len(report.errors)} error(s)) in "
        f"{report.files_checked} file(s)"
    )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """The report as a stable JSON document."""
    return json.dumps(
        {
            "findings": [f.to_dict() for f in report.findings],
            "summary": {
                "findings": len(report.findings),
                "errors": len(report.errors),
                "files_checked": report.files_checked,
                "ok": report.ok,
            },
        },
        indent=2,
        sort_keys=True,
    )


def _rule_metadata() -> dict[str, dict[str, str]]:
    """id -> {name, description} for every registered rule (both tiers)."""
    from .base import RULE_REGISTRY
    from .project.base import PROJECT_RULE_REGISTRY

    meta: dict[str, dict[str, str]] = {
        "REP000": {
            "name": "syntax-error",
            "description": "file does not parse",
        }
    }
    for registry in (RULE_REGISTRY, PROJECT_RULE_REGISTRY):
        for rule in registry.values():
            meta[rule.id] = {
                "name": rule.name,
                "description": rule.description,
            }
    return meta


def _sarif_location(path: str, line: int, col: int = 0) -> dict[str, object]:
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": path.replace("\\", "/")},
            "region": {"startLine": line, "startColumn": col + 1},
        }
    }


def _sarif_result(finding: Finding, rule_index: dict[str, int]) -> dict[str, object]:
    result: dict[str, object] = {
        "ruleId": finding.rule_id,
        "ruleIndex": rule_index[finding.rule_id],
        "level": "error" if finding.severity is Severity.ERROR else "warning",
        "message": {"text": f"{finding.message} (hint: {finding.hint})"},
        "locations": [
            _sarif_location(finding.path, finding.line, finding.col)
        ],
    }
    if finding.evidence:
        result["relatedLocations"] = [
            {
                **_sarif_location(step.path, step.line),
                "message": {"text": step.note},
            }
            for step in finding.evidence
        ]
    return result


def render_sarif(report: LintReport) -> str:
    """The report as a SARIF 2.1.0 document (GitHub code scanning)."""
    meta = _rule_metadata()
    used_ids = sorted({f.rule_id for f in report.findings})
    rule_index = {rule_id: i for i, rule_id in enumerate(used_ids)}
    rules = [
        {
            "id": rule_id,
            "name": meta.get(rule_id, {}).get("name", rule_id),
            "shortDescription": {
                "text": meta.get(rule_id, {}).get("description", rule_id)
            },
            "defaultConfiguration": {"level": "error"},
        }
        for rule_id in used_ids
    ]
    document = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": rules,
                    }
                },
                "results": [
                    _sarif_result(f, rule_index) for f in report.findings
                ],
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


#: Reporter name -> renderer.
REPORTERS = {"text": render_text, "json": render_json, "sarif": render_sarif}
