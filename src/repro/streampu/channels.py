"""Inter-stage channels for the threaded runtime.

StreamPU connects pipeline stages with synchronization *adaptors*: bounded
buffers that deliver frames downstream **in order**, even when the upstream
stage is replicated and its replicas finish out of order.
:class:`OrderedChannel` reproduces that contract:

* ``put`` blocks while the channel holds ``capacity`` frames (backpressure);
* ``get`` blocks until the next *expected* frame index is available, so
  consumers always observe the stream in frame order;
* ``close`` marks the end of the stream; pending frames are still delivered,
  after which ``get`` returns ``None``.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass
from typing import Any

__all__ = ["Frame", "OrderedChannel", "ChannelClosedError"]


class ChannelClosedError(RuntimeError):
    """Raised when putting into a channel that has been closed."""


@dataclass(frozen=True, slots=True)
class Frame:
    """One unit of streaming data.

    Attributes:
        index: global frame sequence number (0-based).
        payload: arbitrary frame data.
    """

    index: int
    payload: Any

    def __lt__(self, other: "Frame") -> bool:
        return self.index < other.index


class OrderedChannel:
    """Bounded, order-restoring channel between pipeline stages."""

    def __init__(self, capacity: int = 16, first_index: int = 0) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._heap: list[Frame] = []
        self._next_index = first_index
        self._closed = False
        self._cond = threading.Condition()

    @property
    def capacity(self) -> int:
        """Maximum buffered frames."""
        # set once in __init__ and never rebound: lock-free read is safe
        return self._capacity  # lint: ignore[lock-discipline]

    def put(self, frame: Frame, timeout: float | None = None) -> None:
        """Insert a frame, blocking while the flow-control window is full.

        Flow control is *index-window* based: a frame may enter while its
        index is below ``next_expected + capacity``.  Counting indices
        rather than buffered frames guarantees the next expected frame is
        always admissible, so out-of-order replicas can never deadlock the
        reorder buffer.

        Raises:
            ChannelClosedError: if the channel was closed.
            TimeoutError: if ``timeout`` elapses while blocked.
        """
        with self._cond:
            while (
                frame.index >= self._next_index + self._capacity
                and not self._closed
            ):
                if not self._cond.wait(timeout=timeout):
                    raise TimeoutError("timed out waiting for buffer space")
            if self._closed:
                raise ChannelClosedError("cannot put into a closed channel")
            heapq.heappush(self._heap, frame)
            self._cond.notify_all()

    def get(self, timeout: float | None = None) -> Frame | None:
        """Pop the next in-order frame; ``None`` once closed and drained.

        Raises:
            TimeoutError: if ``timeout`` elapses while blocked.
        """
        with self._cond:
            while True:
                if self._heap and self._heap[0].index == self._next_index:
                    frame = heapq.heappop(self._heap)
                    self._next_index += 1
                    self._cond.notify_all()
                    return frame
                if self._closed and not self._heap:
                    return None
                if not self._cond.wait(timeout=timeout):
                    raise TimeoutError("timed out waiting for the next frame")

    def close(self) -> None:
        """Mark the end of the stream (idempotent)."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        """Whether the channel has been closed."""
        with self._cond:
            return self._closed

    def __len__(self) -> int:
        with self._cond:
            return len(self._heap)
