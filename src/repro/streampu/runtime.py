"""Threaded streaming runtime — actually executes a scheduled pipeline.

This is the executable counterpart of the discrete-event simulator: every
pipeline stage becomes a group of replica worker threads connected by
:class:`~repro.streampu.channels.OrderedChannel` adaptors, exactly like a
StreamPU pipeline decomposition.  Frames flow from a saturating source
through the stages; the runtime records per-frame completion times and
derives a :class:`~repro.streampu.metrics.ThroughputReport`.

Notes on fidelity:

* replica threads of a stage pop frames in order from the shared input
  channel and process them concurrently (round-robin up to OS scheduling);
* channels deliver in order and apply window-based backpressure;
* thread *pinning* to big/little cores is an OS capability the runtime
  cannot portably reproduce; the per-core-type latencies are instead baked
  into the executors built from the scheduled chain (see
  :func:`PipelineRuntime.from_solution`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from ..core.chain_stats import ChainProfile, profile_of
from ..core.solution import Solution
from ..obs.clock import monotonic
from ..core.task import TaskChain
from .channels import ChannelClosedError, Frame, OrderedChannel
from .metrics import ThroughputReport, steady_state_period
from .module import SyntheticSleepTask, TaskExecutor
from .pipeline import PipelineSpec

__all__ = ["StageGroup", "PipelineRuntime", "RuntimeResult"]


@dataclass(frozen=True)
class StageGroup:
    """One pipeline stage bound to its executors.

    Attributes:
        spec_index: stage position in the pipeline.
        executors: the stage's tasks, in chain order.
        replicas: number of worker threads.
    """

    spec_index: int
    executors: tuple[TaskExecutor, ...]
    replicas: int

    def process(self, payload: object) -> object:
        """Run the stage's task chain on one payload."""
        for executor in self.executors:
            payload = executor.process(payload)
        return payload


@dataclass(frozen=True)
class RuntimeResult:
    """Outcome of a threaded pipeline run.

    Attributes:
        report: throughput metrics (times in seconds).
        completion_times: per-frame completion timestamps (seconds, relative
            to the run start).
        payloads: final payload of each frame, in order.
    """

    report: ThroughputReport
    completion_times: np.ndarray
    payloads: tuple[object, ...]


class PipelineRuntime:
    """A runnable, threaded pipeline."""

    def __init__(
        self,
        spec: PipelineSpec,
        groups: list[StageGroup],
        time_scale: float = 1e-6,
    ) -> None:
        if len(groups) != spec.num_stages:
            raise ValueError(
                f"{spec.num_stages} stages but {len(groups)} stage groups"
            )
        self.spec = spec
        self.groups = groups
        self.time_scale = time_scale

    @classmethod
    def from_solution(
        cls,
        solution: Solution,
        chain: "TaskChain | ChainProfile",
        time_scale: float = 1e-6,
        queue_capacity: int = 16,
        executors: "list[TaskExecutor] | None" = None,
    ) -> "PipelineRuntime":
        """Instantiate the runtime for a schedule.

        Args:
            solution: a valid chain-covering schedule.
            chain: the scheduled chain (or its profile).
            time_scale: seconds per weight unit for the default synthetic
                executors (1e-6 treats weights as microseconds).
            queue_capacity: adaptor window size in frames.
            executors: optional per-task executors (chain order); defaults
                to sleep tasks whose duration is the task weight *on the
                core type of the stage it landed in* — the closest portable
                stand-in for pinning threads to big/little cores.
        """
        profile = profile_of(chain)
        spec = PipelineSpec.from_solution(solution, profile, queue_capacity)
        groups: list[StageGroup] = []
        for stage in spec.stages:
            stage_execs: list[TaskExecutor] = []
            for t in range(stage.start, stage.end + 1):
                if executors is not None:
                    stage_execs.append(executors[t])
                else:
                    stage_execs.append(
                        SyntheticSleepTask(
                            weight=profile.weight_of(t, stage.core_type),
                            time_scale=time_scale,
                            name=f"task-{t}",
                        )
                    )
            groups.append(
                StageGroup(
                    spec_index=stage.index,
                    executors=tuple(stage_execs),
                    replicas=stage.replicas,
                )
            )
        return cls(spec, groups, time_scale)

    def run(
        self,
        num_frames: int,
        payload_factory=None,
        warmup_fraction: float = 0.25,
        timeout: float = 120.0,
    ) -> RuntimeResult:
        """Stream ``num_frames`` frames through the pipeline.

        Args:
            num_frames: frames to process (source is saturating).
            payload_factory: optional ``index -> payload`` initializer.
            warmup_fraction: fraction excluded from the period estimate.
            timeout: per-channel-operation timeout (deadlock safety net).

        Returns:
            A :class:`RuntimeResult`; times are wall-clock seconds.
        """
        if num_frames < 2:
            raise ValueError(f"need at least 2 frames, got {num_frames}")
        k = self.spec.num_stages
        channels = [
            OrderedChannel(self.spec.queue_capacity) for _ in range(k + 1)
        ]
        completions = np.zeros(num_frames, dtype=np.float64)
        payloads: list[object] = [None] * num_frames
        errors: list[BaseException] = []
        errors_lock = threading.Lock()

        def worker(group: StageGroup, inp: OrderedChannel, out: OrderedChannel,
                   exit_counter: list[int], exit_lock: threading.Lock) -> None:
            try:
                while True:
                    frame = inp.get(timeout=timeout)
                    if frame is None:
                        break
                    result = group.process(frame.payload)
                    out.put(Frame(frame.index, result), timeout=timeout)
            except BaseException as exc:  # lint: ignore[broad-except] - reported to caller
                with errors_lock:
                    errors.append(exc)
                out.close()
            finally:
                last = False
                with exit_lock:
                    exit_counter[0] += 1
                    last = exit_counter[0] == group.replicas
                if last:
                    out.close()

        threads: list[threading.Thread] = []
        for i, group in enumerate(self.groups):
            counter = [0]
            lock = threading.Lock()
            for r in range(group.replicas):
                t = threading.Thread(
                    target=worker,
                    args=(group, channels[i], channels[i + 1], counter, lock),
                    name=f"stage{i}-replica{r}",
                    daemon=True,
                )
                threads.append(t)

        def source() -> None:
            try:
                for f in range(num_frames):
                    payload = payload_factory(f) if payload_factory else f
                    channels[0].put(Frame(f, payload), timeout=timeout)
            except ChannelClosedError:
                pass  # a worker failed; the error list has the cause
            except BaseException as exc:  # lint: ignore[broad-except] - reported to caller
                with errors_lock:
                    errors.append(exc)
            finally:
                channels[0].close()

        source_thread = threading.Thread(target=source, name="source", daemon=True)
        threads.append(source_thread)

        start_time = monotonic()
        for t in threads:
            t.start()

        # Sink: drain the final channel on this thread so completion
        # timestamps are taken the moment frames leave the pipeline.
        received = 0
        while received < num_frames:
            frame = channels[-1].get(timeout=timeout)
            if frame is None:
                break
            completions[frame.index] = monotonic() - start_time
            payloads[frame.index] = frame.payload
            received += 1

        for t in threads:
            t.join(timeout=timeout)
        if errors:
            raise errors[0]
        if received < num_frames:
            raise RuntimeError(
                f"pipeline delivered {received}/{num_frames} frames"
            )

        period_s = steady_state_period(completions, warmup_fraction)
        # ThroughputReport keeps the chain's weight unit: convert seconds
        # back through the time scale.
        period_w = period_s / self.time_scale
        report = ThroughputReport(
            analytic_period=self.spec.analytic_period,
            measured_period=period_w,
            num_frames=num_frames,
            makespan=float(completions[-1]) / self.time_scale,
            fill_latency=float(completions[0]) / self.time_scale,
        )
        return RuntimeResult(
            report=report,
            completion_times=completions,
            payloads=tuple(payloads),
        )
