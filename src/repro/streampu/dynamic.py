"""Dynamic per-task scheduling baseline (related-work comparator).

The paper argues (Section II) that dynamic schedulers — GNU Radio's
thread-per-block model, CEDR-style runtime dispatch — carry overheads that
static pipeline decompositions avoid at SDR task granularities (tens to
thousands of microseconds).  This module makes that comparison concrete: an
event-driven simulator of a *dynamic list scheduler* that dispatches each
(frame, task) work item to a free core at runtime:

* tasks of one frame run in chain order;
* a sequential (stateful) task additionally serializes across frames
  (frame ``f`` may only run it after frame ``f - 1`` did);
* every dispatch pays ``dispatch_overhead`` (queue locking, scheduler
  bookkeeping) — the knob that turns "more flexible than any static
  pipeline" into "slower in practice";
* core selection prefers the core type that runs the task faster among the
  currently idle cores (a HEFT-flavoured earliest-finish heuristic).

With zero overhead the dynamic scheduler is at least as flexible as any
interval mapping; sweeping the overhead shows the crossover where static
schedules win — see ``benchmarks/bench_dynamic.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.chain_stats import ChainProfile, profile_of
from ..core.errors import InvalidPlatformError
from ..core.task import TaskChain
from ..core.types import CoreType, Resources
from ..sim.events import EventQueue
from .metrics import steady_state_period

__all__ = ["DynamicScheduleResult", "simulate_dynamic_scheduler"]


@dataclass(frozen=True)
class DynamicScheduleResult:
    """Outcome of a dynamic-scheduling simulation.

    Attributes:
        completion_times: per-frame completion time.
        measured_period: steady-state inter-completion gap.
        makespan: completion time of the last frame.
        dispatches: number of work items executed.
        busy_fraction: average core utilization over the makespan.
    """

    completion_times: np.ndarray
    measured_period: float
    makespan: float
    dispatches: int
    busy_fraction: float


def simulate_dynamic_scheduler(
    chain: "TaskChain | ChainProfile",
    resources: Resources,
    num_frames: int = 500,
    dispatch_overhead: float = 0.0,
    window: int = 64,
    warmup_fraction: float = 0.25,
) -> DynamicScheduleResult:
    """Simulate dynamic per-task scheduling of a streaming task chain.

    Args:
        chain: the task chain (or its profile).
        resources: core pool ``(b, l)``.
        num_frames: frames streamed.
        dispatch_overhead: per-work-item runtime cost, in weight units.
        window: frames admitted concurrently (in-flight bound, akin to the
            adaptor capacity of the static pipeline).
        warmup_fraction: fraction excluded from the period estimate.

    Returns:
        The simulation outcome.

    Raises:
        InvalidPlatformError: for an empty core pool.
    """
    profile = profile_of(chain)
    if resources.total <= 0:
        raise InvalidPlatformError("need at least one core")
    if num_frames < 2:
        raise ValueError("need at least 2 frames")
    if window < 1:
        raise ValueError("window must be >= 1")
    if dispatch_overhead < 0:
        raise ValueError("dispatch_overhead must be non-negative")

    n = profile.n
    weights = {
        CoreType.BIG: profile.weights(CoreType.BIG),
        CoreType.LITTLE: profile.weights(CoreType.LITTLE),
    }
    replicable = profile.replicable_mask

    # Core pool: an idle set plus a busy queue of in-flight work items
    # keyed by completion time (the shared deterministic event core from
    # ``repro.sim``; the ``(core, frame, task)`` tiebreak reproduces the
    # legacy heap order exactly).
    core_types = [CoreType.BIG] * resources.big + [CoreType.LITTLE] * resources.little
    idle: set[int] = set(range(len(core_types)))
    busy: "EventQueue[tuple[int, int, int]]" = EventQueue()

    # done_task[t]: last frame index whose task t completed; task_done[f][t]
    # is tracked implicitly with per-frame progress pointers.
    progress = np.zeros(num_frames, dtype=np.int64)  # next task per frame
    frame_ready_time = np.zeros(num_frames, dtype=np.float64)
    seq_free_time = np.zeros(n, dtype=np.float64)  # stateful-task serialization
    seq_next_frame = np.zeros(n, dtype=np.int64)  # enforces frame order
    completion = np.full(num_frames, np.inf)

    admitted = min(window, num_frames)
    now = 0.0
    dispatches = 0
    busy_time = 0.0

    def ready_items() -> "list[tuple[float, int, int]]":
        items = []
        for f in range(admitted):
            t = int(progress[f])
            if t >= n or completion[f] < np.inf:
                continue
            ready_at = frame_ready_time[f]
            if not replicable[t]:
                if int(seq_next_frame[t]) != f:
                    continue  # an earlier frame has not run this task yet
                ready_at = max(ready_at, seq_free_time[t])
            if ready_at <= now + 1e-12:
                items.append((ready_at, f, t))
        # Earliest frame first, then chain order: streaming FIFO priority.
        items.sort(key=lambda item: (item[1], item[2]))
        return items

    while np.isinf(completion).any():
        # Dispatch everything currently possible.
        progressed = True
        while progressed and idle:
            progressed = False
            for _, f, t in ready_items():
                if not idle:
                    break
                # Earliest-finish core choice among idle cores.
                best_core = None
                best_finish = None
                for core in idle:
                    duration = (
                        weights[core_types[core]][t] + dispatch_overhead
                    )
                    finish = now + duration
                    if best_finish is None or finish < best_finish:
                        best_core, best_finish = core, finish
                idle.remove(best_core)
                busy.push(
                    best_finish,
                    (best_core, f, t),
                    tiebreak=(best_core, f, t),
                )
                busy_time += best_finish - now
                dispatches += 1
                progressed = True
                # Mark the item in flight: bump pointers now so it is not
                # re-dispatched; its effects land at completion.
                progress[f] += 1
                frame_ready_time[f] = np.inf  # until completion
                if not replicable[t]:
                    seq_free_time[t] = np.inf
                    seq_next_frame[t] = f + 1

        if not busy:
            raise RuntimeError("dynamic scheduler deadlocked (internal bug)")

        # Advance to the next completion.
        now, (core, f, t) = busy.pop()
        idle.add(core)
        frame_ready_time[f] = now
        if not replicable[t]:
            seq_free_time[t] = now
        if progress[f] == n:
            completion[f] = now
            if admitted < num_frames:
                frame_ready_time[admitted] = now
                admitted += 1

    order = np.sort(completion)
    period = steady_state_period(order, warmup_fraction)
    makespan = float(order[-1])
    return DynamicScheduleResult(
        completion_times=order,
        measured_period=period,
        makespan=makespan,
        dispatches=dispatches,
        busy_fraction=float(busy_time / (makespan * len(core_types))),
    )
