"""Throughput metrics derived from streaming executions.

Mirrors the paper's reporting: a *period* (time between consecutive frame
completions at steady state), converted to frames per second and information
throughput (Mb/s) given a frame format and the platform's interframe level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .pipeline import PipelineSpec

__all__ = ["steady_state_period", "ThroughputReport"]


def steady_state_period(
    completion_times: np.ndarray, warmup_fraction: float = 0.25
) -> float:
    """Estimate the steady-state period from frame completion times.

    Uses the mean inter-completion gap after discarding the pipeline-fill
    warmup — equal to the least-squares slope through evenly indexed points
    and exact for periodic steady states.

    Args:
        completion_times: monotone completion time per frame.
        warmup_fraction: fraction of initial frames to discard (at least one
            frame is always kept as the baseline).

    Raises:
        ValueError: for fewer than two frames or an invalid fraction.
    """
    times = np.asarray(completion_times, dtype=np.float64)
    if times.ndim != 1 or times.size < 2:
        raise ValueError("need a 1-D array of at least two completion times")
    if not (0.0 <= warmup_fraction < 1.0):
        raise ValueError(f"warmup_fraction must be in [0, 1), got {warmup_fraction}")
    skip = min(int(times.size * warmup_fraction), times.size - 2)
    window = times[skip:]
    return float((window[-1] - window[0]) / (window.size - 1))


@dataclass(frozen=True, slots=True)
class ThroughputReport:
    """Summary of one streaming execution.

    All times are in the chain's weight unit (microseconds for the DVB-S2
    profiles).

    Attributes:
        analytic_period: the schedule's model period (max stage weight).
        measured_period: the period observed in the execution.
        num_frames: frames streamed.
        makespan: completion time of the last frame.
        fill_latency: completion time of the first frame (pipeline fill).
    """

    analytic_period: float
    measured_period: float
    num_frames: int
    makespan: float
    fill_latency: float

    @classmethod
    def from_simulation(
        cls,
        spec: "PipelineSpec",
        completion_times: np.ndarray,
        measured_period: float,
        num_frames: int,
    ) -> "ThroughputReport":
        """Build a report from raw completion times."""
        return cls(
            analytic_period=spec.analytic_period,
            measured_period=measured_period,
            num_frames=num_frames,
            makespan=float(completion_times[-1]),
            fill_latency=float(completion_times[0]),
        )

    @property
    def efficiency(self) -> float:
        """Analytic-to-measured period ratio (1.0 means the model's ideal)."""
        if self.measured_period <= 0:
            return 0.0
        return self.analytic_period / self.measured_period

    def fps(self, interframe: int = 1, time_unit_us: bool = True) -> float:
        """Frames per second at the measured period.

        Args:
            interframe: frames per pipeline batch (per-platform setting).
            time_unit_us: True when the chain weights are microseconds.
        """
        if self.measured_period <= 0:
            return 0.0
        scale = 1e-6 if time_unit_us else 1.0
        return interframe / (self.measured_period * scale)

    def mbps(self, info_bits: int, interframe: int = 1) -> float:
        """Information throughput in Mb/s (microsecond time unit assumed)."""
        return self.fps(interframe) * info_bits / 1e6
