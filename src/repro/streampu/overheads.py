"""Overhead models for the pipelined runtime simulator.

The paper observes (Section VI-E) that measured throughput differs from the
analytic expectation: typically 4-10 %, and more than 10 % whenever a
*replicated stage on little cores* handles one of the slowest tasks — the
authors attribute the gap to synchronization/communication overheads and
architectural effects.  These models inject such costs into the simulator:

* :class:`NoOverhead` — the ideal machine; the simulator then converges to
  the analytic period exactly (verified by the test suite).
* :class:`ConstantSyncOverhead` — a fixed cost per (stage, frame): the cost
  of the inter-stage adaptors (bounded queues) of StreamPU.
* :class:`CalibratedOverhead` — the model used for the Table II "Real"
  columns: a relative efficiency loss per stage crossing, an extra penalty
  for replicated little stages, and optional deterministic jitter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from ..core.types import CoreType

__all__ = [
    "OverheadModel",
    "NoOverhead",
    "ConstantSyncOverhead",
    "CalibratedOverhead",
]


class OverheadModel(Protocol):
    """Per-(stage, frame) processing-time adjustment."""

    def effective_latency(
        self,
        base_latency: float,
        stage_index: int,
        num_stages: int,
        replicas: int,
        core_type: CoreType,
        frame: int,
    ) -> float:
        """Return the processing time of one frame at one stage replica.

        Args:
            base_latency: the analytic single-frame latency of the stage.
            stage_index: position of the stage in the pipeline.
            num_stages: pipeline length.
            replicas: number of replicas of the stage.
            core_type: core type running the stage.
            frame: frame index (for jittered models).
        """
        ...


@dataclass(frozen=True, slots=True)
class NoOverhead:
    """The ideal runtime: processing time equals the analytic latency."""

    def effective_latency(
        self,
        base_latency: float,
        stage_index: int,
        num_stages: int,
        replicas: int,
        core_type: CoreType,
        frame: int,
    ) -> float:
        return base_latency


@dataclass(frozen=True, slots=True)
class ConstantSyncOverhead:
    """A fixed synchronization cost added per frame at every stage.

    Attributes:
        cost: time units added to each frame's processing at each stage
            (models the push/pull cost of StreamPU's inter-stage adaptors).
    """

    cost: float = 1.0

    def __post_init__(self) -> None:
        if self.cost < 0:
            raise ValueError("sync cost must be non-negative")

    def effective_latency(
        self,
        base_latency: float,
        stage_index: int,
        num_stages: int,
        replicas: int,
        core_type: CoreType,
        frame: int,
    ) -> float:
        return base_latency + self.cost


@dataclass(frozen=True)
class CalibratedOverhead:
    """The overhead model calibrated to the paper's observed "Real" gaps.

    Attributes:
        sync_fraction: relative slowdown per stage crossing (adaptor costs
            scale with data movement, hence with stage time).  The paper's
            typical expected-to-real gap is 4-8 %.
        little_replication_penalty: extra relative slowdown for stages with
            more than one replica on little cores — the regime where the
            paper measured >10 % gaps (shared-resource contention among
            efficiency cores).
        jitter_fraction: amplitude of deterministic pseudo-random jitter on
            each frame's processing time (mean-preserving).
        seed: seed of the jitter stream.
    """

    sync_fraction: float = 0.05
    little_replication_penalty: float = 0.09
    jitter_fraction: float = 0.02
    seed: int = 12345

    def __post_init__(self) -> None:
        for label, v in (
            ("sync_fraction", self.sync_fraction),
            ("little_replication_penalty", self.little_replication_penalty),
            ("jitter_fraction", self.jitter_fraction),
        ):
            if v < 0:
                raise ValueError(f"{label} must be non-negative")
        # One private stream per model instance; per-frame draws are indexed
        # deterministically so results do not depend on call order.
        object.__setattr__(self, "_rng", np.random.default_rng(self.seed))
        object.__setattr__(
            self, "_jitter_cache", self._rng.uniform(-1.0, 1.0, size=4096)
        )

    def effective_latency(
        self,
        base_latency: float,
        stage_index: int,
        num_stages: int,
        replicas: int,
        core_type: CoreType,
        frame: int,
    ) -> float:
        factor = 1.0 + self.sync_fraction
        if replicas > 1 and core_type == CoreType.LITTLE:
            factor += self.little_replication_penalty
        if self.jitter_fraction:
            cache: np.ndarray = self._jitter_cache  # type: ignore[attr-defined]
            noise = cache[(frame * 31 + stage_index * 7) % cache.size]
            factor *= 1.0 + self.jitter_fraction * noise
        return base_latency * factor
