"""Pipeline construction: from a schedule to an executable pipeline spec.

A :class:`PipelineSpec` is the runtime-facing view of a
:class:`~repro.core.solution.Solution`: an ordered list of
:class:`PipelineStage` entries carrying the per-frame latency of each stage
(the sum of its tasks' latencies on its core type), the replica count, and
bookkeeping.  Both the discrete-event simulator and the threaded runtime
consume this structure — mirroring how StreamPU instantiates a pipeline from
a sequence decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.chain_stats import ChainProfile, profile_of
from ..core.errors import InvalidChainError
from ..core.solution import Solution
from ..core.task import TaskChain
from ..core.types import CoreType

__all__ = ["PipelineStage", "PipelineSpec"]


@dataclass(frozen=True, slots=True)
class PipelineStage:
    """One executable stage of the pipeline.

    Attributes:
        index: position in the pipeline.
        start: first task index (inclusive).
        end: last task index (inclusive).
        replicas: number of replica workers (cores) of the stage.
        core_type: core type the stage runs on.
        latency: single-frame processing time of one replica (sum of the
            stage's task weights on ``core_type``).
        replicable: whether the stage is stateless.
    """

    index: int
    start: int
    end: int
    replicas: int
    core_type: CoreType
    latency: float
    replicable: bool

    @property
    def weight(self) -> float:
        """The stage's period contribution ``latency / replicas`` (Eq. (1))."""
        if self.replicable:
            return self.latency / self.replicas
        return self.latency


@dataclass(frozen=True)
class PipelineSpec:
    """An executable pipeline derived from a schedule.

    Attributes:
        stages: the pipeline stages in order.
        queue_capacity: bounded inter-stage buffer size (frames), as in
            StreamPU's adaptors.
    """

    stages: tuple[PipelineStage, ...]
    queue_capacity: int = 16

    def __post_init__(self) -> None:
        if not self.stages:
            raise InvalidChainError("a pipeline needs at least one stage")
        if self.queue_capacity < 1:
            raise InvalidChainError("queue capacity must be >= 1")

    @classmethod
    def from_solution(
        cls,
        solution: Solution,
        chain: "TaskChain | ChainProfile",
        queue_capacity: int = 16,
    ) -> "PipelineSpec":
        """Build the pipeline for a schedule.

        Args:
            solution: a valid, chain-covering schedule.
            chain: the scheduled chain (or its profile).
            queue_capacity: inter-stage buffer capacity in frames.

        Raises:
            InvalidChainError: if the solution is empty or does not cover
                the chain.
        """
        profile = profile_of(chain)
        if solution.is_empty or not solution.covers(profile):
            raise InvalidChainError(
                "cannot build a pipeline from an empty or partial solution"
            )
        stages = tuple(
            PipelineStage(
                index=i,
                start=s.start,
                end=s.end,
                replicas=s.cores,
                core_type=s.core_type,
                latency=s.latency(profile),
                replicable=s.is_replicable(profile),
            )
            for i, s in enumerate(solution)
        )
        return cls(stages=stages, queue_capacity=queue_capacity)

    @property
    def num_stages(self) -> int:
        """Pipeline depth."""
        return len(self.stages)

    @property
    def analytic_period(self) -> float:
        """The model's steady-state period: the maximum stage weight."""
        return max(stage.weight for stage in self.stages)

    @property
    def total_cores(self) -> int:
        """Total replica workers across stages."""
        return sum(stage.replicas for stage in self.stages)

    def describe(self) -> str:
        """Multi-line human-readable pipeline description."""
        lines = [
            f"Pipeline with {self.num_stages} stage(s), "
            f"queue capacity {self.queue_capacity}:"
        ]
        for s in self.stages:
            kind = "rep" if s.replicable else "seq"
            lines.append(
                f"  stage {s.index}: tasks [{s.start}..{s.end}] ({kind}) "
                f"x{s.replicas} {s.core_type.name:<6} latency={s.latency:.6g} "
                f"weight={s.weight:.6g}"
            )
        lines.append(f"  analytic period = {self.analytic_period:.6g}")
        return "\n".join(lines)
