"""Task profiling — closing the profile → schedule → run loop.

The paper builds Table III by measuring each receiver task independently on
each core type; those latencies are the schedulers' inputs.  This module
reproduces that workflow for arbitrary executors: measure each task's
processing time per "core type" (here: per executor variant), and assemble
a :class:`~repro.core.task.TaskChain` ready for scheduling.

With real hardware one would pin the measuring thread to a big or little
core; portably, callers provide one executor per core type (e.g. the same
kernel configured with that type's expected cost).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from ..core.task import Task, TaskChain
from .module import TaskExecutor

__all__ = ["TaskProfile", "profile_executor", "profile_chain"]


@dataclass(frozen=True, slots=True)
class TaskProfile:
    """Measured latencies of one task.

    Attributes:
        name: task label.
        big_latency: mean measured time on the "big" executor (seconds).
        little_latency: mean measured time on the "little" executor (seconds).
        replicable: whether the task is stateless.
    """

    name: str
    big_latency: float
    little_latency: float
    replicable: bool


def profile_executor(
    executor: TaskExecutor,
    payload: object = None,
    repetitions: int = 10,
    warmup: int = 2,
) -> float:
    """Mean processing time of one executor in seconds.

    Args:
        executor: the task to measure.
        payload: input payload reused for every repetition.
        repetitions: measured runs (averaged).
        warmup: unmeasured runs first (cache/JIT warmup).

    Raises:
        ValueError: for a non-positive repetition count.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    for _ in range(warmup):
        executor.process(payload)
    start = time.perf_counter()
    for _ in range(repetitions):
        executor.process(payload)
    return (time.perf_counter() - start) / repetitions


def profile_chain(
    big_executors: Sequence[TaskExecutor],
    little_executors: Sequence[TaskExecutor],
    replicable: Sequence[bool],
    payload: object = None,
    repetitions: int = 10,
    time_unit: float = 1e-6,
    name: str = "profiled chain",
) -> tuple[TaskChain, list[TaskProfile]]:
    """Measure a task chain on both executor variants and build the chain.

    Args:
        big_executors: per-task executors representing big-core behaviour.
        little_executors: per-task executors for little-core behaviour.
        replicable: statelessness flags per task.
        payload: payload passed to every measurement.
        repetitions: measured runs per task.
        time_unit: seconds per chain weight unit (1e-6 -> weights in us).
        name: label of the produced chain.

    Returns:
        ``(chain, profiles)`` — the schedulable chain (weights in
        ``time_unit`` units) and the raw measurements.

    Raises:
        ValueError: on mismatched sequence lengths.
    """
    if not (len(big_executors) == len(little_executors) == len(replicable)):
        raise ValueError(
            "big_executors, little_executors and replicable must have the "
            "same length"
        )
    if not big_executors:
        raise ValueError("cannot profile an empty chain")

    profiles: list[TaskProfile] = []
    tasks: list[Task] = []
    for index, (big, little, rep) in enumerate(
        zip(big_executors, little_executors, replicable)
    ):
        t_big = profile_executor(big, payload, repetitions)
        t_little = profile_executor(little, payload, repetitions)
        label = getattr(big, "name", f"task-{index}")
        profiles.append(
            TaskProfile(
                name=label,
                big_latency=t_big,
                little_latency=t_little,
                replicable=bool(rep),
            )
        )
        tasks.append(
            Task(
                name=label,
                # Guard against timer quantization producing zero weights.
                weight_big=max(t_big / time_unit, 1e-9),
                weight_little=max(t_little / time_unit, 1e-9),
                replicable=bool(rep),
            )
        )
    return TaskChain(tasks, name=name), profiles
