"""Task executors for the threaded runtime.

StreamPU tasks are C++ modules; the threaded runtime here executes Python
callables instead.  Executors map a scheduled task's *weight* to actual work:

* :class:`SyntheticSleepTask` — sleeps for ``weight * time_scale`` seconds.
  ``time.sleep`` releases the GIL, so replicated stages genuinely overlap;
  ideal for demonstrating pipeline/replication semantics deterministically.
* :class:`NumpyKernelTask` — performs matrix multiplications sized so the
  run time tracks the weight.  BLAS releases the GIL, giving real CPU-bound
  parallelism across replica threads.
* :class:`CallableTask` — wraps any user function (the "bring your own DSP"
  path).

Executors receive and return a *payload* (any object): the frame's data as
it moves down the chain.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Protocol

import numpy as np

__all__ = [
    "TaskExecutor",
    "SyntheticSleepTask",
    "NumpyKernelTask",
    "CallableTask",
    "executors_from_weights",
]


class TaskExecutor(Protocol):
    """A runnable task of the streaming pipeline."""

    #: Cost weight of the task (same unit as the scheduled chain weights).
    weight: float

    def process(self, payload: Any) -> Any:
        """Process one frame payload and return the transformed payload."""
        ...


@dataclass(slots=True)
class SyntheticSleepTask:
    """Sleep-based synthetic task: deterministic duration, GIL-free.

    Attributes:
        weight: scheduled weight of the task.
        time_scale: seconds of sleep per weight unit (e.g. ``1e-6`` makes a
            weight-100 task take 100 us).
        name: label for traces.
    """

    weight: float
    time_scale: float = 1e-6
    name: str = "sleep-task"

    def process(self, payload: Any) -> Any:
        duration = self.weight * self.time_scale
        if duration > 0:
            time.sleep(duration)
        return payload


@dataclass(slots=True)
class NumpyKernelTask:
    """CPU-bound synthetic task: repeated small GEMMs sized by weight.

    The kernel multiplies a fixed ``size x size`` matrix ``repeats`` times,
    with ``repeats`` proportional to ``weight``.  NumPy's BLAS releases the
    GIL during the products, so replica threads scale on real cores.

    Attributes:
        weight: scheduled weight of the task.
        repeats_per_weight: GEMM repetitions per weight unit.
        size: matrix dimension.
        name: label for traces.
    """

    weight: float
    repeats_per_weight: float = 1.0
    size: int = 48
    name: str = "gemm-task"
    _matrix: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        rng = np.random.default_rng(abs(hash(self.name)) % (2**32))
        self._matrix = rng.standard_normal((self.size, self.size))

    def process(self, payload: Any) -> Any:
        repeats = max(1, int(round(self.weight * self.repeats_per_weight)))
        acc = self._matrix
        for _ in range(repeats):
            acc = self._matrix @ self._matrix
        # Keep a scalar dependency so the work cannot be optimized away.
        _ = float(acc[0, 0])
        return payload


@dataclass(slots=True)
class CallableTask:
    """Adapter turning any ``payload -> payload`` function into a task."""

    weight: float
    func: Callable[[Any], Any]
    name: str = "callable-task"

    def process(self, payload: Any) -> Any:
        return self.func(payload)


def executors_from_weights(
    weights: list[float],
    kind: str = "sleep",
    time_scale: float = 1e-6,
) -> list[TaskExecutor]:
    """Build one executor per task weight.

    Args:
        weights: scheduled task weights (one executor each).
        kind: ``"sleep"`` for :class:`SyntheticSleepTask`, ``"gemm"`` for
            :class:`NumpyKernelTask`.
        time_scale: sleep scale for the sleep kind.

    Raises:
        ValueError: for an unknown kind.
    """
    if kind == "sleep":
        return [
            SyntheticSleepTask(weight=w, time_scale=time_scale, name=f"task-{i}")
            for i, w in enumerate(weights)
        ]
    if kind == "gemm":
        return [
            NumpyKernelTask(weight=w, name=f"task-{i}") for i, w in enumerate(weights)
        ]
    raise ValueError(f"unknown executor kind {kind!r} (use 'sleep' or 'gemm')")
