"""Thread placement policies (paper future work, Section VII).

The paper's real-world runs pin pipeline threads with a *compact* placement
and list studying placement effects as future work.  This module models the
assignment of stage replicas to physical core IDs:

* :class:`PhysicalCore` / :func:`platform_cores` — the machine's core list;
* :func:`compact_placement` — fill cores of each type in ID order (the
  paper's policy): consecutive pipeline stages land on adjacent cores;
* :func:`scatter_placement` — round-robin over clusters to spread load;
* :class:`PlacementOverhead` — an overhead model deriving per-stage costs
  from the placement (cluster-crossing neighbors pay a penalty), so
  placements can be compared on the discrete-event simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import InvalidPlatformError
from ..core.types import CoreType
from ..platform.model import Platform
from .pipeline import PipelineSpec

__all__ = [
    "PhysicalCore",
    "platform_cores",
    "Placement",
    "compact_placement",
    "scatter_placement",
    "PlacementOverhead",
]


@dataclass(frozen=True, slots=True)
class PhysicalCore:
    """One physical core of the machine.

    Attributes:
        core_id: global core index.
        core_type: big or little.
        cluster: cluster index (cores sharing an L2/interconnect hop).
    """

    core_id: int
    core_type: CoreType
    cluster: int


def platform_cores(platform: Platform, cluster_size: int = 4) -> "list[PhysicalCore]":
    """Enumerate a platform's cores, grouped into clusters of equal type.

    Big cores come first (IDs ``0..b-1``) then little cores, with a new
    cluster every ``cluster_size`` cores of the same type — the typical
    asymmetric-multicore topology (e.g. Intel hybrid E-core quads).
    """
    if cluster_size < 1:
        raise InvalidPlatformError("cluster_size must be >= 1")
    cores: list[PhysicalCore] = []
    cluster = 0
    for core_type, count in (
        (CoreType.BIG, platform.big),
        (CoreType.LITTLE, platform.little),
    ):
        for i in range(count):
            if i and i % cluster_size == 0:
                cluster += 1
            cores.append(
                PhysicalCore(
                    core_id=len(cores), core_type=core_type, cluster=cluster
                )
            )
        if count:
            cluster += 1
    return cores


@dataclass(frozen=True)
class Placement:
    """An assignment of every stage replica to a physical core.

    Attributes:
        assignments: ``assignments[stage_index]`` is the list of cores
            running that stage's replicas.
    """

    assignments: tuple[tuple[PhysicalCore, ...], ...]

    def cores_of(self, stage_index: int) -> tuple[PhysicalCore, ...]:
        """Cores assigned to one stage."""
        return self.assignments[stage_index]

    def validate(self, spec: PipelineSpec) -> None:
        """Check one core per replica, types matching, no double booking.

        Raises:
            InvalidPlatformError: on any violation.
        """
        seen: set[int] = set()
        for stage, cores in zip(spec.stages, self.assignments):
            if len(cores) != stage.replicas:
                raise InvalidPlatformError(
                    f"stage {stage.index} needs {stage.replicas} cores, "
                    f"got {len(cores)}"
                )
            for core in cores:
                if core.core_type is not stage.core_type:
                    raise InvalidPlatformError(
                        f"stage {stage.index} expects {stage.core_type.name} "
                        f"cores but core {core.core_id} is {core.core_type.name}"
                    )
                if core.core_id in seen:
                    raise InvalidPlatformError(
                        f"core {core.core_id} assigned twice"
                    )
                seen.add(core.core_id)

    def cluster_crossings(self) -> int:
        """Stage boundaries whose adjacent stages share no cluster."""
        crossings = 0
        for a, b in zip(self.assignments, self.assignments[1:]):
            clusters_a = {c.cluster for c in a}
            clusters_b = {c.cluster for c in b}
            if not (clusters_a & clusters_b):
                crossings += 1
        return crossings


def _take(
    pool: "list[PhysicalCore]", core_type: CoreType, count: int
) -> "list[PhysicalCore]":
    picked = [c for c in pool if c.core_type is core_type][:count]
    if len(picked) < count:
        raise InvalidPlatformError(
            f"not enough {core_type.name} cores left for the placement"
        )
    for core in picked:
        pool.remove(core)
    return picked


def compact_placement(spec: PipelineSpec, cores: "list[PhysicalCore]") -> Placement:
    """The paper's policy: assign cores of each type in ascending ID order.

    Consecutive stages on the same type land on adjacent cores (and thus
    usually the same cluster).
    """
    pool = sorted(cores, key=lambda c: c.core_id)
    assignments = [
        tuple(_take(pool, stage.core_type, stage.replicas))
        for stage in spec.stages
    ]
    return Placement(assignments=tuple(assignments))


def scatter_placement(spec: PipelineSpec, cores: "list[PhysicalCore]") -> Placement:
    """Spread each stage's replicas across clusters round-robin.

    Balances thermal/cache pressure at the price of more cluster-crossing
    boundaries — the trade placement studies examine.
    """
    by_type: dict[CoreType, list[PhysicalCore]] = {
        CoreType.BIG: [], CoreType.LITTLE: []
    }
    for core in sorted(cores, key=lambda c: (c.cluster, c.core_id)):
        by_type[core.core_type].append(core)
    # Interleave clusters: sort by position within cluster, then cluster.
    for core_type, pool in by_type.items():
        order: dict[int, int] = {}
        keyed = []
        for core in pool:
            rank = order.get(core.cluster, 0)
            order[core.cluster] = rank + 1
            keyed.append((rank, core.cluster, core))
        keyed.sort(key=lambda t: (t[0], t[1]))
        by_type[core_type] = [core for _, _, core in keyed]

    assignments = []
    for stage in spec.stages:
        pool = by_type[stage.core_type]
        if len(pool) < stage.replicas:
            raise InvalidPlatformError(
                f"not enough {stage.core_type.name} cores left for the placement"
            )
        assignments.append(tuple(pool[: stage.replicas]))
        del pool[: stage.replicas]
    return Placement(assignments=tuple(assignments))


@dataclass(frozen=True)
class PlacementOverhead:
    """Overhead model derived from a placement.

    Each stage pays ``cross_cluster_fraction`` extra latency per
    cluster-crossing boundary it touches (producer or consumer side) —
    a first-order model of the extra interconnect hops.

    Attributes:
        spec: the pipeline.
        placement: the evaluated placement.
        cross_cluster_fraction: relative latency penalty per crossing.
    """

    spec: PipelineSpec
    placement: Placement
    cross_cluster_fraction: float = 0.03

    def __post_init__(self) -> None:
        if self.cross_cluster_fraction < 0:
            raise ValueError("cross_cluster_fraction must be non-negative")
        self.placement.validate(self.spec)
        penalties = []
        assignments = self.placement.assignments
        for i in range(len(assignments)):
            crossings = 0
            for j in (i - 1, i + 1):
                if 0 <= j < len(assignments):
                    a = {c.cluster for c in assignments[i]}
                    b = {c.cluster for c in assignments[j]}
                    if not (a & b):
                        crossings += 1
            penalties.append(1.0 + self.cross_cluster_fraction * crossings)
        object.__setattr__(self, "_penalties", tuple(penalties))

    def effective_latency(
        self,
        base_latency: float,
        stage_index: int,
        num_stages: int,
        replicas: int,
        core_type: CoreType,
        frame: int,
    ) -> float:
        """Per-frame latency including the placement penalty."""
        return base_latency * self._penalties[stage_index]  # type: ignore[attr-defined]
