"""Inter-stage communication cost models (paper future work, Section VII).

The paper's model deliberately excludes communication weights (interval
mapping on a shared-memory multicore keeps transfers local and cheap), and
its conclusion lists profiling and modeling the communication and
synchronization overheads as future work.  This module supplies that
extension for the *runtime* side:

* :class:`CommunicationModel` — the cost of moving one frame across one
  stage boundary, as a function of the frame's payload size and of whether
  the boundary crosses core types (big->little transfers on asymmetric
  parts often cross cluster/interconnect boundaries);
* :func:`boundary_costs` — per-boundary costs for a pipeline;
* :func:`simulate_with_communication` — the discrete-event simulation with
  transfer time added between stages.

The scheduling strategies remain communication-oblivious (as in the paper);
these tools quantify how much a given schedule *would* lose to transfers,
letting users compare candidate schedules under explicit transfer costs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.types import CoreType
from .metrics import ThroughputReport, steady_state_period
from .overheads import NoOverhead, OverheadModel
from .pipeline import PipelineSpec
from .simulator import SimulationResult

__all__ = [
    "CommunicationModel",
    "boundary_costs",
    "simulate_with_communication",
]


@dataclass(frozen=True, slots=True)
class CommunicationModel:
    """Cost of one frame crossing one stage boundary.

    ``cost = base_cost + bytes_per_frame / bandwidth``, multiplied by
    ``cross_cluster_factor`` when the producer and consumer stages run on
    different core types.

    Attributes:
        base_cost: fixed per-transfer cost (synchronization handshake), in
            the chain's weight unit.
        bytes_per_frame: payload size moved per frame.
        bandwidth: bytes per weight unit of transfer time (0 disables the
            size-dependent term).
        cross_cluster_factor: multiplier for boundaries whose two stages
            use different core types.
    """

    base_cost: float = 0.0
    bytes_per_frame: float = 0.0
    bandwidth: float = 0.0
    cross_cluster_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.base_cost < 0 or self.bytes_per_frame < 0:
            raise ValueError("costs must be non-negative")
        if self.bandwidth < 0:
            raise ValueError("bandwidth must be non-negative")
        if self.cross_cluster_factor < 1.0:
            raise ValueError("cross_cluster_factor must be >= 1")

    def boundary_cost(
        self, producer_type: CoreType, consumer_type: CoreType
    ) -> float:
        """Transfer time for one frame across one boundary."""
        cost = self.base_cost
        if self.bandwidth > 0:
            cost += self.bytes_per_frame / self.bandwidth
        if producer_type is not consumer_type:
            cost *= self.cross_cluster_factor
        return cost


def boundary_costs(
    spec: PipelineSpec, model: CommunicationModel
) -> np.ndarray:
    """Per-boundary transfer costs: entry ``i`` is the cost between stage
    ``i`` and stage ``i + 1`` (length ``num_stages - 1``)."""
    stages = spec.stages
    return np.array(
        [
            model.boundary_cost(a.core_type, b.core_type)
            for a, b in zip(stages, stages[1:])
        ],
        dtype=np.float64,
    )


def simulate_with_communication(
    spec: PipelineSpec,
    model: CommunicationModel,
    num_frames: int = 2000,
    overhead: OverheadModel | None = None,
    warmup_fraction: float = 0.25,
) -> SimulationResult:
    """Discrete-event simulation with inter-stage transfer times.

    Semantics match :func:`~repro.streampu.simulator.simulate_pipeline`
    with one addition: a frame becomes available to stage ``i + 1`` only
    ``boundary_cost`` after it finishes stage ``i`` (the transfer occupies
    the *boundary*, not the worker, matching DMA-style adaptors).

    Args:
        spec: the pipeline to run.
        model: communication model.
        num_frames: frames to stream.
        overhead: per-frame compute-time model; default ideal.
        warmup_fraction: fraction excluded from the period estimate.
    """
    if num_frames < 2:
        raise ValueError(f"need at least 2 frames, got {num_frames}")
    compute = overhead if overhead is not None else NoOverhead()

    stages = spec.stages
    k = len(stages)
    capacity = spec.queue_capacity
    transfer = boundary_costs(spec, model)

    finish = np.zeros((k, num_frames), dtype=np.float64)
    avail = np.zeros((k, num_frames), dtype=np.float64)
    started = np.zeros((k, num_frames), dtype=np.float64)

    for f in range(num_frames):
        for i, stage in enumerate(stages):
            ready = 0.0
            if i > 0:
                # Availability upstream already includes the transfer time.
                ready = avail[i - 1, f]
            prev_same_worker = f - stage.replicas
            if prev_same_worker >= 0:
                ready = max(ready, finish[i, prev_same_worker])
            if i + 1 < k and f - capacity >= 0:
                ready = max(ready, started[i + 1, f - capacity])
            latency = compute.effective_latency(
                stage.latency, stage.index, k, stage.replicas,
                stage.core_type, f,
            )
            started[i, f] = ready
            done = ready + latency
            finish[i, f] = done
            delivered = done + (transfer[i] if i < k - 1 else 0.0)
            avail[i, f] = max(avail[i, f - 1], delivered) if f > 0 else delivered

    period = steady_state_period(avail[-1], warmup_fraction)
    report = ThroughputReport.from_simulation(
        spec=spec,
        completion_times=avail[-1],
        measured_period=period,
        num_frames=num_frames,
    )
    return SimulationResult(spec=spec, finish_times=avail, report=report)
