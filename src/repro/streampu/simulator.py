"""Discrete-event simulation of a pipelined, replicated streaming run.

This is the library's substitute for executing StreamPU on real hardware: it
models the runtime's dataflow semantics —

* stages process frames in order;
* a replicated stage round-robins frames over its ``r`` replica workers
  (frame ``f`` goes to replica ``f mod r``), each replica taking the full
  stage latency per frame (replication raises throughput, not latency);
* inter-stage adaptors are *bounded queues*: a stage stalls when the
  downstream buffer is full (backpressure) and delivers frames to the next
  stage *in order* (as StreamPU's synchronization modules do);
* an :class:`~repro.streampu.overheads.OverheadModel` perturbs per-frame
  processing times.

The recurrence (all times in the chain's weight unit, e.g. microseconds):

    ready[i][f]  = max(avail[i-1][f], finish[i][f - r_i], start[i+1][f - C])
    finish[i][f] = ready[i][f] + effective_latency(i, f)
    avail[i][f]  = max(avail[i][f-1], finish[i][f])   (in-order delivery)

where ``C`` is the queue capacity.  Every dependency points to an earlier
frame or an earlier stage of the same frame, so one pass in frame-major
order computes the exact event times — an event *calendar* rather than an
event *heap*, possible because stage service order is deterministic.

With :class:`~repro.streampu.overheads.NoOverhead` the measured steady-state
period converges to the analytic period ``max_i latency_i / r_i`` (property-
tested), which is what ties the simulator back to the scheduling model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .metrics import ThroughputReport, steady_state_period
from .overheads import NoOverhead, OverheadModel
from .pipeline import PipelineSpec

__all__ = ["SimulationResult", "simulate_pipeline"]


@dataclass(frozen=True)
class SimulationResult:
    """Raw simulation output.

    Attributes:
        spec: the simulated pipeline.
        finish_times: ``finish_times[i, f]``: time frame ``f`` leaves stage
            ``i`` (after in-order delivery).
        report: derived throughput metrics.
    """

    spec: PipelineSpec
    finish_times: np.ndarray
    report: ThroughputReport

    @property
    def completion_times(self) -> np.ndarray:
        """Time each frame leaves the pipeline (last stage row)."""
        return self.finish_times[-1]


def simulate_pipeline(
    spec: PipelineSpec,
    num_frames: int = 2000,
    overhead: OverheadModel | None = None,
    warmup_fraction: float = 0.25,
) -> SimulationResult:
    """Simulate the streaming execution of ``spec``.

    Args:
        spec: the pipeline to run.
        num_frames: number of frames to stream (the source is saturating:
            a new frame is available as soon as the first stage can accept
            one, as in the paper's throughput runs).
        overhead: per-frame processing-time model; default ideal.
        warmup_fraction: fraction of initial frames excluded from the
            steady-state period estimate (pipeline fill).

    Returns:
        A :class:`SimulationResult` with exact event times and metrics.
    """
    if num_frames < 2:
        raise ValueError(f"need at least 2 frames, got {num_frames}")
    model = overhead if overhead is not None else NoOverhead()

    stages = spec.stages
    k = len(stages)
    capacity = spec.queue_capacity

    # ready[i][f] is implicit; we store worker finish times and the in-order
    # availability (avail) per stage.
    finish = np.zeros((k, num_frames), dtype=np.float64)
    avail = np.zeros((k, num_frames), dtype=np.float64)
    started = np.zeros((k, num_frames), dtype=np.float64)

    for f in range(num_frames):
        for i, stage in enumerate(stages):
            ready = 0.0
            if i > 0:
                ready = avail[i - 1, f]
            prev_same_worker = f - stage.replicas
            if prev_same_worker >= 0:
                ready = max(ready, finish[i, prev_same_worker])
            # Backpressure: the frame can only enter this stage when the
            # buffer toward the next stage has a free slot, i.e. frame
            # f - capacity already started downstream.
            if i + 1 < k and f - capacity >= 0:
                ready = max(ready, started[i + 1, f - capacity])
            latency = model.effective_latency(
                stage.latency,
                stage.index,
                k,
                stage.replicas,
                stage.core_type,
                f,
            )
            started[i, f] = ready
            done = ready + latency
            finish[i, f] = done
            avail[i, f] = max(avail[i, f - 1], done) if f > 0 else done

    period = steady_state_period(avail[-1], warmup_fraction)
    report = ThroughputReport.from_simulation(
        spec=spec,
        completion_times=avail[-1],
        measured_period=period,
        num_frames=num_frames,
    )
    return SimulationResult(spec=spec, finish_times=avail, report=report)
