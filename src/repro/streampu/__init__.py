"""StreamPU-like pipelined streaming runtime (simulated and threaded).

The paper executes its schedules with StreamPU, a C++ DSEL/runtime for
software-defined radio.  This package provides the equivalent substrate in
Python:

* :class:`PipelineSpec` — an executable pipeline built from a schedule;
* :func:`simulate_pipeline` — exact discrete-event simulation with bounded
  in-order adaptors, replica round-robin, and pluggable overhead models;
* :class:`PipelineRuntime` — a real threaded runtime streaming frames
  through worker threads and ordered channels;
* overhead models reproducing the paper's expected-vs-real throughput gaps.
"""

from .channels import ChannelClosedError, Frame, OrderedChannel
from .communication import (
    CommunicationModel,
    boundary_costs,
    simulate_with_communication,
)
from .dynamic import DynamicScheduleResult, simulate_dynamic_scheduler
from .metrics import ThroughputReport, steady_state_period
from .module import (
    CallableTask,
    NumpyKernelTask,
    SyntheticSleepTask,
    TaskExecutor,
    executors_from_weights,
)
from .overheads import (
    CalibratedOverhead,
    ConstantSyncOverhead,
    NoOverhead,
    OverheadModel,
)
from .pipeline import PipelineSpec, PipelineStage
from .placement import (
    Placement,
    PlacementOverhead,
    PhysicalCore,
    compact_placement,
    platform_cores,
    scatter_placement,
)
from .profiler import TaskProfile, profile_chain, profile_executor
from .runtime import PipelineRuntime, RuntimeResult, StageGroup
from .simulator import SimulationResult, simulate_pipeline

__all__ = [
    "PipelineSpec",
    "PipelineStage",
    "simulate_pipeline",
    "SimulationResult",
    "PipelineRuntime",
    "RuntimeResult",
    "StageGroup",
    "ThroughputReport",
    "steady_state_period",
    "OverheadModel",
    "NoOverhead",
    "ConstantSyncOverhead",
    "CalibratedOverhead",
    "OrderedChannel",
    "Frame",
    "ChannelClosedError",
    "TaskExecutor",
    "SyntheticSleepTask",
    "NumpyKernelTask",
    "CallableTask",
    "executors_from_weights",
    "TaskProfile",
    "profile_chain",
    "profile_executor",
    "CommunicationModel",
    "boundary_costs",
    "simulate_with_communication",
    "simulate_dynamic_scheduler",
    "DynamicScheduleResult",
    "PhysicalCore",
    "platform_cores",
    "Placement",
    "compact_placement",
    "scatter_placement",
    "PlacementOverhead",
]
