"""Metrics registry: counters, gauges, histograms — with exact cross-process merge.

The design constraint is *exactness across worker processes*: a ``--jobs 4``
process-tier campaign must report the same retry/quarantine/memo counters as
the serial run.  That rules out sampling or lossy aggregation — each worker
snapshots its registry into a picklable :class:`MetricsSnapshot`, ships it
home inside the unit result, and the engine :meth:`MetricsRegistry.merge`\\ s
it: counters sum, histograms combine (count/total/min/max are all exactly
mergeable), gauges last-write-wins.  Mean and other derived statistics are
computed only at read time, so merging never loses information.

Every :meth:`MetricsRegistry.observe` additionally feeds a deterministic
log-bucket sketch (:mod:`repro.obs.sketch`) under the same name, so every
histogram is quantile-grade: ``snapshot().sketches`` answers p50/p90/p99 at
read time, and sketches of deterministic observation streams merge to
*bitwise-identical* snapshots across serial and ``--jobs N`` tiers (integer
bucket counts have no float-summation order dependence).

Naming convention: dotted lowercase paths (``memo.hits``,
``solve.seconds.herad``, ``binary_search.iterations``) so the RunReport can
group related metrics by prefix.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Protocol

from .sketch import SketchBuilder, SketchSnapshot

__all__ = [
    "HistogramStats",
    "MetricsSnapshot",
    "MetricsLike",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
]


@dataclass(frozen=True, slots=True)
class HistogramStats:
    """Exactly-mergeable summary of an observed distribution."""

    count: int
    total: float
    minimum: float
    maximum: float

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merged(self, other: "HistogramStats") -> "HistogramStats":
        if not other.count:
            return self
        if not self.count:
            return other
        return HistogramStats(
            count=self.count + other.count,
            total=self.total + other.total,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
        )


@dataclass(frozen=True, slots=True)
class MetricsSnapshot:
    """Immutable, picklable point-in-time copy of a registry.

    Stored as sorted tuples (not dicts) so two snapshots of identical state
    pickle to identical bytes.
    """

    counters: tuple[tuple[str, float], ...] = ()
    gauges: tuple[tuple[str, float], ...] = ()
    histograms: tuple[tuple[str, HistogramStats], ...] = ()
    sketches: tuple[tuple[str, SketchSnapshot], ...] = ()

    @property
    def empty(self) -> bool:
        return not (self.counters or self.gauges or self.histograms)

    def sketch(self, name: str) -> SketchSnapshot | None:
        for key, value in self.sketches:
            if key == name:
                return value
        return None


class MetricsLike(Protocol):
    """Structural interface shared by :class:`MetricsRegistry` and :class:`NullMetrics`."""

    enabled: bool

    def add(self, name: str, value: float = ...) -> None: ...

    def set_gauge(self, name: str, value: float) -> None: ...

    def observe(self, name: str, value: float) -> None: ...

    def sketch(self, name: str) -> SketchSnapshot | None: ...

    def snapshot(self) -> MetricsSnapshot: ...

    def merge(self, snapshot: MetricsSnapshot) -> None: ...


class MetricsRegistry:
    """Thread-safe counters/gauges/histograms.

    One plain lock protects everything: metric updates are far rarer than
    span opens (they sit at decision points — memo lookups, retries — not
    inner loops), so contention is negligible and the simplicity is worth it.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, HistogramStats] = {}
        self._sketches: dict[str, SketchBuilder] = {}

    def add(self, name: str, value: float = 1.0) -> None:
        """Increment counter ``name`` by ``value``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins on merge)."""
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name`` and its sketch."""
        with self._lock:
            prior = self._histograms.get(name)
            if prior is None:
                self._histograms[name] = HistogramStats(1, value, value, value)
            else:
                self._histograms[name] = HistogramStats(
                    count=prior.count + 1,
                    total=prior.total + value,
                    minimum=min(prior.minimum, value),
                    maximum=max(prior.maximum, value),
                )
            builder = self._sketches.get(name)
            if builder is None:
                builder = self._sketches[name] = SketchBuilder()
            builder.observe(value)

    def sketch(self, name: str) -> SketchSnapshot | None:
        """Current sketch for histogram ``name`` (None if never observed)."""
        with self._lock:
            builder = self._sketches.get(name)
            return builder.snapshot() if builder is not None else None

    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0.0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0.0)

    def counters(self) -> dict[str, float]:
        """Copy of all counters."""
        with self._lock:
            return dict(self._counters)

    def snapshot(self) -> MetricsSnapshot:
        """Picklable copy of the full registry state."""
        with self._lock:
            return MetricsSnapshot(
                counters=tuple(sorted(self._counters.items())),
                gauges=tuple(sorted(self._gauges.items())),
                histograms=tuple(sorted(self._histograms.items())),
                sketches=tuple(
                    sorted(
                        (name, builder.snapshot())
                        for name, builder in self._sketches.items()
                    )
                ),
            )

    def merge(self, snapshot: MetricsSnapshot) -> None:
        """Fold a worker snapshot in: counters sum, histograms combine."""
        with self._lock:
            for name, value in snapshot.counters:
                self._counters[name] = self._counters.get(name, 0.0) + value
            for name, value in snapshot.gauges:
                self._gauges[name] = value
            for name, stats in snapshot.histograms:
                prior = self._histograms.get(name)
                self._histograms[name] = stats if prior is None else prior.merged(stats)
            for name, sk in snapshot.sketches:
                builder = self._sketches.get(name)
                if builder is None:
                    builder = self._sketches[name] = SketchBuilder(alpha=sk.alpha)
                builder.absorb(sk)

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._sketches.clear()


class NullMetrics:
    """Zero-overhead registry: every operation is a constant-time no-op."""

    enabled = False

    def add(self, name: str, value: float = 1.0) -> None:
        return None

    def set_gauge(self, name: str, value: float) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def sketch(self, name: str) -> SketchSnapshot | None:
        return None

    def counter(self, name: str) -> float:
        return 0.0

    def counters(self) -> dict[str, float]:
        return {}

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot()

    def merge(self, snapshot: MetricsSnapshot) -> None:
        return None

    def clear(self) -> None:
        return None


NULL_METRICS = NullMetrics()
"""Module-level singleton used wherever metrics are disabled."""
