"""Exporters: Chrome trace-event JSON and JSONL event sinks.

Chrome trace-event format
-------------------------
Each span becomes a matched pair of duration events — ``{"ph": "B"}`` at the
start and ``{"ph": "E"}`` at the end — with microsecond ``ts`` relative to
the earliest span in the trace, keyed by ``pid``/``tid`` so every worker
thread and process renders as its own track.  The resulting object
(``{"traceEvents": [...], "displayTimeUnit": "ms"}``) loads directly into
``chrome://tracing`` or https://ui.perfetto.dev.

Event ordering matters to viewers: within one (pid, tid) track, events are
sorted by timestamp, and at *equal* timestamps E-events precede B-events
(close before open) with deeper spans closing first and shallower spans
opening first — exactly the order a correctly-nested stack unwinds and
rewinds.  :func:`validate_chrome_trace` checks these invariants and is the
shared oracle for the test suite and the CI trace smoke.

JSONL sink
----------
One self-describing JSON object per line (``{"type": "span", ...}`` /
``{"type": "counter", ...}``), suitable for ``jq`` and ad-hoc analysis
without loading a whole trace into memory.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .clock import wall
from .metrics import MetricsSnapshot
from .span import Span

__all__ = [
    "spans_to_chrome_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_events_jsonl",
    "validate_chrome_trace",
]

_VALID_PHASES = frozenset({"B", "E", "X", "M"})


def _event_sort_key(event: dict[str, Any]) -> tuple[int, int, float, int, int]:
    """Stable viewer-friendly order; see module docstring."""
    phase_rank = 0 if event["ph"] == "E" else 1
    depth = int(event["args"].get("depth", 0))
    # E: deeper spans close first (larger depth earlier → negate).
    # B: shallower spans open first (smaller depth earlier).
    depth_rank = -depth if event["ph"] == "E" else depth
    return (event["pid"], event["tid"], event["ts"], phase_rank, depth_rank)


def spans_to_chrome_events(spans: tuple[Span, ...] | list[Span]) -> list[dict[str, Any]]:
    """Convert spans into a sorted list of matched B/E duration events."""
    if not spans:
        return []
    origin = min(span.start for span in spans)
    events: list[dict[str, Any]] = []
    for span in spans:
        args: dict[str, Any] = dict(span.attrs)
        args["depth"] = span.depth
        if span.parent_id is not None:
            args["parent"] = span.parent_id
        common = {
            "name": span.name,
            "cat": span.category,
            "pid": span.pid,
            "tid": span.tid,
        }
        events.append(
            {**common, "ph": "B", "ts": (span.start - origin) * 1e6, "args": args}
        )
        events.append(
            {**common, "ph": "E", "ts": (span.end - origin) * 1e6, "args": args}
        )
    events.sort(key=_event_sort_key)
    return events


def to_chrome_trace(
    spans: tuple[Span, ...] | list[Span],
    metrics: MetricsSnapshot | None = None,
) -> dict[str, Any]:
    """Full chrome://tracing-loadable document for ``spans``."""
    document: dict[str, Any] = {
        "traceEvents": spans_to_chrome_events(spans),
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.obs", "exported_at": wall()},
    }
    if metrics is not None and not metrics.empty:
        document["otherData"]["counters"] = dict(metrics.counters)
    return document


def write_chrome_trace(
    path: str | Path,
    spans: tuple[Span, ...] | list[Span],
    metrics: MetricsSnapshot | None = None,
) -> Path:
    """Serialise :func:`to_chrome_trace` to ``path``; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(to_chrome_trace(spans, metrics), indent=1))
    return target


def write_events_jsonl(
    path: str | Path,
    spans: tuple[Span, ...] | list[Span],
    metrics: MetricsSnapshot | None = None,
) -> Path:
    """Write one JSON object per line: a header, spans, then metric events."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w") as sink:
        header = {"type": "header", "format": "repro-obs-jsonl", "version": 1, "exported_at": wall()}
        sink.write(json.dumps(header) + "\n")
        for span in spans:
            record = {
                "type": "span",
                "name": span.name,
                "cat": span.category,
                "start": span.start,
                "end": span.end,
                "duration": span.duration,
                "pid": span.pid,
                "tid": span.tid,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "depth": span.depth,
                "attrs": dict(span.attrs),
            }
            sink.write(json.dumps(record) + "\n")
        if metrics is not None:
            for name, value in metrics.counters:
                sink.write(json.dumps({"type": "counter", "name": name, "value": value}) + "\n")
            for name, value in metrics.gauges:
                sink.write(json.dumps({"type": "gauge", "name": name, "value": value}) + "\n")
            for name, stats in metrics.histograms:
                record = {
                    "type": "histogram",
                    "name": name,
                    "count": stats.count,
                    "total": stats.total,
                    "min": stats.minimum,
                    "max": stats.maximum,
                    "mean": stats.mean,
                }
                sink.write(json.dumps(record) + "\n")
    return target


def validate_chrome_trace(document: Any) -> list[str]:
    """Validate trace-event structural invariants; returns problems (empty = valid).

    Checks: top-level shape, required event fields, known phases,
    non-negative timestamps, per-track ts monotonicity, and — per
    (pid, tid) track — that B/E events nest as a well-formed stack with
    matching names and no dangling opens.
    """
    problems: list[str] = []
    if not isinstance(document, dict):
        return ["document is not a JSON object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]

    stacks: dict[tuple[int, int], list[str]] = {}
    last_ts: dict[tuple[int, int], float] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index}: not an object")
            continue
        missing = [key for key in ("name", "ph", "ts", "pid", "tid") if key not in event]
        if missing:
            problems.append(f"event {index}: missing fields {missing}")
            continue
        phase = event["ph"]
        if phase not in _VALID_PHASES:
            problems.append(f"event {index}: unknown phase {phase!r}")
            continue
        ts = event["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {index}: bad ts {ts!r}")
            continue
        track = (event["pid"], event["tid"])
        if track in last_ts and ts < last_ts[track]:
            problems.append(
                f"event {index}: ts {ts} < previous {last_ts[track]} on track {track}"
            )
        last_ts[track] = float(ts)
        if phase == "B":
            stacks.setdefault(track, []).append(str(event["name"]))
        elif phase == "E":
            stack = stacks.setdefault(track, [])
            if not stack:
                problems.append(f"event {index}: E with empty stack on track {track}")
            else:
                opened = stack.pop()
                if opened != event["name"]:
                    problems.append(
                        f"event {index}: E name {event['name']!r} does not match open span {opened!r}"
                    )
    for track, stack in stacks.items():
        if stack:
            problems.append(f"track {track}: {len(stack)} unterminated span(s): {stack}")
    return problems
