"""RunReport: the human-readable end-of-run summary.

Aggregates the session's spans and metrics into the things someone tuning a
campaign actually asks: *where did the wall-clock go* (top time sinks by
span name, inclusive **and** exclusive), *how bad are the tails* (p50/p90/p99
from the quantile sketches), *did the memo help* (hit rate), *what did
parallelism cost* (per-worker pickle/pool-wait attribution), and *did
anything go wrong* (retries, degradations, quarantines).  The CLI prints
:meth:`RunReport.render` when ``--metrics`` is set.

Time sinks report both inclusive time ("how much wall-clock had a ``solve``
span open" — double-counts nested spans by design) and exclusive self time
derived by :mod:`repro.obs.profile` ("how much wall-clock is attributable to
this frame and nothing below it" — sums to traced wall-clock exactly).  The
full per-stack breakdown is the ``--flamegraph`` export.
"""

from __future__ import annotations

from dataclasses import dataclass

from .context import Observability
from .metrics import HistogramStats, MetricsSnapshot
from .profile import aggregate_self
from .sketch import SketchSnapshot
from .span import Span

__all__ = ["SpanSink", "WorkerCost", "RunReport"]

_WORKER_PREFIX = "worker."
"""Counter namespace for per-worker cost attribution (process tier only).

Everything under it is keyed by worker pid and therefore run-dependent —
the one metric namespace exempt from the cross-tier counter-parity
guarantee (see DESIGN.md §15).
"""


@dataclass(frozen=True, slots=True)
class SpanSink:
    """Aggregated inclusive + exclusive time for one span (name, category)."""

    name: str
    category: str
    count: int
    total_seconds: float
    self_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0


@dataclass(frozen=True, slots=True)
class WorkerCost:
    """Per-worker cost attribution parsed from the ``worker.<pid>.*`` counters."""

    pid: str
    units: int
    bytes_in: int
    bytes_out: int
    pickle_seconds: float
    pool_wait_seconds: float
    memo_hits: int
    memo_misses: int


def _aggregate_sinks(spans: tuple[Span, ...]) -> tuple[SpanSink, ...]:
    return tuple(
        SpanSink(
            name=stat.name,
            category=stat.category,
            count=stat.count,
            total_seconds=stat.inclusive_seconds,
            self_seconds=stat.self_seconds,
        )
        for stat in sorted(
            aggregate_self(spans),
            key=lambda stat: (-stat.inclusive_seconds, stat.name),
        )
    )


def _fmt_bytes(count: float) -> str:
    value = float(count)
    for unit in ("B", "KB", "MB", "GB"):
        if value < 1024.0 or unit == "GB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{value:.0f}B"
        value /= 1024.0
    return f"{value:.1f}GB"


@dataclass(frozen=True, slots=True)
class RunReport:
    """Everything the end-of-run summary needs, in one picklable value."""

    wall_seconds: float
    sinks: tuple[SpanSink, ...]
    counters: tuple[tuple[str, float], ...]
    histograms: tuple[tuple[str, HistogramStats], ...]
    sketches: tuple[tuple[str, SketchSnapshot], ...] = ()

    @classmethod
    def from_observability(
        cls, obs: Observability, wall_seconds: float
    ) -> "RunReport":
        snapshot = obs.metrics.snapshot()
        return cls.from_parts(obs.spans(), snapshot, wall_seconds)

    @classmethod
    def from_parts(
        cls,
        spans: tuple[Span, ...],
        metrics: MetricsSnapshot,
        wall_seconds: float,
    ) -> "RunReport":
        return cls(
            wall_seconds=wall_seconds,
            sinks=_aggregate_sinks(spans),
            counters=metrics.counters,
            histograms=metrics.histograms,
            sketches=metrics.sketches,
        )

    def counter(self, name: str) -> float:
        for key, value in self.counters:
            if key == name:
                return value
        return 0.0

    def sketch(self, name: str) -> SketchSnapshot | None:
        for key, value in self.sketches:
            if key == name:
                return value
        return None

    @property
    def memo_hits(self) -> float:
        return self.counter("memo.hits")

    @property
    def memo_misses(self) -> float:
        return self.counter("memo.misses")

    @property
    def memo_hit_rate(self) -> float:
        lookups = self.memo_hits + self.memo_misses
        return self.memo_hits / lookups if lookups else 0.0

    @property
    def retries(self) -> float:
        return self.counter("resilience.retries")

    @property
    def quarantined(self) -> float:
        return self.counter("resilience.quarantined")

    @property
    def degradations(self) -> float:
        return self.counter("resilience.degradations")

    def worker_costs(self) -> tuple[WorkerCost, ...]:
        """Per-worker attribution rows (empty outside traced process tiers)."""
        by_pid: dict[str, dict[str, float]] = {}
        for name, value in self.counters:
            if not name.startswith(_WORKER_PREFIX):
                continue
            parts = name.split(".", 2)
            if len(parts) != 3 or not parts[1].isdigit():
                continue
            by_pid.setdefault(parts[1], {})[parts[2]] = value
        return tuple(
            WorkerCost(
                pid=pid,
                units=int(fields.get("units", 0)),
                bytes_in=int(fields.get("pickle.bytes_in", 0)),
                bytes_out=int(fields.get("pickle.bytes_out", 0)),
                pickle_seconds=fields.get("pickle.seconds_in", 0.0)
                + fields.get("pickle.seconds_out", 0.0),
                pool_wait_seconds=fields.get("pool_wait.seconds", 0.0),
                memo_hits=int(fields.get("memo.hits", 0)),
                memo_misses=int(fields.get("memo.misses", 0)),
            )
            for pid, fields in sorted(by_pid.items())
        )

    def _render_efficiency(self, lines: list[str]) -> None:
        costs = self.worker_costs()
        if not costs:
            return
        lines.append(f"parallel efficiency ({len(costs)} workers):")
        total_in = sum(cost.bytes_in for cost in costs)
        total_out = sum(cost.bytes_out for cost in costs)
        total_pickle = sum(cost.pickle_seconds for cost in costs)
        lines.append(
            f"  pickle: {_fmt_bytes(total_in)} in / {_fmt_bytes(total_out)} out, "
            f"{total_pickle * 1e3:.2f}ms serializing"
        )
        wait_sketch = self.sketch("worker.pool_wait.seconds")
        if wait_sketch is not None and not wait_sketch.empty:
            lines.append(
                f"  pool wait: p50 {wait_sketch.p50 * 1e3:.2f}ms "
                f"p90 {wait_sketch.p90 * 1e3:.2f}ms "
                f"p99 {wait_sketch.p99 * 1e3:.2f}ms"
            )
        for cost in costs:
            memo = (
                f", memo {cost.memo_hits}/{cost.memo_hits + cost.memo_misses}"
                if cost.memo_hits or cost.memo_misses
                else ""
            )
            lines.append(
                f"  worker {cost.pid}: units {cost.units}, "
                f"in {_fmt_bytes(cost.bytes_in)}, out {_fmt_bytes(cost.bytes_out)}, "
                f"pickle {cost.pickle_seconds * 1e3:.2f}ms, "
                f"wait {cost.pool_wait_seconds * 1e3:.2f}ms{memo}"
            )

    def render(self, top: int = 10) -> str:
        """Format the report for terminal output."""
        lines = ["== Run report =="]
        lines.append(f"wall-clock: {self.wall_seconds:.3f}s")

        if self.sinks:
            lines.append(
                f"top time sinks (inclusive/self, top {min(top, len(self.sinks))}):"
            )
            for sink in self.sinks[:top]:
                lines.append(
                    f"  {sink.total_seconds:9.3f}s {sink.self_seconds:9.3f}s  "
                    f"{sink.name:<24s} [{sink.category}]  x{sink.count}  "
                    f"(mean {sink.mean_seconds * 1e3:.2f}ms)"
                )
        else:
            lines.append("no spans recorded (run with --trace to collect them)")

        lookups = self.memo_hits + self.memo_misses
        if lookups:
            lines.append(
                f"memo: {self.memo_hits:.0f}/{lookups:.0f} hits "
                f"({self.memo_hit_rate:.1%})"
            )
        failures = self.quarantined
        if failures or self.retries or self.degradations:
            lines.append(
                f"failures: {failures:.0f} quarantined, "
                f"{self.retries:.0f} retries, {self.degradations:.0f} degradations"
            )
        else:
            lines.append("failures: none")

        self._render_efficiency(lines)

        shown = {"memo.hits", "memo.misses", "resilience.retries",
                 "resilience.quarantined", "resilience.degradations"}
        other = [
            (name, value)
            for name, value in self.counters
            if name not in shown and not name.startswith(_WORKER_PREFIX)
        ]
        if other:
            lines.append("counters:")
            for name, value in other:
                rendered = f"{value:.0f}" if value == int(value) else f"{value:.3f}"
                lines.append(f"  {name} = {rendered}")
        if self.histograms:
            lines.append("histograms:")
            for name, stats in self.histograms:
                quantiles = ""
                sketch = self.sketch(name)
                if sketch is not None and not sketch.empty:
                    quantiles = (
                        f" p50={sketch.p50 * 1e3:.3f}ms"
                        f" p90={sketch.p90 * 1e3:.3f}ms"
                        f" p99={sketch.p99 * 1e3:.3f}ms"
                    )
                lines.append(
                    f"  {name}: n={stats.count} mean={stats.mean * 1e3:.3f}ms"
                    f"{quantiles} "
                    f"min={stats.minimum * 1e3:.3f}ms max={stats.maximum * 1e3:.3f}ms"
                )
        return "\n".join(lines)
