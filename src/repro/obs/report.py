"""RunReport: the human-readable end-of-run summary.

Aggregates the session's spans and metrics into the three things someone
tuning a campaign actually asks: *where did the wall-clock go* (top time
sinks by span name), *did the memo help* (hit rate), and *did anything go
wrong* (retries, degradations, quarantines).  The CLI prints
:meth:`RunReport.render` when ``--metrics`` is set.

Time sinks aggregate **self time is not attempted** — sinks report inclusive
span time by (name, category), which double-counts nested spans by design:
the question answered is "how much wall-clock had a ``solve`` span open",
not an exclusive-cost flamegraph (that is what the Chrome trace is for).
"""

from __future__ import annotations

from dataclasses import dataclass

from .context import Observability
from .metrics import HistogramStats, MetricsSnapshot
from .span import Span

__all__ = ["SpanSink", "RunReport"]


@dataclass(frozen=True, slots=True)
class SpanSink:
    """Aggregated inclusive time for one span (name, category)."""

    name: str
    category: str
    count: int
    total_seconds: float

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0


def _aggregate_sinks(spans: tuple[Span, ...]) -> tuple[SpanSink, ...]:
    totals: dict[tuple[str, str], tuple[int, float]] = {}
    for span in spans:
        key = (span.name, span.category)
        count, total = totals.get(key, (0, 0.0))
        totals[key] = (count + 1, total + span.duration)
    sinks = [
        SpanSink(name=name, category=category, count=count, total_seconds=total)
        for (name, category), (count, total) in totals.items()
    ]
    sinks.sort(key=lambda sink: (-sink.total_seconds, sink.name))
    return tuple(sinks)


@dataclass(frozen=True, slots=True)
class RunReport:
    """Everything the end-of-run summary needs, in one picklable value."""

    wall_seconds: float
    sinks: tuple[SpanSink, ...]
    counters: tuple[tuple[str, float], ...]
    histograms: tuple[tuple[str, HistogramStats], ...]

    @classmethod
    def from_observability(
        cls, obs: Observability, wall_seconds: float
    ) -> "RunReport":
        snapshot = obs.metrics.snapshot()
        return cls.from_parts(obs.spans(), snapshot, wall_seconds)

    @classmethod
    def from_parts(
        cls,
        spans: tuple[Span, ...],
        metrics: MetricsSnapshot,
        wall_seconds: float,
    ) -> "RunReport":
        return cls(
            wall_seconds=wall_seconds,
            sinks=_aggregate_sinks(spans),
            counters=metrics.counters,
            histograms=metrics.histograms,
        )

    def counter(self, name: str) -> float:
        for key, value in self.counters:
            if key == name:
                return value
        return 0.0

    @property
    def memo_hits(self) -> float:
        return self.counter("memo.hits")

    @property
    def memo_misses(self) -> float:
        return self.counter("memo.misses")

    @property
    def memo_hit_rate(self) -> float:
        lookups = self.memo_hits + self.memo_misses
        return self.memo_hits / lookups if lookups else 0.0

    @property
    def retries(self) -> float:
        return self.counter("resilience.retries")

    @property
    def quarantined(self) -> float:
        return self.counter("resilience.quarantined")

    @property
    def degradations(self) -> float:
        return self.counter("resilience.degradations")

    def render(self, top: int = 10) -> str:
        """Format the report for terminal output."""
        lines = ["== Run report =="]
        lines.append(f"wall-clock: {self.wall_seconds:.3f}s")

        if self.sinks:
            lines.append(f"top time sinks (inclusive, top {min(top, len(self.sinks))}):")
            for sink in self.sinks[:top]:
                lines.append(
                    f"  {sink.total_seconds:9.3f}s  {sink.name:<24s} "
                    f"[{sink.category}]  x{sink.count}  "
                    f"(mean {sink.mean_seconds * 1e3:.2f}ms)"
                )
        else:
            lines.append("no spans recorded (run with --trace to collect them)")

        lookups = self.memo_hits + self.memo_misses
        if lookups:
            lines.append(
                f"memo: {self.memo_hits:.0f}/{lookups:.0f} hits "
                f"({self.memo_hit_rate:.1%})"
            )
        failures = self.quarantined
        if failures or self.retries or self.degradations:
            lines.append(
                f"failures: {failures:.0f} quarantined, "
                f"{self.retries:.0f} retries, {self.degradations:.0f} degradations"
            )
        else:
            lines.append("failures: none")

        shown = {"memo.hits", "memo.misses", "resilience.retries",
                 "resilience.quarantined", "resilience.degradations"}
        other = [(name, value) for name, value in self.counters if name not in shown]
        if other:
            lines.append("counters:")
            for name, value in other:
                rendered = f"{value:.0f}" if value == int(value) else f"{value:.3f}"
                lines.append(f"  {name} = {rendered}")
        if self.histograms:
            lines.append("histograms:")
            for name, stats in self.histograms:
                lines.append(
                    f"  {name}: n={stats.count} mean={stats.mean * 1e3:.3f}ms "
                    f"min={stats.minimum * 1e3:.3f}ms max={stats.maximum * 1e3:.3f}ms"
                )
        return "\n".join(lines)
