"""Exclusive self-time profiles and collapsed-stack flamegraphs over spans.

The span buffers record *inclusive* time: a ``campaign`` span covers every
``solve`` nested under it.  :class:`~repro.obs.report.RunReport` time sinks
therefore double-count by construction.  This module derives the exclusive
view from the same buffers — no extra instrumentation, no sampling:

* :func:`self_seconds` — per-span exclusive time, defined as the span's
  inclusive duration minus the summed durations of its *direct* children
  (``parent_id`` links are per-process, per-thread).  The definition is an
  exact partition: summed over a span forest, self time equals the summed
  inclusive time of the roots, which is why the flamegraph validator can
  demand >= 95% of traced wall-clock attributed to leaf frames — anything
  less means the exporter dropped frames, not that the math is lossy.
* :func:`aggregate_self` — (name, category) totals with both inclusive and
  exclusive columns, consumed by the RunReport time-sink table.
* :func:`collapsed_stacks` / :func:`write_flamegraph` — Brendan Gregg
  collapsed-stack format (``root;child;leaf <count>`` with integer
  microsecond counts), renderable by ``flamegraph.pl``, speedscope, or any
  d3-flamegraph viewer.
* :func:`validate_flamegraph` — the structural oracle shared by tests and
  the CI trace smoke: line grammar, stack roots matching span roots, and
  the >= 95% attribution floor.

Time spent inside a span but outside all of its children (scheduling glue,
loop overhead) is attributed to the interior frame itself — a standard
collapsed-stack convention: a stack path may appear both as a prefix of
deeper paths and as a leaf line carrying its own self time.
"""

from __future__ import annotations

import re
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from .span import Span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from pathlib import Path

__all__ = [
    "FrameStat",
    "self_seconds",
    "aggregate_self",
    "collapsed_stacks",
    "write_flamegraph",
    "validate_flamegraph",
    "leaf_attribution",
]

_SpanKey = tuple[int, int]
"""Process-unique span key: (pid, span_id).  span_ids are per-process."""


@dataclass(frozen=True, slots=True)
class FrameStat:
    """Aggregated inclusive + exclusive time for one (name, category) frame."""

    name: str
    category: str
    count: int
    inclusive_seconds: float
    self_seconds: float


def self_seconds(spans: Sequence[Span]) -> dict[_SpanKey, float]:
    """Exclusive time per span: duration minus summed direct-child durations.

    Negative residues (possible only through clock quirks on sub-resolution
    spans) clamp to zero so downstream percentages stay meaningful.
    """
    child_time: dict[_SpanKey, float] = {}
    for span in spans:
        if span.parent_id is not None:
            key = (span.pid, span.parent_id)
            child_time[key] = child_time.get(key, 0.0) + span.duration
    return {
        (span.pid, span.span_id): max(
            0.0, span.duration - child_time.get((span.pid, span.span_id), 0.0)
        )
        for span in spans
    }


def aggregate_self(spans: Sequence[Span]) -> tuple[FrameStat, ...]:
    """(name, category) frame totals, sorted by descending self time."""
    selfs = self_seconds(spans)
    totals: dict[tuple[str, str], tuple[int, float, float]] = {}
    for span in spans:
        key = (span.name, span.category)
        count, inclusive, exclusive = totals.get(key, (0, 0.0, 0.0))
        totals[key] = (
            count + 1,
            inclusive + span.duration,
            exclusive + selfs[(span.pid, span.span_id)],
        )
    stats = [
        FrameStat(
            name=name,
            category=category,
            count=count,
            inclusive_seconds=inclusive,
            self_seconds=exclusive,
        )
        for (name, category), (count, inclusive, exclusive) in totals.items()
    ]
    stats.sort(key=lambda stat: (-stat.self_seconds, stat.name))
    return tuple(stats)


def _frame_name(name: str) -> str:
    """Collapsed-stack frames may not contain the separators of the format."""
    return name.replace(";", ":").replace(" ", "_") or "?"


def collapsed_stacks(spans: Sequence[Span]) -> dict[str, int]:
    """Map ``root;child;leaf`` stack paths to integer self-microseconds.

    Each span contributes its *self* time to the stack path ending at it, so
    the sum of all values equals (up to microsecond rounding) the summed
    inclusive duration of the root spans.  Spans whose parent was not
    collected (a truncated buffer) are treated as roots of their own stacks.
    """
    by_key: dict[_SpanKey, Span] = {(s.pid, s.span_id): s for s in spans}
    selfs = self_seconds(spans)
    stacks: dict[str, int] = {}
    for span in spans:
        path = []
        node = span
        while True:
            path.append(_frame_name(node.name))
            if node.parent_id is None:
                break
            parent = by_key.get((node.pid, node.parent_id))
            if parent is None:
                break
            node = parent
        stack = ";".join(reversed(path))
        micros = round(selfs[(span.pid, span.span_id)] * 1e6)
        if micros > 0:
            stacks[stack] = stacks.get(stack, 0) + micros
    return stacks


def write_flamegraph(path: "str | Path", spans: Sequence[Span]) -> int:
    """Write collapsed-stack lines (sorted, newline-terminated); return count."""
    stacks = collapsed_stacks(spans)
    with open(path, "w", encoding="utf-8") as handle:
        for stack in sorted(stacks):
            handle.write(f"{stack} {stacks[stack]}\n")
    return len(stacks)


_LINE_PATTERN = re.compile(r"^\S+(;\S+)* [1-9][0-9]*$")


def leaf_attribution(lines: Iterable[str], spans: Sequence[Span]) -> float:
    """Fraction of traced root wall-clock attributed to collapsed-stack leaves."""
    attributed = 0.0
    for line in lines:
        line = line.strip()
        if line:
            attributed += int(line.rsplit(" ", 1)[1]) / 1e6
    traced = sum(span.duration for span in spans if span.parent_id is None)
    return attributed / traced if traced else 1.0


def validate_flamegraph(lines: Sequence[str], spans: Sequence[Span]) -> list[str]:
    """Structural oracle for collapsed-stack output; returns human-readable errors.

    Checks three invariants: every line matches the collapsed-stack grammar
    (``frame(;frame)* <positive-int>``), every stack root is the name of a
    root span actually present in the buffers, and at least 95% of traced
    root wall-clock is attributed to leaf frames.
    """
    errors: list[str] = []
    root_names = {
        _frame_name(span.name) for span in spans if span.parent_id is None
    }
    for number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line:
            continue
        if not _LINE_PATTERN.match(line):
            errors.append(f"line {number}: bad collapsed-stack grammar: {line!r}")
            continue
        root = line.split(";", 1)[0].split(" ", 1)[0]
        if root not in root_names:
            errors.append(
                f"line {number}: stack root {root!r} is not a root span "
                f"(roots: {sorted(root_names)})"
            )
    attributed = leaf_attribution(lines, spans)
    if attributed < 0.95:
        errors.append(
            f"only {attributed:.1%} of traced wall-clock attributed to leaf "
            f"frames (need >= 95%)"
        )
    return errors
