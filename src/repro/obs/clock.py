"""The sanctioned clocks.

Every timing decision in the tree routes through this module so that the
project has exactly one place where "what does a timestamp mean" is decided.
Lint rule REP110 (``raw-timing``) enforces this: raw ``time.perf_counter()``
and ``time.time()`` calls are forbidden outside ``repro.obs`` and the
StreamPU profiler.

``monotonic()`` is :func:`time.perf_counter`, which on Linux is
``CLOCK_MONOTONIC`` — a *system-wide* clock, so span timestamps recorded in
forked or spawned worker processes are directly comparable with timestamps
from the parent process.  That property is what lets the Chrome-trace
exporter interleave worker spans with engine spans on one timeline without
any cross-process clock synchronisation step.

``wall()`` exists for the few places that need a human-meaningful timestamp
(bench trajectory entries, JSONL event headers); it must never be used to
measure durations.
"""

import time

__all__ = ["monotonic", "monotonic_ns", "wall"]


def monotonic() -> float:
    """Seconds on a monotonic, system-wide clock; use for all durations."""
    return time.perf_counter()  # lint: ignore[raw-timing]


def monotonic_ns() -> int:
    """Nanoseconds on the same clock as :func:`monotonic`."""
    return time.perf_counter_ns()  # lint: ignore[raw-timing]


def wall() -> float:
    """Seconds since the epoch; for display only, never for durations."""
    return time.time()  # lint: ignore[raw-timing]
