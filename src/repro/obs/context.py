"""Observability configuration, ambient context, and the engine-facing facade.

Three layers, from outermost in:

* :class:`Observability` — what the :class:`~repro.engine.executor.CampaignEngine`
  holds.  Owns the session-lifetime :class:`~repro.obs.tracer.Tracer` and
  :class:`~repro.obs.metrics.MetricsRegistry` (or their null twins when
  disabled) and absorbs worker payloads.
* :class:`ObsConfig` — the tiny picklable on/off switch shipped to worker
  processes inside :class:`~repro.engine.batch.WorkUnit`.  A worker calls
  :meth:`ObsConfig.create_context` to build its own live tracer/registry,
  records into them, and returns the resulting :class:`ObsPayload`.
* the **ambient context** — a module-level :class:`threading.local` holding
  the active :class:`ObsContext`.  Instrumentation hooks deep in the core
  algorithms (:func:`counter_add` in ``binary_search``/``herad``/``packing``)
  read it via :func:`current` instead of threading an ``obs`` parameter
  through every call signature.  Thread-tier pool workers run in the same
  process but *different threads*, so the engine re-activates the context
  inside ``solve_unit`` rather than relying on inheritance.

The default everywhere is :data:`NULL_CONTEXT`: ``current()`` on a thread
that never activated anything returns it, and every operation on it is a
no-op — uninstrumented call sites pay one threading.local read and one
attribute check, nothing more.
"""

from __future__ import annotations

import threading
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field

from .metrics import NULL_METRICS, MetricsLike, MetricsRegistry, MetricsSnapshot
from .span import AttrValue, Span
from .tracer import NULL_TRACER, SpanHandle, Tracer, TracerLike

__all__ = [
    "ObsConfig",
    "ObsPayload",
    "ObsContext",
    "Observability",
    "NULL_OBSERVABILITY",
    "NULL_CONTEXT",
    "current",
    "activate",
    "counter_add",
    "histogram_observe",
]


@dataclass(frozen=True, slots=True)
class ObsConfig:
    """Picklable observability switches carried by work units."""

    trace: bool = False
    metrics: bool = False

    @property
    def enabled(self) -> bool:
        return self.trace or self.metrics

    def create_context(self) -> "ObsContext":
        """Build a live, local context for a worker process."""
        return ObsContext(
            tracer=Tracer() if self.trace else NULL_TRACER,
            metrics=MetricsRegistry() if self.metrics else NULL_METRICS,
        )


@dataclass(frozen=True, slots=True)
class ObsPayload:
    """Picklable record of everything a worker observed; shipped home in results."""

    spans: tuple[Span, ...] = ()
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)

    @property
    def empty(self) -> bool:
        return not self.spans and self.metrics.empty


@dataclass(frozen=True, slots=True)
class ObsContext:
    """A tracer + metrics pair; the unit of ambient activation."""

    tracer: TracerLike
    metrics: MetricsLike

    @property
    def active(self) -> bool:
        return self.tracer.enabled or self.metrics.enabled

    def span(self, name: str, category: str = "misc", **attrs: AttrValue) -> SpanHandle:
        return self.tracer.span(name, category, **attrs)

    def payload(self) -> ObsPayload:
        """Snapshot everything recorded so far into a picklable payload."""
        return ObsPayload(spans=self.tracer.collect(), metrics=self.metrics.snapshot())


NULL_CONTEXT = ObsContext(tracer=NULL_TRACER, metrics=NULL_METRICS)
"""The inert context every thread sees until something is activated."""


class _Ambient(threading.local):
    def __init__(self) -> None:
        self.context: ObsContext = NULL_CONTEXT


_AMBIENT = _Ambient()


def current() -> ObsContext:
    """The context active on this thread (``NULL_CONTEXT`` if none)."""
    return _AMBIENT.context


@contextmanager
def activate(context: ObsContext) -> Iterator[ObsContext]:
    """Make ``context`` ambient on this thread for the duration of the block."""
    prior = _AMBIENT.context
    _AMBIENT.context = context
    try:
        yield context
    finally:
        _AMBIENT.context = prior


def counter_add(name: str, value: float = 1.0) -> None:
    """Increment a counter on the ambient context (no-op when inert).

    This is *the* hook shape for core algorithms: one function call, one
    threading.local read, one no-op method call when observability is off.
    """
    _AMBIENT.context.metrics.add(name, value)


def histogram_observe(name: str, value: float) -> None:
    """Record a histogram observation on the ambient context."""
    _AMBIENT.context.metrics.observe(name, value)


class Observability:
    """Session-lifetime facade held by the campaign engine.

    Construct with an :class:`ObsConfig` (or nothing for fully-off).  The
    engine activates ``self.context()`` around campaign execution, ships
    ``self.worker_config()`` to process-tier workers, and feeds returned
    payloads to :meth:`absorb`.
    """

    def __init__(self, config: ObsConfig | None = None) -> None:
        self.config = config or ObsConfig()
        self.tracer: TracerLike = Tracer() if self.config.trace else NULL_TRACER
        self.metrics: MetricsLike = (
            MetricsRegistry() if self.config.metrics else NULL_METRICS
        )
        self._context = ObsContext(tracer=self.tracer, metrics=self.metrics)

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    def context(self) -> ObsContext:
        return self._context if self.enabled else NULL_CONTEXT

    def span(self, name: str, category: str = "misc", **attrs: AttrValue) -> SpanHandle:
        return self.tracer.span(name, category, **attrs)

    def worker_config(self) -> ObsConfig | None:
        """Config to stamp onto work units; ``None`` keeps units lightweight."""
        return self.config if self.enabled else None

    def absorb(self, payload: ObsPayload | None) -> None:
        """Fold a worker payload into the session tracer/registry."""
        if payload is None or payload.empty:
            return
        if payload.spans:
            self.tracer.absorb(payload.spans)
        if not payload.metrics.empty:
            self.metrics.merge(payload.metrics)

    def spans(self) -> tuple[Span, ...]:
        return self.tracer.collect()


NULL_OBSERVABILITY = Observability()
"""Shared fully-disabled facade for engines constructed without ``obs=``."""
