"""Deterministic log-bucket quantile sketches with exact cross-process merge.

:class:`HistogramStats` carries count/total/min/max — enough for means, not
tails.  This module adds a DDSketch-style log-bucket histogram so the obs
layer can answer p50/p90/p99 questions, under the same contract as the rest
of the registry: *merging worker snapshots loses nothing*.

Design constraints, in order:

1. **Deterministic bucketing.**  The bucket of a value is a pure function of
   the value and ``alpha`` (``ceil(log(v) / log(gamma))`` with
   ``gamma = (1 + alpha) / (1 - alpha)``).  Same observation, same bucket, in
   every process on the machine.

2. **Exact, order-independent merge.**  A sketch is a bag of integer bucket
   counts plus exact min/max.  Merge is bucket-wise integer addition — it
   commutes and associates, so a ``--jobs 4`` campaign whose workers sketch
   disjoint slices of an observation stream merges to the *bitwise-identical*
   snapshot a serial run produces.  Deliberately absent: a float ``total``
   (float summation is order-dependent; :class:`HistogramStats` already
   carries one for means).

3. **Quantiles at read time.**  ``quantile(q)`` is a pure function of the
   merged bucket counts, so merged-then-queried equals queried-on-the-whole-
   stream by construction — the property tests in ``tests/obs/test_sketch.py``
   pin this.

Within a bucket the reported value is the geometric midpoint, giving a
relative error of at most ``alpha`` for positive observations.  Zero and
negative observations (latencies are never negative, but counters of work
sizes can be zero) collapse into a dedicated zero bucket reported as ``0.0``.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from dataclasses import dataclass, field

__all__ = [
    "DEFAULT_ALPHA",
    "SKETCH_VERSION",
    "SketchSnapshot",
    "SketchBuilder",
    "bucket_index",
    "bucket_value",
    "sketch_of",
]

DEFAULT_ALPHA = 0.01
"""Default relative accuracy: quantiles are exact to within 1%."""

SKETCH_VERSION = 1
"""Bucketing-scheme version stamped into exported artifacts (BENCH files)."""


def _gamma(alpha: float) -> float:
    return (1.0 + alpha) / (1.0 - alpha)


def bucket_index(value: float, alpha: float = DEFAULT_ALPHA) -> int:
    """Bucket of a positive ``value``: deterministic, monotone in ``value``."""
    return math.ceil(math.log(value) / math.log(_gamma(alpha)))


def bucket_value(index: int, alpha: float = DEFAULT_ALPHA) -> float:
    """Representative value of bucket ``index``: the geometric midpoint."""
    gamma = _gamma(alpha)
    return (gamma**index) * 2.0 / (gamma + 1.0)


@dataclass(frozen=True, slots=True)
class SketchSnapshot:
    """Immutable, picklable log-bucket sketch.

    ``buckets`` maps bucket index to an integer observation count, stored as
    a tuple sorted by index so identical state pickles to identical bytes.
    ``minimum``/``maximum`` are the exact extremes (min/max merge exactly),
    used to clamp quantile answers to the observed range.
    """

    alpha: float = DEFAULT_ALPHA
    count: int = 0
    zero_count: int = 0
    minimum: float = math.inf
    maximum: float = -math.inf
    buckets: tuple[tuple[int, int], ...] = ()

    @property
    def empty(self) -> bool:
        return self.count == 0

    def merged(self, other: "SketchSnapshot") -> "SketchSnapshot":
        """Exact merge: bucket-wise integer sum. Commutative and associative."""
        if other.count == 0:
            return self
        if self.count == 0:
            return other
        if self.alpha != other.alpha:
            raise ValueError(
                f"cannot merge sketches with different alpha: "
                f"{self.alpha} vs {other.alpha}"
            )
        combined = dict(self.buckets)
        for index, bucket_count in other.buckets:
            combined[index] = combined.get(index, 0) + bucket_count
        return SketchSnapshot(
            alpha=self.alpha,
            count=self.count + other.count,
            zero_count=self.zero_count + other.zero_count,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
            buckets=tuple(sorted(combined.items())),
        )

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile, a pure function of the merged bucket counts.

        ``q`` is clamped to [0, 1].  Returns 0.0 for an empty sketch.
        """
        if self.count == 0:
            return 0.0
        q = min(1.0, max(0.0, q))
        rank = max(1, math.ceil(q * self.count))
        seen = self.zero_count
        if rank <= seen:
            return self._clamp(0.0)
        for index, bucket_count in self.buckets:
            seen += bucket_count
            if rank <= seen:
                return self._clamp(bucket_value(index, self.alpha))
        return self.maximum

    def _clamp(self, value: float) -> float:
        return min(self.maximum, max(self.minimum, value))

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p90(self) -> float:
        return self.quantile(0.90)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)


@dataclass(slots=True)
class SketchBuilder:
    """Mutable accumulator behind :class:`SketchSnapshot`.

    Not thread-safe on its own: :class:`~repro.obs.metrics.MetricsRegistry`
    guards it with the registry lock, the same discipline as every other
    metric family.
    """

    alpha: float = DEFAULT_ALPHA
    count: int = 0
    zero_count: int = 0
    minimum: float = math.inf
    maximum: float = -math.inf
    buckets: dict[int, int] = field(default_factory=dict)
    _log_gamma: float = 0.0

    def __post_init__(self) -> None:
        self._log_gamma = math.log(_gamma(self.alpha))

    def observe(self, value: float) -> None:
        self.count += 1
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        if value <= 0.0:
            self.zero_count += 1
            return
        index = math.ceil(math.log(value) / self._log_gamma)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def absorb(self, snapshot: SketchSnapshot) -> None:
        """Fold a worker snapshot in (bucket-wise integer sum)."""
        if snapshot.count == 0:
            return
        if snapshot.alpha != self.alpha:
            raise ValueError(
                f"cannot merge sketches with different alpha: "
                f"{self.alpha} vs {snapshot.alpha}"
            )
        self.count += snapshot.count
        self.zero_count += snapshot.zero_count
        self.minimum = min(self.minimum, snapshot.minimum)
        self.maximum = max(self.maximum, snapshot.maximum)
        for index, bucket_count in snapshot.buckets:
            self.buckets[index] = self.buckets.get(index, 0) + bucket_count

    def snapshot(self) -> SketchSnapshot:
        return SketchSnapshot(
            alpha=self.alpha,
            count=self.count,
            zero_count=self.zero_count,
            minimum=self.minimum,
            maximum=self.maximum,
            buckets=tuple(sorted(self.buckets.items())),
        )


def sketch_of(values: Iterable[float], alpha: float = DEFAULT_ALPHA) -> SketchSnapshot:
    """One-shot sketch of a finished value stream (bench scripts, sim reports)."""
    builder = SketchBuilder(alpha=alpha)
    for value in values:
        builder.observe(value)
    return builder.snapshot()
