"""Span-based tracer with per-thread buffers.

Concurrency model
-----------------
Thread-tier campaigns record spans from multiple pool threads at once.
Rather than serialising every span append through one lock (which would put
a lock acquisition on the solve hot path), each thread gets its own buffer
and span stack via :class:`threading.local`; the only locked operation is
registering a brand-new thread's buffer, which happens once per thread.
``collect()`` merges all buffers into one deterministic order.

Process-tier campaigns can't share a tracer at all: each worker process
builds its own :class:`Tracer` (from the picklable
:class:`~repro.obs.context.ObsConfig` carried by the work unit), records
spans, and returns them inside the unit result.  The engine then feeds them
to :meth:`Tracer.absorb` on the parent tracer.  Because the monotonic clock
is system-wide on Linux, absorbed spans interleave correctly with local
ones when sorted by start time.

Span ids are allocated from a single :class:`itertools.count`; ``next()`` on
a count is atomic under the GIL, so ids are unique across threads without a
lock.  Worker ids restart per work unit (pool workers rebuild their tracer
for every unit), so :meth:`Tracer.absorb` remaps each incoming forest into
the session counter — after absorption, (pid, span_id) is globally unique
and ``parent_id`` only ever refers to a span with the same pid.
"""

from __future__ import annotations

import itertools
import os
import threading
from collections.abc import Iterable, Iterator
from dataclasses import replace
from types import TracebackType
from typing import Protocol

from .clock import monotonic as _clock
from .span import AttrValue, Span

__all__ = ["SpanHandle", "TracerLike", "Tracer", "NullTracer", "NULL_TRACER"]


class SpanHandle(Protocol):
    """Context manager returned by ``TracerLike.span``."""

    def __enter__(self) -> None: ...

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None: ...


class TracerLike(Protocol):
    """Structural interface shared by :class:`Tracer` and :class:`NullTracer`."""

    enabled: bool

    def span(self, name: str, category: str = ..., **attrs: AttrValue) -> SpanHandle: ...

    def collect(self) -> tuple[Span, ...]: ...

    def absorb(self, spans: Iterable[Span]) -> None: ...


class _ThreadState(threading.local):
    """Per-thread span stack and buffer; created lazily on first use."""

    def __init__(self) -> None:
        self.stack: list[int] = []
        self.buffer: list[Span] | None = None


class _SpanScope:
    """Open span: records start on ``__enter__`` and the Span on ``__exit__``.

    Hand-rolled rather than ``@contextmanager`` because a generator frame
    per span is measurably heavier than a tiny object, and spans wrap hot
    engine paths.
    """

    __slots__ = ("_tracer", "_name", "_category", "_attrs", "_start", "_span_id", "_parent_id", "_depth")

    def __init__(self, tracer: Tracer, name: str, category: str, attrs: tuple[tuple[str, AttrValue], ...]) -> None:
        self._tracer = tracer
        self._name = name
        self._category = category
        self._attrs = attrs
        self._start = 0.0
        self._span_id = 0
        self._parent_id: int | None = None
        self._depth = 0

    def __enter__(self) -> None:
        tracer = self._tracer
        state = tracer._state
        stack = state.stack
        self._parent_id = stack[-1] if stack else None
        self._depth = len(stack)
        self._span_id = next(tracer._ids)
        stack.append(self._span_id)
        # Start the clock last so setup cost stays outside the span.
        self._start = _clock()

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        end = _clock()
        tracer = self._tracer
        state = tracer._state
        state.stack.pop()
        buffer = state.buffer
        if buffer is None:
            buffer = tracer._register_buffer()
        buffer.append(
            Span(
                name=self._name,
                category=self._category,
                start=self._start,
                end=end,
                pid=tracer._pid,
                tid=threading.get_ident(),
                span_id=self._span_id,
                parent_id=self._parent_id,
                depth=self._depth,
                attrs=self._attrs,
            )
        )


class Tracer:
    """Collects :class:`Span` records from any number of threads."""

    enabled = True

    def __init__(self) -> None:
        self._pid = os.getpid()
        self._ids = itertools.count(1)
        self._state = _ThreadState()
        self._lock = threading.Lock()
        self._buffers: list[list[Span]] = []
        self._foreign: list[Span] = []

    def _register_buffer(self) -> list[Span]:
        buffer: list[Span] = []
        self._state.buffer = buffer
        with self._lock:
            self._buffers.append(buffer)
        return buffer

    def span(self, name: str, category: str = "misc", **attrs: AttrValue) -> _SpanScope:
        """Open a span; use as ``with tracer.span("solve", strategy=s): ...``."""
        items = tuple(sorted(attrs.items())) if attrs else ()
        return _SpanScope(self, name, category, items)

    def absorb(self, spans: Iterable[Span]) -> None:
        """Adopt spans recorded by another tracer (typically a worker process).

        Foreign ids are remapped into this tracer's counter: a reused pool
        worker rebuilds its tracer per work unit, so its ids restart at 1
        and ``(pid, span_id)`` would collide across payloads — which would
        silently corrupt self-time attribution.  One absorb call is one
        self-contained forest, so rewriting ids and the parent links that
        point at them preserves nesting exactly; a ``parent_id`` whose span
        was not collected becomes a root, matching how the profiler treats
        truncated buffers.
        """
        batch = list(spans)
        mapping = {span.span_id: next(self._ids) for span in batch}
        remapped = [
            replace(
                span,
                span_id=mapping[span.span_id],
                parent_id=(
                    mapping.get(span.parent_id)
                    if span.parent_id is not None
                    else None
                ),
            )
            for span in batch
        ]
        with self._lock:
            self._foreign.extend(remapped)

    def collect(self) -> tuple[Span, ...]:
        """Merge all buffers into one deterministically-ordered tuple.

        Sorted by ``(start, depth, pid, span_id)``: start time first so the
        timeline reads chronologically, depth second so an enclosing span
        sorts before children that started the same instant.
        """
        with self._lock:
            merged: list[Span] = []
            for buffer in self._buffers:
                merged.extend(buffer)
            merged.extend(self._foreign)
        merged.sort(key=lambda s: (s.start, s.depth, s.pid, s.span_id))
        return tuple(merged)

    def clear(self) -> None:
        """Drop all recorded spans (buffers stay registered)."""
        with self._lock:
            for buffer in self._buffers:
                buffer.clear()
            self._foreign.clear()


class _NullScope:
    """Shared no-op context manager; a single instance serves every call."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        return None


_NULL_SCOPE = _NullScope()


class NullTracer:
    """Zero-overhead tracer: every span is the same shared no-op scope."""

    enabled = False

    def span(self, name: str, category: str = "misc", **attrs: AttrValue) -> _NullScope:
        return _NULL_SCOPE

    def collect(self) -> tuple[Span, ...]:
        return ()

    def absorb(self, spans: Iterable[Span]) -> None:
        return None

    def clear(self) -> None:
        return None


NULL_TRACER = NullTracer()
"""Module-level singleton used wherever tracing is disabled."""


def _iter_buffers_for_test(tracer: Tracer) -> Iterator[int]:
    """Buffer sizes, for white-box tests of the per-thread buffer scheme."""
    with tracer._lock:
        for buffer in tracer._buffers:
            yield len(buffer)
