"""Observability: structured tracing, metrics, and run reports.

The paper's evaluation is entirely *measured* behaviour — scheduling times,
periods, throughput — so the reproduction's own runtime must be measurable
too.  This package provides the project's single observability surface:

* :mod:`~repro.obs.clock` — the sanctioned monotonic/wall clocks.  Lint rule
  REP110 forbids raw ``time.perf_counter()`` / ``time.time()`` everywhere
  else, so every timing decision is auditable in one module.
* :class:`~repro.obs.tracer.Tracer` / :class:`~repro.obs.span.Span` — a
  span-based tracer with explicit parent–child nesting, per-thread buffers
  merged at collection, and picklable spans so process-tier workers can ship
  their spans home inside work-unit results.
* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges, and
  histograms with picklable, mergeable snapshots (cross-process aggregation
  is a tested exactness guarantee, not best-effort).
* :mod:`~repro.obs.context` — the ambient per-worker observability context
  (:func:`~repro.obs.context.current` / :func:`~repro.obs.context.activate`)
  plus the :class:`~repro.obs.context.Observability` facade the campaign
  engine carries.
* :mod:`~repro.obs.export` — Chrome trace-event JSON (loadable in
  ``chrome://tracing`` / Perfetto) and JSONL event sinks, with a schema
  validator shared by tests and the CI trace smoke.
* :class:`~repro.obs.report.RunReport` — the human-readable end-of-run
  summary (top time sinks, memo hit rate, failure counts) the CLI prints
  under ``--metrics``.

**Determinism contract** (DESIGN.md §10): observability never touches the
result path.  Spans and counters are recorded *about* solves, never consulted
*by* them, so a campaign traced at ``--jobs 8`` is bitwise identical to an
untraced serial run — a regression-tested guarantee.  The default
implementations (:data:`~repro.obs.tracer.NULL_TRACER`,
:data:`~repro.obs.metrics.NULL_METRICS`) are no-ops cheap enough to leave
permanently inlined in the hot paths.
"""

from .clock import monotonic, monotonic_ns, wall
from .context import (
    NULL_CONTEXT,
    ObsConfig,
    ObsContext,
    ObsPayload,
    Observability,
    activate,
    counter_add,
    current,
)
from .export import (
    spans_to_chrome_events,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_events_jsonl,
)
from .metrics import (
    NULL_METRICS,
    HistogramStats,
    MetricsLike,
    MetricsRegistry,
    MetricsSnapshot,
    NullMetrics,
)
from .profile import (
    FrameStat,
    aggregate_self,
    collapsed_stacks,
    leaf_attribution,
    self_seconds,
    validate_flamegraph,
    write_flamegraph,
)
from .report import RunReport, SpanSink, WorkerCost
from .sketch import (
    DEFAULT_ALPHA,
    SKETCH_VERSION,
    SketchBuilder,
    SketchSnapshot,
    sketch_of,
)
from .span import AttrValue, Span
from .tracer import NULL_TRACER, NullTracer, Tracer, TracerLike

__all__ = [
    "monotonic",
    "monotonic_ns",
    "wall",
    "AttrValue",
    "Span",
    "Tracer",
    "NullTracer",
    "TracerLike",
    "NULL_TRACER",
    "HistogramStats",
    "MetricsSnapshot",
    "MetricsRegistry",
    "NullMetrics",
    "MetricsLike",
    "NULL_METRICS",
    "ObsConfig",
    "ObsContext",
    "ObsPayload",
    "Observability",
    "NULL_CONTEXT",
    "current",
    "activate",
    "counter_add",
    "spans_to_chrome_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_events_jsonl",
    "validate_chrome_trace",
    "RunReport",
    "SpanSink",
    "WorkerCost",
    "DEFAULT_ALPHA",
    "SKETCH_VERSION",
    "SketchBuilder",
    "SketchSnapshot",
    "sketch_of",
    "FrameStat",
    "aggregate_self",
    "collapsed_stacks",
    "leaf_attribution",
    "self_seconds",
    "validate_flamegraph",
    "write_flamegraph",
]
