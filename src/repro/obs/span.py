"""The span record: one completed timed region.

A :class:`Span` is deliberately a frozen, slotted, fully-picklable value:
process-tier workers record spans locally and ship them back to the engine
inside their work-unit results, so the record must survive a round trip
through :mod:`pickle` and must not hold references into worker-local state.

Attributes are stored as a sorted tuple of ``(key, value)`` pairs rather
than a dict so that spans are hashable and their pickled form is
deterministic — two runs that record the same spans produce byte-identical
payloads, which keeps the traced-vs-untraced determinism test honest.
"""

from __future__ import annotations

from dataclasses import dataclass

AttrValue = str | int | float | bool
"""Permitted span-attribute value types (must be JSON-representable)."""

__all__ = ["AttrValue", "Span"]


@dataclass(frozen=True, slots=True)
class Span:
    """A completed timed region on one thread of one process.

    ``parent_id`` encodes explicit nesting: it is the ``span_id`` of the
    span that was open on the same thread when this one started, or ``None``
    for a root span.  ``depth`` is the nesting depth at entry (roots are 0);
    the Chrome-trace exporter uses it to order begin/end events that share a
    timestamp.
    """

    name: str
    category: str
    start: float
    end: float
    pid: int
    tid: int
    span_id: int
    parent_id: int | None
    depth: int
    attrs: tuple[tuple[str, AttrValue], ...] = ()

    @property
    def duration(self) -> float:
        """Span length in seconds on the monotonic clock."""
        return self.end - self.start

    def attr_dict(self) -> dict[str, AttrValue]:
        """Attributes as a plain dict (for exporters and reports)."""
        return dict(self.attrs)
