"""Paper-vs-reproduction comparison helpers.

Turns experiment results into explicit comparison rows against the paper's
published numbers (``paper_data``), quantifying the reproduction quality
that EXPERIMENTS.md reports: absolute deltas for Table I statistics and
Table II periods/throughputs, plus summary verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass

from .paper_data import PAPER_TABLE1, PAPER_TABLE2
from .table1 import Table1Result
from .table2 import Table2Result

__all__ = [
    "Table1Comparison",
    "compare_table1",
    "Table2Comparison",
    "compare_table2",
]


@dataclass(frozen=True, slots=True)
class Table1Comparison:
    """One scenario/strategy comparison against the paper's Table I."""

    resources: str
    stateless_ratio: float
    strategy: str
    percent_optimal: float
    paper_percent_optimal: float
    avg_slowdown: float
    paper_avg_slowdown: float
    avg_cores: float
    paper_avg_cores: float

    @property
    def percent_optimal_delta(self) -> float:
        """Reproduction minus paper, percentage points."""
        return self.percent_optimal - self.paper_percent_optimal

    @property
    def avg_slowdown_delta(self) -> float:
        """Reproduction minus paper, average slowdown."""
        return self.avg_slowdown - self.paper_avg_slowdown


def compare_table1(result: Table1Result) -> list[Table1Comparison]:
    """Match every reproduced Table I cell with the paper's value."""
    rows = []
    for scenario in result.scenarios:
        for entry in PAPER_TABLE1:
            if (
                entry.resources != scenario.resources
                or entry.stateless_ratio != scenario.stateless_ratio
                or entry.strategy not in scenario.stats
            ):
                continue
            stats = scenario.stats[entry.strategy]
            rows.append(
                Table1Comparison(
                    resources=str(scenario.resources),
                    stateless_ratio=scenario.stateless_ratio,
                    strategy=entry.strategy,
                    percent_optimal=stats.percent_optimal,
                    paper_percent_optimal=entry.percent_optimal,
                    avg_slowdown=stats.avg_slowdown,
                    paper_avg_slowdown=entry.avg_slowdown,
                    avg_cores=stats.avg_big_used + stats.avg_little_used,
                    paper_avg_cores=entry.avg_big_used + entry.avg_little_used,
                )
            )
    return rows


@dataclass(frozen=True, slots=True)
class Table2Comparison:
    """One DVB-S2 configuration/strategy comparison against Table II."""

    platform: str
    resources: str
    strategy: str
    period_us: float
    paper_period_us: float
    sim_mbps: float
    paper_sim_mbps: float
    real_mbps: float
    paper_real_mbps: float

    @property
    def period_matches(self) -> bool:
        """The expected period reproduces the paper's (0.1 % tolerance)."""
        return abs(self.period_us - self.paper_period_us) <= max(
            0.001 * self.paper_period_us, 0.2
        )

    @property
    def real_gap_percent(self) -> float:
        """Relative difference of the measured throughput vs the paper's."""
        if self.paper_real_mbps <= 0:
            return float("inf")
        return (self.real_mbps / self.paper_real_mbps - 1.0) * 100.0


def compare_table2(result: Table2Result) -> list[Table2Comparison]:
    """Match every reproduced Table II row with the paper's."""
    rows = []
    for row in result.rows:
        for paper in PAPER_TABLE2:
            if (
                paper.platform != row.platform
                or paper.resources != row.resources
                or paper.strategy != row.strategy
            ):
                continue
            rows.append(
                Table2Comparison(
                    platform=row.platform,
                    resources=str(row.resources),
                    strategy=row.strategy,
                    period_us=row.period_us,
                    paper_period_us=paper.period_us,
                    sim_mbps=row.sim_mbps,
                    paper_sim_mbps=paper.sim_mbps,
                    real_mbps=row.real_mbps,
                    paper_real_mbps=paper.real_mbps,
                )
            )
    return rows


def summarize_table2(comparisons: list[Table2Comparison]) -> str:
    """One-paragraph verdict over the Table II comparisons."""
    if not comparisons:
        return "no comparable rows"
    matched = sum(c.period_matches for c in comparisons)
    gaps = [abs(c.real_gap_percent) for c in comparisons]
    return (
        f"{matched}/{len(comparisons)} expected periods reproduce the "
        f"paper's exactly; measured-throughput deviation vs the paper's "
        f"hardware averages {sum(gaps) / len(gaps):.1f}% "
        f"(max {max(gaps):.1f}%)"
    )


__all__.append("summarize_table2")
