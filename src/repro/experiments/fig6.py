"""Fig. 6 — summary of the strategies' advantages and limitations.

The paper closes with a qualitative chart: schedule quality (period), core
usage, algorithm execution time, and the gap between real and best possible
throughput, per strategy.  This driver computes quantitative stand-ins for
each axis from the other experiments:

* *period quality* — average slowdown across the Table I scenarios;
* *core usage* — average extra cores vs HeRAD across the same scenarios;
* *algorithm cost* — mean scheduling time on the paper's default scenario;
* *real-vs-best throughput* — each strategy's measured throughput relative
  to HeRAD's expected (best theoretical) throughput, averaged over the four
  DVB-S2 configurations (the paper quotes 2CATAC ~9 % and FERTAC ~15 %
  below, with HeRAD itself ~10 % off its own target).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..analysis.tables import render_table
from ..core.registry import PAPER_ORDER, get_info
from ..core.types import Resources
from ..engine import CampaignEngine
from .common import run_campaign, time_strategy
from .table2 import Table2Result
from .table2 import run as run_table2

__all__ = ["Fig6Result", "run", "render"]


@dataclass(frozen=True)
class Fig6Row:
    """One strategy's summary axes."""

    strategy: str
    avg_slowdown: float
    avg_extra_cores: float
    mean_time_us: float
    real_vs_best_percent: float


@dataclass(frozen=True)
class Fig6Result:
    """The Fig. 6 summary."""

    rows: tuple[Fig6Row, ...]


def run(
    num_chains: int = 100,
    budgets: Sequence[Resources] = (Resources(10, 10),),
    stateless_ratios: Sequence[float] = (0.2, 0.5, 0.8),
    table2: Table2Result | None = None,
    strategies: Sequence[str] = PAPER_ORDER,
    seed: int = 0,
    jobs: int | None = None,
    certify: bool = False,
    engine: "CampaignEngine | None" = None,
) -> Fig6Result:
    """Compute the summary axes.

    Args:
        num_chains: campaign size per scenario for the quality axes.
        budgets: budgets averaged over for the quality axes.
        stateless_ratios: SR values averaged over.
        table2: reuse an existing Table II result (recomputed otherwise).
        strategies: strategies to summarize.
        seed: campaign seed.
        certify: audit every solution with the certificate checker.
        engine: campaign engine override — the CLI passes a resilient /
            journaled engine here for ``--resume``/``--retries``/``--timeout``.
    """
    slowdowns = {name: [] for name in strategies}
    extra = {name: [] for name in strategies}
    for resources in budgets:
        for sr in stateless_ratios:
            campaign = run_campaign(
                resources, sr, num_chains=num_chains, seed=seed,
                strategies=list(strategies), jobs=jobs, certify=certify,
                engine=engine,
            )
            opt = campaign.records["herad"]
            for name in strategies:
                rec = campaign.records[name]
                slowdowns[name].append(float(np.mean(rec.periods / opt.periods)))
                extra[name].append(
                    float(
                        np.mean(
                            (rec.big_used + rec.little_used)
                            - (opt.big_used + opt.little_used)
                        )
                    )
                )

    t2 = table2 if table2 is not None else run_table2(strategies=strategies)
    best_expected: dict[tuple[str, Resources], float] = {}
    for row in t2.rows:
        key = (row.platform, row.resources)
        if row.strategy == "herad":
            best_expected[key] = row.sim_mbps
    gaps = {name: [] for name in strategies}
    for row in t2.rows:
        best = best_expected.get((row.platform, row.resources))
        if best:
            gaps[row.strategy].append((1.0 - row.real_mbps / best) * 100.0)

    rows = []
    for name in strategies:
        timing = time_strategy(name, Resources(10, 10), 0.5, 20, num_chains=20)
        rows.append(
            Fig6Row(
                strategy=name,
                avg_slowdown=float(np.mean(slowdowns[name])),
                avg_extra_cores=float(np.mean(extra[name])),
                mean_time_us=timing.mean_microseconds,
                real_vs_best_percent=float(np.mean(gaps[name]))
                if gaps[name]
                else float("nan"),
            )
        )
    return Fig6Result(rows=tuple(rows))


def render(result: Fig6Result) -> str:
    """Render the summary table."""
    rows = [
        [
            get_info(r.strategy).display_name,
            f"{r.avg_slowdown:.3f}",
            f"{r.avg_extra_cores:+.2f}",
            f"{r.mean_time_us:,.0f}",
            f"{r.real_vs_best_percent:.1f}%",
        ]
        for r in result.rows
    ]
    return render_table(
        [
            "Strategy",
            "avg slowdown (Table I axis)",
            "avg extra cores vs HeRAD",
            "sched. time (us, n=20, R=(10,10))",
            "real vs best-theoretical gap (DVB-S2)",
        ],
        rows,
        title=(
            "Fig. 6 summary — paper reports: HeRAD optimal periods / fewest "
            "cores / highest cost; 2CATAC near-optimal, ~9% real gap; "
            "FERTAC cheapest, ~15% real gap; OTAC single-type only"
        ),
    )
