"""Experiment drivers — one module per paper table/figure.

Every driver exposes ``run(...) -> <Result>`` and ``render(result) -> str``;
the CLI (``python -m repro``) wires them to the command line.  See
DESIGN.md §4 for the experiment-to-module index.
"""

from . import ablation, fig1, fig2, fig3, fig4, fig5, fig6, io, table1, table2, table3
from .io import load_json, result_to_dict, save_json
from .common import (
    PAPER_NUM_CHAINS,
    PAPER_STATELESS_RATIOS,
    CampaignResult,
    StrategyRecord,
    TimingPoint,
    run_campaign,
    time_strategy,
)

__all__ = [
    "ablation",
    "table1",
    "table2",
    "table3",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "run_campaign",
    "time_strategy",
    "CampaignResult",
    "StrategyRecord",
    "TimingPoint",
    "PAPER_NUM_CHAINS",
    "PAPER_STATELESS_RATIOS",
    "io",
    "save_json",
    "load_json",
    "result_to_dict",
]
