"""Fig. 2 — heatmaps of core-usage differences between FERTAC and HeRAD.

The paper analyzes R = (10B, 10L), SR = 0.5 (where FERTAC reaches the
optimum 51.2 % of the time) and shows, for each ``(Δ big, Δ little)`` pair,
the percentage of chains where FERTAC used that many more (or fewer) cores
than HeRAD — over all chains (Fig. 2a) and over only the chains where FERTAC
found a minimal period (Fig. 2b).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.heatmap import UsageHeatmap, usage_heatmap
from ..analysis.slowdown import OPTIMAL_TOLERANCE
from ..core.types import Resources
from ..engine import CampaignEngine
from .common import run_campaign

__all__ = ["Fig2Result", "run", "render"]


@dataclass(frozen=True)
class Fig2Result:
    """The two heatmaps of Fig. 2 plus headline shares."""

    resources: Resources
    stateless_ratio: float
    strategy: str
    all_results: UsageHeatmap
    optimal_only: UsageHeatmap
    percent_optimal: float


def run(
    num_chains: int = 1000,
    resources: Resources = Resources(10, 10),
    stateless_ratio: float = 0.5,
    strategy: str = "fertac",
    seed: int = 0,
    jobs: int | None = None,
    certify: bool = False,
    engine: "CampaignEngine | None" = None,
) -> Fig2Result:
    """Compute the Fig. 2 heatmaps.

    Args:
        num_chains: campaign size (paper: 1000).
        resources: scenario budget (paper: (10, 10)).
        stateless_ratio: scenario SR (paper: 0.5).
        strategy: strategy compared against HeRAD (paper: FERTAC).
        seed: campaign seed.
        jobs: campaign-engine worker count (None: all cores).
        certify: audit every solution with the certificate checker.
        engine: campaign engine override — the CLI passes a resilient /
            journaled engine here for ``--resume``/``--retries``/``--timeout``.
    """
    campaign = run_campaign(
        resources,
        stateless_ratio,
        num_chains=num_chains,
        strategies=["herad", strategy],
        seed=seed,
        jobs=jobs,
        certify=certify,
        engine=engine,
    )
    rec = campaign.records[strategy]
    opt = campaign.records["herad"]
    ratios = rec.periods / opt.periods
    optimal_mask = ratios <= 1.0 + OPTIMAL_TOLERANCE

    return Fig2Result(
        resources=resources,
        stateless_ratio=stateless_ratio,
        strategy=strategy,
        all_results=usage_heatmap(
            rec.big_used, rec.little_used, opt.big_used, opt.little_used
        ),
        optimal_only=usage_heatmap(
            rec.big_used,
            rec.little_used,
            opt.big_used,
            opt.little_used,
            mask=optimal_mask,
            # The paper's Fig. 2b percentages keep all chains as denominator.
            population=num_chains,
        ),
        percent_optimal=float(np.mean(optimal_mask) * 100.0),
    )


def render(result: Fig2Result) -> str:
    """Render both heatmaps and the paper's headline shares."""
    blocks = [
        f"Fig. 2 — {result.strategy.upper()} vs HeRAD core usage, "
        f"R={result.resources}, SR={result.stateless_ratio} "
        f"({result.percent_optimal:.1f}% optimal periods; paper: 51.2%)",
        "",
        "(a) All results (% of chains per (Δ big, Δ little) cell):",
        result.all_results.render(),
        f"  at most 1 extra core: {result.all_results.share_within_extra_cores(1):.1f}% "
        "(paper: 59.0%)",
        f"  at most 2 extra cores: {result.all_results.share_within_extra_cores(2):.1f}% "
        "(paper: 83.1%)",
        "",
        "(b) Only chains where the strategy reached the optimal period"
        " (percentages of ALL chains, as in the paper):",
        result.optimal_only.render(),
        f"  at most 1 extra core: {result.optimal_only.share_within_extra_cores(1):.1f}% "
        "(paper: 21.2%)",
        f"  at most 2 extra cores: {result.optimal_only.share_within_extra_cores(2):.1f}% "
        "(paper: 39.2%)",
    ]
    return "\n".join(blocks)
