"""Fig. 1 — cumulative distributions of slowdown ratios.

Fig. 1a zooms the CDFs into the slowdown interval [1, 1.5] for all nine
(budget, SR) scenarios; Fig. 1b shows the full range for R = (10B, 10L).
The driver reuses the Table I campaign and renders the step curves as ASCII
plots plus machine-readable checkpoints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..analysis.slowdown import SlowdownCdf, slowdown_cdf, slowdown_ratios
from ..analysis.tables import render_step_curves, render_table
from ..core.registry import PAPER_ORDER, get_info
from ..core.types import Resources
from ..engine import CampaignEngine
from ..platform.presets import SIMULATION_BUDGETS
from .common import PAPER_STATELESS_RATIOS, run_campaign

__all__ = ["Fig1Scenario", "Fig1Result", "run", "render"]


@dataclass(frozen=True)
class Fig1Scenario:
    """CDFs of one (resources, SR) scenario."""

    resources: Resources
    stateless_ratio: float
    cdfs: dict[str, SlowdownCdf]


@dataclass(frozen=True)
class Fig1Result:
    """All scenario CDFs of Fig. 1."""

    scenarios: tuple[Fig1Scenario, ...]
    num_chains: int


def run(
    num_chains: int = 1000,
    budgets: Sequence[Resources] = SIMULATION_BUDGETS,
    stateless_ratios: Sequence[float] = PAPER_STATELESS_RATIOS,
    seed: int = 0,
    jobs: int | None = None,
    certify: bool = False,
    engine: "CampaignEngine | None" = None,
) -> Fig1Result:
    """Compute the slowdown CDFs for every scenario.

    Campaigns identical to Table I's (same seeds) replay from the engine's
    memo cache when both drivers run in one process (e.g. ``repro all``).
    An explicit ``engine`` (the CLI's resilient/journaled engine) is
    forwarded to every campaign.
    """
    scenarios = []
    for resources in budgets:
        for sr in stateless_ratios:
            campaign = run_campaign(
                resources, sr, num_chains=num_chains, seed=seed, jobs=jobs,
                certify=certify, engine=engine,
            )
            optimal = campaign.optimal_periods
            cdfs = {
                name: slowdown_cdf(slowdown_ratios(rec.periods, optimal))
                for name, rec in campaign.records.items()
            }
            scenarios.append(
                Fig1Scenario(resources=resources, stateless_ratio=sr, cdfs=cdfs)
            )
    return Fig1Result(scenarios=tuple(scenarios), num_chains=num_chains)


def render(
    result: Fig1Result,
    zoom: tuple[float, float] = (1.0, 1.5),
    full_range_budget: Resources = Resources(10, 10),
) -> str:
    """Render Fig. 1a (zoomed CDFs) and Fig. 1b (full range) as text."""
    blocks: list[str] = []
    for scenario in result.scenarios:
        curves = {
            get_info(name).display_name: (
                scenario.cdfs[name].values,
                scenario.cdfs[name].cumulative,
            )
            for name in PAPER_ORDER
            if name in scenario.cdfs
        }
        blocks.append(
            f"Fig. 1a — R={scenario.resources}, SR={scenario.stateless_ratio}"
        )
        blocks.append(render_step_curves(curves, zoom))

        rows = [
            [
                get_info(name).display_name,
                f"{scenario.cdfs[name].fraction_optimal * 100:.1f}%",
                f"{scenario.cdfs[name].at(1.1) * 100:.1f}%",
                f"{scenario.cdfs[name].at(1.5) * 100:.1f}%",
            ]
            for name in PAPER_ORDER
            if name in scenario.cdfs
        ]
        blocks.append(
            render_table(
                ["Strategy", "<= 1.0 (optimal)", "<= 1.1", "<= 1.5"],
                rows,
                title="CDF checkpoints",
            )
        )
        blocks.append("")

    # Fig. 1b: full slowdown interval for the balanced budget.
    for scenario in result.scenarios:
        if scenario.resources != full_range_budget:
            continue
        hi = max(
            float(cdf.values.max()) for cdf in scenario.cdfs.values()
        )
        curves = {
            get_info(name).display_name: (
                scenario.cdfs[name].values,
                scenario.cdfs[name].cumulative,
            )
            for name in PAPER_ORDER
            if name in scenario.cdfs
        }
        blocks.append(
            f"Fig. 1b — full range, R={scenario.resources}, "
            f"SR={scenario.stateless_ratio}"
        )
        blocks.append(render_step_curves(curves, (1.0, hi * 1.02)))
        blocks.append("")
    return "\n".join(blocks)
