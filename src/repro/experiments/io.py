"""Result serialization: save any experiment result as JSON.

The experiment drivers return frozen dataclasses containing NumPy arrays,
``Resources``, ``CoreType``, stages and solutions.  :func:`result_to_dict`
converts any of them into plain JSON-compatible structures, and
:func:`save_json` / :func:`load_json` round-trip them to disk, so campaign
outputs can be archived and compared across machines (the workflow behind
EXPERIMENTS.md).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any

import numpy as np

from ..core.solution import Solution
from ..core.stage import Stage
from ..core.types import CoreType, Resources

__all__ = ["result_to_dict", "save_json", "load_json"]


def result_to_dict(value: Any) -> Any:
    """Recursively convert an experiment result into JSON-compatible data.

    Handles dataclasses, NumPy arrays and scalars, ``Resources``,
    ``CoreType``, ``Stage``/``Solution`` and the built-in containers.

    Raises:
        TypeError: for values with no JSON representation.
    """
    # CoreType is an IntEnum: it must be matched before plain ints.
    if isinstance(value, CoreType):
        return value.name
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # JSON has no Infinity/NaN; encode them as strings.
        if value != value or value in (float("inf"), float("-inf")):
            return str(value)
        return value
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return result_to_dict(float(value))
    if isinstance(value, np.ndarray):
        return [result_to_dict(v) for v in value.tolist()]
    if isinstance(value, Resources):
        return {"big": value.big, "little": value.little}
    if isinstance(value, Stage):
        return {
            "start": value.start,
            "end": value.end,
            "cores": value.cores,
            "core_type": value.core_type.name,
        }
    if isinstance(value, Solution):
        return {"stages": [result_to_dict(s) for s in value.stages]}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__type__": type(value).__name__,
            **{
                f.name: result_to_dict(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, dict):
        return {str(k): result_to_dict(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [result_to_dict(v) for v in value]
    raise TypeError(f"cannot serialize {type(value).__name__} to JSON")


def save_json(result: Any, path: "str | Path", indent: int = 2) -> Path:
    """Serialize an experiment result to a JSON file.

    Args:
        result: any experiment result (or nested structure of them).
        path: destination file.
        indent: JSON indentation.

    Returns:
        The written path.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result_to_dict(result), indent=indent) + "\n")
    return path


def load_json(path: "str | Path") -> Any:
    """Load a previously saved result as plain dictionaries/lists."""
    return json.loads(Path(path).read_text())
