"""Table III — the DVB-S2 receiver's per-task latency profile.

The paper profiles each receiver task on both platforms and both core types
(Section VI-E, Table III); those numbers are this library's embedded
dataset.  The driver renders the table, verifies the per-column totals the
paper prints, and demonstrates the profiling *procedure* by re-measuring a
synthetic executor chain on the threaded runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.tables import render_table
from ..core.types import CoreType
from ..obs.clock import monotonic
from ..sdr.dvbs2 import DVBS2_TASK_TABLE, dvbs2_mac_studio_chain
from ..streampu.module import SyntheticSleepTask

__all__ = ["Table3Result", "run", "render", "profile_chain_executors"]

#: Totals printed at the bottom of Table III (Mac B, Mac L, X7 B, X7 L).
PAPER_TOTALS = (8530.8, 19841.3, 12592.5, 22530.7)


@dataclass(frozen=True)
class Table3Result:
    """The dataset plus recomputed totals."""

    totals: tuple[float, float, float, float]
    paper_totals: tuple[float, float, float, float]

    @property
    def totals_match(self) -> bool:
        """Whether the dataset reproduces the paper's printed totals."""
        return all(
            abs(a - b) < 0.5 for a, b in zip(self.totals, self.paper_totals)
        )


def run() -> Table3Result:
    """Recompute the Table III totals from the embedded dataset."""
    totals = (
        sum(r.mac_big for r in DVBS2_TASK_TABLE),
        sum(r.mac_little for r in DVBS2_TASK_TABLE),
        sum(r.x7_big for r in DVBS2_TASK_TABLE),
        sum(r.x7_little for r in DVBS2_TASK_TABLE),
    )
    return Table3Result(totals=totals, paper_totals=PAPER_TOTALS)


def profile_chain_executors(
    time_scale: float = 1e-6, repetitions: int = 5
) -> list[tuple[str, float, float]]:
    """Demonstrate the profiling procedure on synthetic executors.

    Runs each Mac Studio task's sleep executor ``repetitions`` times and
    returns ``(task name, nominal latency us, measured latency us)`` rows —
    the same measure-each-task-independently protocol the paper used to
    build Table III.
    """
    chain = dvbs2_mac_studio_chain()
    rows = []
    for task in chain:
        executor = SyntheticSleepTask(
            weight=task.weight(CoreType.BIG), time_scale=time_scale
        )
        start = monotonic()
        for _ in range(repetitions):
            executor.process(None)
        elapsed = (monotonic() - start) / repetitions
        rows.append((task.name, task.weight_big, elapsed / time_scale))
    return rows


def render(result: Table3Result) -> str:
    """Render Table III with the recomputed totals."""
    rows = [
        [
            f"tau_{r.index}",
            r.name,
            "yes" if r.replicable else "no",
            f"{r.mac_big:.1f}",
            f"{r.mac_little:.1f}",
            f"{r.x7_big:.1f}",
            f"{r.x7_little:.1f}",
        ]
        for r in DVBS2_TASK_TABLE
    ]
    rows.append(
        [
            "",
            "Total",
            "",
            f"{result.totals[0]:.1f}",
            f"{result.totals[1]:.1f}",
            f"{result.totals[2]:.1f}",
            f"{result.totals[3]:.1f}",
        ]
    )
    table = render_table(
        ["Id", "Task", "Rep.", "Mac B", "Mac L", "X7 B", "X7 L"],
        rows,
        title="Table III — DVB-S2 receiver average task latency (us per batch)",
    )
    status = "match" if result.totals_match else "MISMATCH"
    return (
        f"{table}\n"
        f"Totals vs paper ({', '.join(f'{t:.1f}' for t in result.paper_totals)}): "
        f"{status}"
    )
