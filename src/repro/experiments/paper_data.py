"""Paper-reported values, embedded for side-by-side comparison.

``EXPERIMENTS.md`` and the experiment drivers print the paper's numbers next
to the reproduction's.  Only the values needed for those comparisons are
transcribed here (Table I in full; Table II's solution summary rows; the
headline claims quoted in the text).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.types import Resources

__all__ = [
    "PaperTable1Entry",
    "PAPER_TABLE1",
    "PaperTable2Row",
    "PAPER_TABLE2",
]


@dataclass(frozen=True, slots=True)
class PaperTable1Entry:
    """One Table I cell as printed in the paper."""

    resources: Resources
    stateless_ratio: float
    strategy: str
    percent_optimal: float
    avg_slowdown: float
    med_slowdown: float
    max_slowdown: float
    avg_big_used: float
    avg_little_used: float


def _t1(res, sr, strat, pct, avg, med, mx, b, l):  # noqa: ANN001 - table literal
    return PaperTable1Entry(res, sr, strat, pct, avg, med, mx, b, l)


_R164 = Resources(16, 4)
_R1010 = Resources(10, 10)
_R416 = Resources(4, 16)

#: Table I verbatim (percentages, slowdown stats, usage pairs).
PAPER_TABLE1: tuple[PaperTable1Entry, ...] = (
    # R = (16B, 4L)
    _t1(_R164, 0.2, "herad", 100.0, 1.00, 1.00, 1.00, 11.72, 3.33),
    _t1(_R164, 0.2, "2catac", 100.0, 1.00, 1.00, 1.00, 11.74, 3.31),
    _t1(_R164, 0.2, "fertac", 99.2, 1.00, 1.00, 1.14, 12.44, 3.91),
    _t1(_R164, 0.2, "otac_b", 88.7, 1.01, 1.00, 1.31, 14.15, 0.00),
    _t1(_R164, 0.2, "otac_l", 0.0, 9.01, 8.93, 13.88, 0.00, 4.00),
    _t1(_R164, 0.5, "herad", 100.0, 1.00, 1.00, 1.00, 11.97, 3.50),
    _t1(_R164, 0.5, "2catac", 99.6, 1.00, 1.00, 1.13, 12.09, 3.47),
    _t1(_R164, 0.5, "fertac", 95.8, 1.00, 1.00, 1.22, 12.87, 3.96),
    _t1(_R164, 0.5, "otac_b", 82.7, 1.02, 1.00, 1.35, 14.37, 0.00),
    _t1(_R164, 0.5, "otac_l", 0.0, 9.35, 9.27, 14.81, 0.00, 4.00),
    _t1(_R164, 0.8, "herad", 100.0, 1.00, 1.00, 1.00, 12.63, 3.49),
    _t1(_R164, 0.8, "2catac", 93.0, 1.00, 1.00, 1.17, 12.91, 3.37),
    _t1(_R164, 0.8, "fertac", 84.3, 1.01, 1.00, 1.34, 13.30, 3.86),
    _t1(_R164, 0.8, "otac_b", 69.9, 1.04, 1.00, 1.43, 14.41, 0.00),
    _t1(_R164, 0.8, "otac_l", 0.0, 10.57, 10.37, 17.92, 0.00, 4.00),
    # R = (10B, 10L)
    _t1(_R1010, 0.2, "herad", 100.0, 1.00, 1.00, 1.00, 9.34, 7.87),
    _t1(_R1010, 0.2, "2catac", 98.8, 1.00, 1.00, 1.07, 9.34, 7.90),
    _t1(_R1010, 0.2, "fertac", 80.3, 1.01, 1.00, 1.26, 9.48, 8.87),
    _t1(_R1010, 0.2, "otac_b", 1.7, 1.32, 1.32, 1.78, 9.97, 0.00),
    _t1(_R1010, 0.2, "otac_l", 0.0, 4.17, 4.19, 5.62, 0.00, 9.57),
    _t1(_R1010, 0.5, "herad", 100.0, 1.00, 1.00, 1.00, 9.02, 9.24),
    _t1(_R1010, 0.5, "2catac", 89.1, 1.00, 1.00, 1.23, 9.11, 9.28),
    _t1(_R1010, 0.5, "fertac", 51.2, 1.04, 1.00, 1.41, 9.49, 9.89),
    _t1(_R1010, 0.5, "otac_b", 1.4, 1.38, 1.39, 1.87, 9.97, 0.00),
    _t1(_R1010, 0.5, "otac_l", 0.0, 4.32, 4.37, 5.80, 0.00, 9.72),
    _t1(_R1010, 0.8, "herad", 100.0, 1.00, 1.00, 1.00, 9.10, 9.44),
    _t1(_R1010, 0.8, "2catac", 61.7, 1.02, 1.00, 1.22, 9.33, 9.36),
    _t1(_R1010, 0.8, "fertac", 42.2, 1.06, 1.03, 1.37, 9.56, 9.87),
    _t1(_R1010, 0.8, "otac_b", 1.6, 1.41, 1.43, 1.92, 9.99, 0.00),
    _t1(_R1010, 0.8, "otac_l", 0.0, 4.34, 4.40, 5.80, 0.00, 9.81),
    # R = (4B, 16L)
    _t1(_R416, 0.2, "herad", 100.0, 1.00, 1.00, 1.00, 3.99, 7.86),
    _t1(_R416, 0.2, "2catac", 100.0, 1.00, 1.00, 1.00, 3.99, 7.89),
    _t1(_R416, 0.2, "fertac", 99.0, 1.00, 1.00, 1.09, 3.99, 9.27),
    _t1(_R416, 0.2, "otac_b", 0.0, 1.61, 1.59, 2.62, 4.00, 0.00),
    _t1(_R416, 0.2, "otac_l", 0.0, 2.22, 2.16, 4.72, 0.00, 10.98),
    _t1(_R416, 0.5, "herad", 100.0, 1.00, 1.00, 1.00, 3.99, 13.32),
    _t1(_R416, 0.5, "2catac", 91.7, 1.00, 1.00, 1.14, 3.99, 13.42),
    _t1(_R416, 0.5, "fertac", 61.4, 1.03, 1.00, 1.34, 3.99, 14.08),
    _t1(_R416, 0.5, "otac_b", 0.0, 2.03, 2.06, 2.88, 4.00, 0.00),
    _t1(_R416, 0.5, "otac_l", 0.0, 2.58, 2.49, 4.72, 0.00, 11.91),
    _t1(_R416, 0.8, "herad", 100.0, 1.00, 1.00, 1.00, 3.99, 15.80),
    _t1(_R416, 0.8, "2catac", 41.1, 1.03, 1.01, 1.21, 3.99, 15.83),
    _t1(_R416, 0.8, "fertac", 13.0, 1.08, 1.07, 1.36, 3.99, 15.91),
    _t1(_R416, 0.8, "otac_b", 0.0, 2.42, 2.40, 3.13, 4.00, 0.00),
    _t1(_R416, 0.8, "otac_l", 0.0, 2.57, 2.36, 4.97, 0.00, 13.20),
)


@dataclass(frozen=True, slots=True)
class PaperTable2Row:
    """One Table II solution row (expected values and measured throughput)."""

    solution_id: str
    platform: str
    resources: Resources
    strategy: str
    decomposition: str
    num_stages: int
    big_used: int
    little_used: int
    period_us: float
    sim_fps: float
    real_fps: float
    sim_mbps: float
    real_mbps: float


def _t2(sid, plat, res, strat, decomp, s, b, l, period, sfps, rfps, smb, rmb):  # noqa: ANN001
    return PaperTable2Row(sid, plat, res, strat, decomp, s, b, l, period, sfps, rfps, smb, rmb)


#: Table II verbatim.
PAPER_TABLE2: tuple[PaperTable2Row, ...] = (
    _t2("S1", "Mac Studio", Resources(8, 2), "herad",
        "(5,1B),(1,1B),(9,1B),(1,2B),(2,1L),(1,3B),(4,1L)", 7, 8, 2, 1128.7, 3544, 3316, 50.4, 47.2),
    _t2("S2", "Mac Studio", Resources(8, 2), "2catac",
        "(5,1B),(3,1B),(7,1B),(4,5B),(4,1L)", 5, 8, 1, 1154.3, 3465, 3590, 49.3, 51.1),
    _t2("S3", "Mac Studio", Resources(8, 2), "fertac",
        "(3,1L),(1,1L),(2,1B),(9,1B),(5,5B),(3,1B)", 6, 8, 2, 1265.6, 3160, 2944, 45.0, 41.9),
    _t2("S4", "Mac Studio", Resources(8, 2), "otac_b",
        "(5,1B),(4,1B),(6,1B),(4,4B),(4,1B)", 5, 8, 0, 1442.9, 2772, 2677, 39.5, 38.1),
    _t2("S5", "Mac Studio", Resources(8, 2), "otac_l",
        "(16,1L),(7,1L)", 2, 0, 2, 11440.0, 350, 351, 5.0, 5.0),
    _t2("S6", "Mac Studio", Resources(16, 4), "herad",
        "(3,1L),(1,1L),(1,1L),(1,1B),(6,1B),(7,7B),(4,1L)", 7, 9, 4, 950.6, 4208, 3934, 59.9, 56.0),
    _t2("S7", "Mac Studio", Resources(16, 4), "2catac",
        "(3,1L),(1,1L),(1,1L),(1,1B),(9,1B),(5,7B),(3,1L)", 7, 9, 4, 950.6, 4208, 3927, 59.9, 55.9),
    _t2("S8", "Mac Studio", Resources(16, 4), "fertac",
        "(3,1L),(1,1L),(1,1L),(1,1B),(2,1L),(7,1B),(5,7B),(3,1B)", 8, 10, 4, 950.6, 4208, 3920, 59.9, 55.8),
    _t2("S9", "Mac Studio", Resources(16, 4), "otac_b",
        "(5,1B),(1,1B),(9,1B),(5,7B),(3,1B)", 5, 11, 0, 950.6, 4208, 3927, 59.9, 55.9),
    _t2("S10", "Mac Studio", Resources(16, 4), "otac_l",
        "(13,1L),(6,2L),(4,1L)", 3, 0, 4, 6470.9, 618, 611, 8.8, 8.7),
    _t2("S11", "X7 Ti", Resources(3, 4), "herad",
        "(5,1B),(10,1B),(3,1B),(1,3L),(4,1L)", 5, 3, 4, 2722.1, 2939, 2726, 41.8, 38.8),
    _t2("S12", "X7 Ti", Resources(3, 4), "2catac",
        "(5,1L),(10,1B),(3,1B),(1,3L),(4,1B)", 5, 3, 4, 2722.1, 2939, 2677, 41.8, 38.1),
    _t2("S13", "X7 Ti", Resources(3, 4), "fertac",
        "(5,1L),(3,1L),(7,1L),(4,3B),(4,1L)", 5, 3, 4, 2867.0, 2790, 2852, 39.7, 40.6),
    _t2("S14", "X7 Ti", Resources(3, 4), "otac_b",
        "(18,1B),(1,1B),(4,1B)", 3, 3, 0, 6209.0, 1288, 1384, 18.3, 19.7),
    _t2("S15", "X7 Ti", Resources(3, 4), "otac_l",
        "(15,1L),(4,2L),(4,1L)", 3, 0, 4, 7490.3, 1068, 1025, 15.2, 14.6),
    _t2("S16", "X7 Ti", Resources(6, 8), "herad",
        "(5,1B),(1,1B),(6,1B),(4,2B),(3,7L),(4,1L)", 6, 6, 8, 1341.9, 5962, 5108, 84.8, 72.5),
    _t2("S17", "X7 Ti", Resources(6, 8), "2catac",
        "(5,1B),(1,1B),(9,1B),(3,2B),(2,7L),(3,1L)", 6, 6, 8, 1341.9, 5962, 5052, 84.8, 71.4),
    _t2("S18", "X7 Ti", Resources(6, 8), "fertac",
        "(3,1L),(2,1L),(3,1B),(4,1L),(6,5L),(1,4B),(4,1B)", 7, 6, 8, 1552.3, 5154, 4602, 73.3, 65.4),
    _t2("S19", "X7 Ti", Resources(6, 8), "otac_b",
        "(8,1B),(7,1B),(4,3B),(4,1B)", 4, 6, 0, 2867.0, 2790, 2712, 39.7, 38.6),
    _t2("S20", "X7 Ti", Resources(6, 8), "otac_l",
        "(5,1L),(5,1L),(5,1L),(4,4L),(4,1L)", 5, 0, 8, 3745.1, 2136, 1833, 30.4, 26.1),
)
