"""Table II / Fig. 5 data — DVB-S2 receiver schedules and throughput.

For each of the four real-platform configurations (Mac Studio with all/half
cores, X7 Ti with all/half cores) and each of the five strategies, this
driver:

1. schedules the DVB-S2 receiver chain (paper Table III latencies);
2. reports the pipeline decomposition, stage count, core usage and the
   expected (model) period, converted to FPS and Mb/s ("Sim" columns);
3. *executes* the schedule on the StreamPU-like discrete-event runtime with
   the calibrated overhead model to obtain the "Real" columns — the
   substitution for running StreamPU on the physical machines (see
   DESIGN.md §3), calibrated to the gap magnitudes the paper measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..analysis.tables import render_table
from ..core.registry import PAPER_ORDER, get_info
from ..core.solution import Solution
from ..core.types import Resources
from ..platform.model import Platform
from ..platform.presets import REAL_CONFIGURATIONS
from ..sdr.dvbs2 import dvbs2_chain
from ..sdr.framing import DVBS2_NORMAL_R8_9, fps_from_period_us
from ..streampu.overheads import CalibratedOverhead, OverheadModel
from ..streampu.pipeline import PipelineSpec
from ..streampu.simulator import simulate_pipeline
from .paper_data import PAPER_TABLE2

__all__ = ["Table2Row", "Table2Result", "run", "render"]


@dataclass(frozen=True)
class Table2Row:
    """One Table II line: a strategy's schedule and throughput on a config.

    Attributes:
        platform: platform name.
        resources: budget offered to the scheduler.
        strategy: canonical strategy name.
        solution: the computed schedule.
        decomposition: paper-style stage string.
        num_stages: pipeline depth.
        big_used / little_used: cores used per type.
        period_us: expected (model) period in microseconds.
        sim_fps / sim_mbps: throughput implied by the model period.
        real_fps / real_mbps: throughput measured on the overhead-calibrated
            runtime simulation.
    """

    platform: str
    resources: Resources
    strategy: str
    solution: Solution
    decomposition: str
    num_stages: int
    big_used: int
    little_used: int
    period_us: float
    sim_fps: float
    sim_mbps: float
    real_fps: float
    real_mbps: float

    @property
    def mbps_diff(self) -> float:
        """Expected minus measured throughput (paper's "Diff." column)."""
        return self.sim_mbps - self.real_mbps

    @property
    def mbps_ratio_percent(self) -> float:
        """Relative expected-to-measured gap in percent ("Ratio" column)."""
        if self.real_mbps <= 0:
            return float("inf")
        return (self.sim_mbps / self.real_mbps - 1.0) * 100.0


@dataclass(frozen=True)
class Table2Result:
    """All Table II rows."""

    rows: tuple[Table2Row, ...]
    num_frames: int


def run(
    configurations: Sequence[tuple[Platform, Resources]] = REAL_CONFIGURATIONS,
    strategies: Sequence[str] = PAPER_ORDER,
    overhead: OverheadModel | None = None,
    num_frames: int = 2000,
    info_bits: int = DVBS2_NORMAL_R8_9.info_bits,
) -> Table2Result:
    """Compute the Table II reproduction.

    Args:
        configurations: (platform, budget) pairs (default: the paper's four).
        strategies: strategies to evaluate (default: the paper's five).
        overhead: runtime overhead model for the "Real" columns; defaults to
            the calibrated model.
        num_frames: frames streamed per throughput measurement.
        info_bits: information bits per frame (K).
    """
    model = overhead if overhead is not None else CalibratedOverhead()
    rows = []
    for platform, resources in configurations:
        chain = dvbs2_chain(platform)
        interframe = platform.interframe
        for name in strategies:
            info = get_info(name)
            outcome = info.func(chain, resources)
            solution = outcome.solution
            usage = solution.core_usage()
            period = outcome.period

            spec = PipelineSpec.from_solution(solution, chain)
            sim = simulate_pipeline(spec, num_frames=num_frames, overhead=model)
            real_period = sim.report.measured_period

            sim_fps = fps_from_period_us(period, interframe)
            real_fps = fps_from_period_us(real_period, interframe)
            rows.append(
                Table2Row(
                    platform=platform.name,
                    resources=resources,
                    strategy=info.name,
                    solution=solution,
                    decomposition=solution.render(),
                    num_stages=solution.num_stages,
                    big_used=usage.big,
                    little_used=usage.little,
                    period_us=period,
                    sim_fps=sim_fps,
                    sim_mbps=sim_fps * info_bits / 1e6,
                    real_fps=real_fps,
                    real_mbps=real_fps * info_bits / 1e6,
                )
            )
    return Table2Result(rows=tuple(rows), num_frames=num_frames)


def _paper_row(resources: Resources, platform: str, strategy: str):
    for row in PAPER_TABLE2:
        if (
            row.resources == resources
            and row.platform == platform
            and row.strategy == strategy
        ):
            return row
    return None


def render(result: Table2Result, include_paper: bool = True) -> str:
    """Render the reproduction in the paper's Table II layout."""
    headers = [
        "Platform",
        "R=(b,l)",
        "Strategy",
        "Pipeline decomposition",
        "|s|",
        "b",
        "l",
        "Period (us)",
        "Sim FPS",
        "Real FPS",
        "Sim Mb/s",
        "Real Mb/s",
        "Ratio",
    ]
    if include_paper:
        headers += ["paper period", "paper real Mb/s"]
    rows = []
    for row in result.rows:
        cells = [
            row.platform,
            str(row.resources),
            get_info(row.strategy).display_name,
            row.decomposition,
            row.num_stages,
            row.big_used,
            row.little_used,
            f"{row.period_us:.1f}",
            f"{row.sim_fps:.0f}",
            f"{row.real_fps:.0f}",
            f"{row.sim_mbps:.1f}",
            f"{row.real_mbps:.1f}",
            f"{row.mbps_ratio_percent:+.0f}%",
        ]
        if include_paper:
            paper = _paper_row(row.resources, row.platform, row.strategy)
            if paper is None:
                cells += ["-", "-"]
            else:
                cells += [f"{paper.period_us:.1f}", f"{paper.real_mbps:.1f}"]
        rows.append(cells)
    return render_table(
        headers,
        rows,
        title=(
            "Table II reproduction — DVB-S2 receiver schedules "
            f"({result.num_frames} simulated frames per measurement)"
        ),
    )
