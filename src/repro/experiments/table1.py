"""Table I — simulation statistics for all scheduling strategies.

Runs the synthetic campaign (N chains of 20 tasks per scenario) over the
paper's three budgets and three stateless ratios, and reports, per strategy,
the 4-tuple (percentage of optimal periods, average/median/maximum slowdown)
and the average (big, little) core usage — next to the paper's own values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..analysis.stats import ScenarioStats, aggregate_scenario
from ..analysis.tables import render_table
from ..core.registry import PAPER_ORDER, get_info
from ..core.types import Resources
from ..engine import CampaignEngine
from ..platform.presets import SIMULATION_BUDGETS
from .common import PAPER_STATELESS_RATIOS, CampaignResult, run_campaign
from .paper_data import PAPER_TABLE1

__all__ = ["Table1Scenario", "Table1Result", "run", "render"]


@dataclass(frozen=True)
class Table1Scenario:
    """Aggregated statistics of one (resources, SR) campaign."""

    resources: Resources
    stateless_ratio: float
    stats: dict[str, ScenarioStats]
    campaign: CampaignResult


@dataclass(frozen=True)
class Table1Result:
    """The full Table I reproduction."""

    scenarios: tuple[Table1Scenario, ...]
    num_chains: int


def run(
    num_chains: int = 1000,
    budgets: Sequence[Resources] = SIMULATION_BUDGETS,
    stateless_ratios: Sequence[float] = PAPER_STATELESS_RATIOS,
    seed: int = 0,
    jobs: int | None = None,
    certify: bool = False,
    engine: "CampaignEngine | None" = None,
) -> Table1Result:
    """Run the Table I campaign.

    Args:
        num_chains: chains per scenario (paper: 1000; smaller values give a
            faster, noisier estimate).
        budgets: the platform budgets to sweep.
        stateless_ratios: the SR values to sweep.
        seed: base seed (each scenario uses the same chain weights stream,
            re-labelled for its SR, exactly like regenerating the paper's
            population).
        jobs: campaign-engine worker count (None: all cores).
        certify: audit every solution with the certificate checker.
        engine: campaign engine override — the CLI passes a resilient /
            journaled engine here for ``--resume``/``--retries``/``--timeout``.
    """
    scenarios = []
    for resources in budgets:
        for sr in stateless_ratios:
            campaign = run_campaign(
                resources, sr, num_chains=num_chains, seed=seed, jobs=jobs,
                certify=certify, engine=engine,
            )
            stats = {
                name: aggregate_scenario(
                    name,
                    rec.periods,
                    campaign.optimal_periods,
                    rec.big_used,
                    rec.little_used,
                )
                for name, rec in campaign.records.items()
            }
            scenarios.append(
                Table1Scenario(
                    resources=resources,
                    stateless_ratio=sr,
                    stats=stats,
                    campaign=campaign,
                )
            )
    return Table1Result(scenarios=tuple(scenarios), num_chains=num_chains)


def _paper_entry(resources: Resources, sr: float, strategy: str):
    for entry in PAPER_TABLE1:
        if (
            entry.resources == resources
            and entry.stateless_ratio == sr
            and entry.strategy == strategy
        ):
            return entry
    return None


def render(result: Table1Result, include_paper: bool = True) -> str:
    """Render the reproduction as a paper-style text table.

    Args:
        result: output of :func:`run`.
        include_paper: add the paper's reported values beside ours.
    """
    headers = ["R=(b,l)", "SR", "Strategy", "(% opt, avg, med, max)", "(b_used, l_used)"]
    if include_paper:
        headers += ["paper period stats", "paper usage"]
    rows = []
    for scenario in result.scenarios:
        for name in PAPER_ORDER:
            stats = scenario.stats[name]
            row = [
                str(scenario.resources),
                f"{scenario.stateless_ratio:.1f}",
                get_info(name).display_name,
                stats.render_period(),
                stats.render_usage(),
            ]
            if include_paper:
                entry = _paper_entry(
                    scenario.resources, scenario.stateless_ratio, name
                )
                if entry is None:
                    row += ["-", "-"]
                else:
                    row += [
                        f"( {entry.percent_optimal:5.1f}%, {entry.avg_slowdown:4.2f}, "
                        f"{entry.med_slowdown:4.2f}, {entry.max_slowdown:4.2f} )",
                        f"( {entry.avg_big_used:5.2f}, {entry.avg_little_used:5.2f} )",
                    ]
            rows.append(row)
    return render_table(
        headers,
        rows,
        title=(
            f"Table I reproduction — {result.num_chains} chains per scenario "
            "(paper: 1000)"
        ),
    )
