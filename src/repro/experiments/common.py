"""Shared machinery for the experimental campaign.

The synthetic experiments (Table I, Figs. 1-2) all run the same *campaign*:
draw N chains from the paper's distribution at a given stateless ratio,
schedule each with every strategy on a given budget, and record periods and
core usages.  :func:`run_campaign` does that once, delegating the instance
solves to the campaign engine (:mod:`repro.engine`): instances fan out over
``jobs`` workers and previously-solved instances replay from the shared memo
cache, with bitwise-identical results for every job count.

The execution-time experiments (Figs. 3-4) share :func:`time_strategy`,
which routes through the engine's (serial, never memoized) measurement path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.chain_stats import ChainProfile
from ..core.registry import PAPER_ORDER, get_info
from ..core.types import Resources
from ..engine import CampaignEngine, default_engine
from ..workloads.synthetic import GeneratorConfig, chain_batch

__all__ = [
    "PAPER_STATELESS_RATIOS",
    "PAPER_NUM_CHAINS",
    "StrategyRecord",
    "CampaignResult",
    "run_campaign",
    "TimingPoint",
    "time_strategy",
]

#: The paper's three stateless-ratio scenarios.
PAPER_STATELESS_RATIOS: tuple[float, ...] = (0.2, 0.5, 0.8)

#: Chains per scenario in the paper's campaign.
PAPER_NUM_CHAINS: int = 1000


@dataclass(frozen=True)
class StrategyRecord:
    """Raw per-chain outcomes of one strategy over a campaign.

    Attributes:
        strategy: canonical strategy name.
        periods: achieved period per chain.
        big_used: big cores used per chain.
        little_used: little cores used per chain.
    """

    strategy: str
    periods: np.ndarray
    big_used: np.ndarray
    little_used: np.ndarray


@dataclass(frozen=True)
class CampaignResult:
    """Raw outcomes of one (resources, SR) campaign for several strategies.

    Attributes:
        resources: the platform budget.
        stateless_ratio: the scenario's SR.
        num_chains: population size.
        records: strategy name -> raw outcomes.
        seed: the campaign's base seed.
    """

    resources: Resources
    stateless_ratio: float
    num_chains: int
    records: dict[str, StrategyRecord]
    seed: int = 0

    @property
    def optimal_periods(self) -> np.ndarray:
        """HeRAD's periods (the per-chain optima)."""
        return self.records["herad"].periods


def run_campaign(
    resources: Resources,
    stateless_ratio: float,
    num_chains: int = PAPER_NUM_CHAINS,
    num_tasks: int = 20,
    strategies: Sequence[str] | None = None,
    seed: int = 0,
    jobs: int | None = None,
    engine: CampaignEngine | None = None,
    certify: bool = False,
) -> CampaignResult:
    """Run one synthetic campaign (Section VI-A-1 protocol).

    Args:
        resources: platform budget ``R = (b, l)``.
        stateless_ratio: fraction of replicable tasks per chain.
        num_chains: chains to draw (paper: 1000).
        num_tasks: chain length (paper: 20).
        strategies: strategy names; defaults to the paper's five, and always
            includes ``herad`` (needed as the optimal reference).
        seed: base seed of the chain stream.
        jobs: worker count for the instance fan-out (``None``: the engine's
            default, itself ``os.cpu_count()``).  Any value yields the same
            arrays bit for bit.
        engine: campaign engine override; defaults to the process-wide
            engine with its shared memo cache.
        certify: audit every solution with the independent certificate
            checker (:mod:`repro.core.certify`); raises
            :class:`~repro.core.errors.CertificationError` on any violation.
            Bypasses the memo cache (cached entries hold no solution to
            audit).

    Returns:
        The raw campaign outcomes.
    """
    names = list(strategies) if strategies is not None else list(PAPER_ORDER)
    if "herad" not in names:
        names.insert(0, "herad")
    canonical = [get_info(name).name for name in names]

    config = GeneratorConfig(num_tasks=num_tasks, stateless_ratio=stateless_ratio)
    chains = list(chain_batch(num_chains, config, seed=seed))

    eng = engine if engine is not None else default_engine()
    arrays = eng.solve_instances(
        chains, resources, canonical, jobs=jobs, certify=certify
    )

    records = {
        name: StrategyRecord(
            strategy=name,
            periods=arrays[name].periods,
            big_used=arrays[name].big_used,
            little_used=arrays[name].little_used,
        )
        for name in canonical
    }
    return CampaignResult(
        resources=resources,
        stateless_ratio=stateless_ratio,
        num_chains=num_chains,
        records=records,
        seed=seed,
    )


@dataclass(frozen=True)
class TimingPoint:
    """Average execution time of one strategy on one scenario size.

    Attributes:
        strategy: canonical strategy name.
        num_tasks: chain length.
        resources: platform budget.
        stateless_ratio: the scenario's SR.
        mean_seconds: mean wall time per schedule computation.
        num_chains: sample size.
    """

    strategy: str
    num_tasks: int
    resources: Resources
    stateless_ratio: float
    mean_seconds: float
    num_chains: int

    @property
    def mean_microseconds(self) -> float:
        """Mean time in microseconds (the paper's Fig. 3/4 unit)."""
        return self.mean_seconds * 1e6


def time_strategy(
    strategy: str,
    resources: Resources,
    stateless_ratio: float,
    num_tasks: int,
    num_chains: int = 50,
    seed: int = 0,
    engine: CampaignEngine | None = None,
) -> TimingPoint:
    """Measure a strategy's mean scheduling time (Fig. 3/4 protocol).

    Profiles are precomputed outside the timed region — the paper's C++
    implementation likewise excludes input parsing; only ``Schedule`` /
    ``HeRAD`` proper is measured.  Measurement goes through the engine's
    latency path, which is always serial and bypasses the memo cache (a
    cache replay would time a dict lookup, not the scheduler).
    """
    info = get_info(strategy)
    config = GeneratorConfig(num_tasks=num_tasks, stateless_ratio=stateless_ratio)
    profiles = [
        ChainProfile(chain)
        for chain in chain_batch(num_chains, config, seed=seed)
    ]
    eng = engine if engine is not None else default_engine()
    mean_seconds = eng.measure_latency(info.name, profiles, resources)
    return TimingPoint(
        strategy=info.name,
        num_tasks=num_tasks,
        resources=resources,
        stateless_ratio=stateless_ratio,
        mean_seconds=mean_seconds,
        num_chains=num_chains,
    )
