"""Fig. 3 — strategy execution times for growing task-chain lengths.

The paper times each strategy on 50 random chains per point, for chain
lengths ``20 i (i = 1..8)``, at two fixed budgets (R = (20, 20) and
R = (100, 100)) and the three stateless ratios.  The expected shapes:

* FERTAC and OTAC are fast and grow roughly linearly in ``n``;
* 2CATAC grows exponentially (it is only measured up to 60 tasks) and gets
  *cheaper* again at SR = 0.8 because long replicable stages shorten the
  recursion;
* HeRAD grows with ``n^2`` (and with the core counts, see Fig. 4).

Absolute times are tens-to-thousands of microseconds in the paper's C++;
pure Python is ~2 orders of magnitude slower, so the default sweep is
scaled down — budgets (20, 20)/(40, 40) instead of (20, 20)/(100, 100) and
chain lengths up to 40 — while preserving every trend the paper reports.
Paper-scale points can be requested explicitly through the arguments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..analysis.tables import render_table
from ..core.registry import get_info
from ..core.types import Resources
from .common import PAPER_STATELESS_RATIOS, TimingPoint, time_strategy

# PAPER_TASK_COUNTS: documentary constant (the paper's full Fig. 3 sweep),
# kept importable for reproduction even though no shipped code runs it.
__all__ = [  # lint: ignore[dead-public-symbol]
    "Fig3Result",
    "run",
    "render",
    "DEFAULT_TASK_COUNTS",
    "PAPER_TASK_COUNTS",
]

#: Scaled-down default sweep (Python-friendly).
DEFAULT_TASK_COUNTS: tuple[int, ...] = (10, 20, 30, 40)

#: The paper's sweep.
PAPER_TASK_COUNTS: tuple[int, ...] = tuple(20 * i for i in range(1, 9))

#: Strategy-specific chain-length caps (2CATAC is exponential; n = 30 already
#: costs seconds per chain in pure Python at SR = 0.5).
STRATEGY_CAPS: dict[str, int] = {"2catac": 30, "2catac_memo": 30}


@dataclass(frozen=True)
class Fig3Result:
    """Execution-time measurements over chain lengths."""

    points: tuple[TimingPoint, ...]
    budgets: tuple[Resources, ...]


def run(
    task_counts: Sequence[int] = DEFAULT_TASK_COUNTS,
    budgets: Sequence[Resources] = (Resources(20, 20), Resources(40, 40)),
    stateless_ratios: Sequence[float] = PAPER_STATELESS_RATIOS,
    strategies: Sequence[str] = ("fertac", "2catac", "herad", "otac_b", "otac_l"),
    num_chains: int = 50,
    seed: int = 0,
    caps: dict[str, int] | None = None,
) -> Fig3Result:
    """Measure strategy execution times over the sweep.

    Args:
        task_counts: chain lengths to measure.
        budgets: fixed core budgets (the paper uses (20,20) and (100,100)).
        stateless_ratios: SR scenarios.
        strategies: strategies to time.
        num_chains: chains averaged per point (paper: 50).
        seed: chain stream seed.
        caps: per-strategy maximum chain length (default caps 2CATAC at 30).
    """
    limit = dict(STRATEGY_CAPS)
    if caps:
        limit.update(caps)
    points = []
    for resources in budgets:
        for sr in stateless_ratios:
            for n in task_counts:
                for strategy in strategies:
                    if n > limit.get(strategy, 10**9):
                        continue
                    points.append(
                        time_strategy(
                            strategy,
                            resources,
                            sr,
                            n,
                            num_chains=num_chains,
                            seed=seed,
                        )
                    )
    return Fig3Result(points=tuple(points), budgets=tuple(budgets))


def render(result: Fig3Result) -> str:
    """Render the timing sweep as per-budget tables (microseconds)."""
    blocks = []
    for resources in result.budgets:
        rows = []
        for point in result.points:
            if point.resources != resources:
                continue
            rows.append(
                [
                    get_info(point.strategy).display_name,
                    f"{point.stateless_ratio:.1f}",
                    point.num_tasks,
                    f"{point.mean_microseconds:,.0f}",
                ]
            )
        blocks.append(
            render_table(
                ["Strategy", "SR", "n tasks", "mean time (us)"],
                rows,
                title=f"Fig. 3 — execution times at R={resources}",
            )
        )
        blocks.append("")
    return "\n".join(blocks)
