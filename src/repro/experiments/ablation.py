"""Ablation studies over the library's extensions (beyond the paper).

One driver consolidating the design-choice ablations DESIGN.md calls out:

1. **Replication value** — the no-replication interval-mapping optimum vs
   HeRAD across stateless ratios: how much of the throughput comes from
   replicating stateless stages rather than pipelining alone.
2. **2CATAC memoization** — identical schedules, exponential-to-polynomial
   execution-time change.
3. **Static vs dynamic** — the per-dispatch overhead at which a dynamic
   per-task scheduler stops beating the static HeRAD pipeline on the
   DVB-S2 receiver (the paper's Section II argument, quantified).
4. **Thread placement** — compact vs scatter placement under a
   cluster-crossing penalty on the DVB-S2 schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..analysis.tables import render_table
from ..core.chain_stats import ChainProfile
from ..core.herad import herad
from ..core.norep import norep_period
from ..core.twocatac import twocatac
from ..core.types import Resources
from ..obs.clock import monotonic
from ..platform.presets import MAC_STUDIO
from ..sdr.dvbs2 import dvbs2_mac_studio_chain
from ..streampu.dynamic import simulate_dynamic_scheduler
from ..streampu.pipeline import PipelineSpec
from ..streampu.placement import (
    PlacementOverhead,
    compact_placement,
    platform_cores,
    scatter_placement,
)
from ..streampu.simulator import simulate_pipeline
from ..workloads.synthetic import GeneratorConfig, chain_batch

__all__ = ["AblationResult", "run", "render"]


@dataclass(frozen=True)
class AblationResult:
    """All ablation outcomes.

    Attributes:
        replication_value: SR -> mean(norep period / HeRAD period).
        memoization: (plain seconds, memoized seconds, schedules equal).
        dynamic_periods: dispatch overhead (us) -> dynamic period (us).
        static_period: HeRAD's DVB-S2 period for the dynamic comparison.
        placement_periods: policy name -> simulated period (us).
    """

    replication_value: dict[float, float]
    memoization: tuple[float, float, bool]
    dynamic_periods: dict[float, float]
    static_period: float
    placement_periods: dict[str, float]


def run(
    num_chains: int = 30,
    stateless_ratios: Sequence[float] = (0.2, 0.5, 0.8),
    resources: Resources = Resources(6, 6),
    dynamic_overheads: Sequence[float] = (0.0, 20.0, 100.0, 500.0),
    seed: int = 0,
) -> AblationResult:
    """Run every ablation (sizes tuned for a minutes-scale run)."""
    # 1. Replication value.
    replication = {}
    for sr in stateless_ratios:
        config = GeneratorConfig(num_tasks=16, stateless_ratio=sr)
        ratios = []
        for chain in chain_batch(num_chains, config, seed=seed):
            profile = ChainProfile(chain)
            ratios.append(
                norep_period(profile, resources)
                / herad(profile, resources).period
            )
        replication[sr] = float(np.mean(ratios))

    # 2. Memoization.
    config = GeneratorConfig(num_tasks=18, stateless_ratio=0.5)
    profiles = [
        ChainProfile(c) for c in chain_batch(max(5, num_chains // 6), config, seed=seed)
    ]
    start = monotonic()
    plain = [twocatac(p, resources) for p in profiles]
    plain_s = monotonic() - start
    start = monotonic()
    memo = [twocatac(p, resources, memoize=True) for p in profiles]
    memo_s = monotonic() - start
    # The ablation's whole point is that memoization is bitwise-transparent,
    # so this must stay an exact comparison — isclose would mask a regression.
    equal = all(
        a.period == b.period  # lint: ignore[float-equality]
        and a.solution.core_usage() == b.solution.core_usage()
        for a, b in zip(plain, memo)
    )

    # 3. Static vs dynamic on the DVB-S2 receiver.
    dvbs2 = dvbs2_mac_studio_chain()
    dvbs2_resources = Resources(8, 2)
    static = herad(dvbs2, dvbs2_resources)
    dynamic = {
        overhead: simulate_dynamic_scheduler(
            dvbs2, dvbs2_resources, num_frames=200, dispatch_overhead=overhead
        ).measured_period
        for overhead in dynamic_overheads
    }

    # 4. Placement.
    spec = PipelineSpec.from_solution(static.solution, dvbs2)
    cores = platform_cores(MAC_STUDIO, cluster_size=4)
    placements = {
        "compact": compact_placement(spec, cores),
        "scatter": scatter_placement(
            spec, platform_cores(MAC_STUDIO, cluster_size=4)
        ),
    }
    placement_periods = {
        name: simulate_pipeline(
            spec,
            num_frames=400,
            overhead=PlacementOverhead(spec, placement),
        ).report.measured_period
        for name, placement in placements.items()
    }

    return AblationResult(
        replication_value=replication,
        memoization=(plain_s, memo_s, equal),
        dynamic_periods=dynamic,
        static_period=static.period,
        placement_periods=placement_periods,
    )


def render(result: AblationResult) -> str:
    """Render all ablations as text tables."""
    blocks = []
    blocks.append(
        render_table(
            ["SR", "norep / HeRAD period ratio"],
            [
                [f"{sr:.1f}", f"{ratio:.2f}x"]
                for sr, ratio in sorted(result.replication_value.items())
            ],
            title=(
                "Ablation 1 — value of replication "
                "(pipeline-only optimum vs HeRAD)"
            ),
        )
    )
    plain_s, memo_s, equal = result.memoization
    blocks.append("")
    blocks.append(
        "Ablation 2 — 2CATAC memoization: "
        f"plain {plain_s:.2f}s vs memoized {memo_s:.2f}s "
        f"({plain_s / max(memo_s, 1e-9):.1f}x), "
        f"schedules identical: {equal}"
    )
    blocks.append("")
    rows = [
        [
            f"{overhead:.0f}",
            f"{period:,.1f}",
            "dynamic" if period < result.static_period else "static",
        ]
        for overhead, period in sorted(result.dynamic_periods.items())
    ]
    blocks.append(
        render_table(
            ["dispatch overhead (us)", "dynamic period (us)", "winner"],
            rows,
            title=(
                "Ablation 3 — dynamic per-task dispatch vs HeRAD static "
                f"pipeline (static period {result.static_period:,.1f} us)"
            ),
        )
    )
    blocks.append("")
    blocks.append(
        render_table(
            ["placement", "simulated period (us)"],
            [
                [name, f"{period:,.1f}"]
                for name, period in result.placement_periods.items()
            ],
            title="Ablation 4 — thread placement under cluster-crossing penalties",
        )
    )
    return "\n".join(blocks)
