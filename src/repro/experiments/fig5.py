"""Fig. 5 — achieved DVB-S2 throughput per platform and strategy.

Fig. 5 plots the information throughput (Mb/s) of every strategy on each
platform for both core budgets — the same data as Table II, shown as bars.
This driver reuses the Table II computation and renders ASCII bars next to
the paper's measured values.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.registry import get_info
from .paper_data import PAPER_TABLE2
from .table2 import Table2Result
from .table2 import run as run_table2

__all__ = ["Fig5Result", "run", "render"]


@dataclass(frozen=True)
class Fig5Result:
    """Fig. 5 data (delegates to the Table II computation)."""

    table2: Table2Result


def run(**kwargs) -> Fig5Result:
    """Compute the throughput data (accepts :func:`table2.run` arguments)."""
    return Fig5Result(table2=run_table2(**kwargs))


def _paper_real_mbps(row) -> float | None:
    for paper in PAPER_TABLE2:
        if (
            paper.resources == row.resources
            and paper.platform == row.platform
            and paper.strategy == row.strategy
        ):
            return paper.real_mbps
    return None


def render(result: Fig5Result, width: int = 50) -> str:
    """Render throughput bars grouped by platform/configuration."""
    rows = result.table2.rows
    max_mbps = max(row.real_mbps for row in rows)
    blocks = []
    seen = []
    for row in rows:
        key = (row.platform, row.resources)
        if key not in seen:
            seen.append(key)
            blocks.append("")
            blocks.append(
                f"Fig. 5 — {row.platform}, R={row.resources} "
                "(information throughput, Mb/s)"
            )
        bar = "#" * max(1, int(round(row.real_mbps / max_mbps * width)))
        paper = _paper_real_mbps(row)
        paper_str = f"(paper real: {paper:5.1f})" if paper is not None else ""
        blocks.append(
            f"  {get_info(row.strategy).display_name:<10} "
            f"{bar:<{width}} {row.real_mbps:6.1f} {paper_str}"
        )
    return "\n".join(blocks).strip("\n")
