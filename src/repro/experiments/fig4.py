"""Fig. 4 — strategy execution times for growing core counts.

The paper fixes the chain length and sweeps the budget over
``(20 i, 20 i), i = 1..8``: the greedy strategies stay mostly flat (the
binary search only gains a few iterations) while HeRAD's cost grows roughly
with ``b * l * (b + l)`` — e.g. 1.72 s to 6.38 s going from (100, 100) to
(160, 160) in the paper's C++ (a 3.7x time increase for 1.6x resources).

Defaults are scaled down for pure Python (see the Fig. 3 note); paper-scale
sweeps are available through the arguments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..analysis.tables import render_table
from ..core.registry import get_info
from ..core.types import Resources
from .common import PAPER_STATELESS_RATIOS, TimingPoint, time_strategy

# PAPER_BUDGETS: documentary constant (the paper's full Fig. 4 sweep),
# kept importable for reproduction even though no shipped code runs it.
__all__ = [  # lint: ignore[dead-public-symbol]
    "Fig4Result",
    "run",
    "render",
    "DEFAULT_BUDGETS",
    "PAPER_BUDGETS",
]

#: Scaled-down default sweep.
DEFAULT_BUDGETS: tuple[Resources, ...] = tuple(
    Resources(10 * i, 10 * i) for i in range(1, 5)
)

#: The paper's sweep.
PAPER_BUDGETS: tuple[Resources, ...] = tuple(
    Resources(20 * i, 20 * i) for i in range(1, 9)
)


@dataclass(frozen=True)
class Fig4Result:
    """Execution-time measurements over core budgets."""

    points: tuple[TimingPoint, ...]
    num_tasks: int


def run(
    budgets: Sequence[Resources] = DEFAULT_BUDGETS,
    num_tasks: int = 20,
    stateless_ratios: Sequence[float] = PAPER_STATELESS_RATIOS,
    strategies: Sequence[str] = ("fertac", "2catac", "herad", "otac_b", "otac_l"),
    num_chains: int = 50,
    seed: int = 0,
) -> Fig4Result:
    """Measure execution times over the budget sweep.

    Args:
        budgets: core budgets to sweep.
        num_tasks: fixed chain length (paper: up to 160; default 20).
        stateless_ratios: SR scenarios.
        strategies: strategies to time.
        num_chains: chains averaged per point (paper: 50).
        seed: chain stream seed.
    """
    points = []
    for resources in budgets:
        for sr in stateless_ratios:
            for strategy in strategies:
                points.append(
                    time_strategy(
                        strategy,
                        resources,
                        sr,
                        num_tasks,
                        num_chains=num_chains,
                        seed=seed,
                    )
                )
    return Fig4Result(points=tuple(points), num_tasks=num_tasks)


def render(result: Fig4Result) -> str:
    """Render the timing sweep as a table (microseconds)."""
    rows = [
        [
            get_info(point.strategy).display_name,
            f"{point.stateless_ratio:.1f}",
            str(point.resources),
            f"{point.mean_microseconds:,.0f}",
        ]
        for point in result.points
    ]
    return render_table(
        ["Strategy", "SR", "R=(b,l)", "mean time (us)"],
        rows,
        title=f"Fig. 4 — execution times at n={result.num_tasks} tasks",
    )
