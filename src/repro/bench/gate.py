"""The perf-regression gate: tolerance checks over bench report JSON.

A bench report is a nested JSON document (``BENCH_engine.json``); a
tolerance file (``benchmarks/tolerances.json``) lists *checks*, each naming
one metric by dotted path and one judgment kind.  The gate philosophy,
shaped by the fact that CI hardware is not the baseline's hardware:

* ``flag_false`` — correctness flags (``engine_vs_serial_mismatch``,
  ``kernel_vs_python.mismatch``): hard-fail if truthy, no tolerance.  A
  perf gate that waves through wrong answers is worse than none.
* ``higher_better`` / ``lower_better`` ratio metrics (speedups, hit rates):
  *same-run* ratios divide out the machine, so they gate tightly —
  ``candidate >= baseline * min_factor`` (resp. ``<=`` ``max_factor``).
* absolute wall times: machine- and noise-dependent, so they carry both a
  generous factor and an ``abs_slack`` floor — differences smaller than the
  slack never fail, which keeps microsecond-scale metrics from flapping.

Metrics present in the baseline but missing from the candidate fail (a
silently vanished scenario is a regression of the bench itself); metrics
missing from the *baseline* are skipped (new scenarios must not require a
baseline refresh in the same change).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..core.errors import InvalidParameterError

__all__ = [
    "Check",
    "CheckResult",
    "load_report",
    "load_tolerances",
    "lookup",
    "evaluate",
    "render_results",
    "seeded_slowdown",
    "compare_files",
]

_KINDS = ("flag_false", "higher_better", "lower_better")


@dataclass(frozen=True, slots=True)
class Check:
    """One tolerance entry: a metric path and how to judge it.

    ``requires_cores`` guards scaling checks: a speedup assertion judged on
    a single-core runner measures scheduler noise, not scaling, and would
    *pass vacuously* whenever the pinned-down candidate happens to tie the
    baseline.  The gate instead skips the check — explicitly, in the
    rendered output — when the candidate's recorded ``machine.cpu_affinity``
    is below the requirement (or absent: no evidence of cores is treated as
    one core).
    """

    metric: str
    kind: str
    min_factor: float | None = None
    max_factor: float | None = None
    abs_slack: float = 0.0
    requires_cores: int | None = None

    def __post_init__(self) -> None:
        if self.requires_cores is not None and self.requires_cores < 1:
            raise InvalidParameterError(
                f"check {self.metric!r}: requires_cores must be >= 1, got "
                f"{self.requires_cores}"
            )
        if self.kind not in _KINDS:
            raise InvalidParameterError(
                f"unknown check kind {self.kind!r} for {self.metric!r}; "
                f"available: {_KINDS}"
            )
        if self.kind == "higher_better" and self.min_factor is None:
            raise InvalidParameterError(
                f"check {self.metric!r}: higher_better requires min_factor"
            )
        if self.kind == "lower_better" and self.max_factor is None:
            raise InvalidParameterError(
                f"check {self.metric!r}: lower_better requires max_factor"
            )


@dataclass(frozen=True, slots=True)
class CheckResult:
    """Verdict of one check against one (baseline, candidate) report pair."""

    check: Check
    baseline: Any
    candidate: Any
    passed: bool
    detail: str


def load_report(path: "str | Path") -> dict[str, Any]:
    """Parse a bench report; raises InvalidParameterError on bad input."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise InvalidParameterError(f"cannot read bench report {path}: {exc}")
    except json.JSONDecodeError as exc:
        raise InvalidParameterError(f"bench report {path} is not JSON: {exc}")
    if not isinstance(document, dict):
        raise InvalidParameterError(
            f"bench report {path} must be a JSON object, got "
            f"{type(document).__name__}"
        )
    return document


def load_tolerances(path: "str | Path") -> tuple[Check, ...]:
    """Parse a tolerance file into checks (schema errors raise)."""
    document = load_report(path)
    entries = document.get("checks")
    if not isinstance(entries, list) or not entries:
        raise InvalidParameterError(
            f"tolerance file {path} needs a non-empty 'checks' list"
        )
    checks: list[Check] = []
    for entry in entries:
        if not isinstance(entry, dict) or "metric" not in entry or "kind" not in entry:
            raise InvalidParameterError(
                f"tolerance file {path}: every check needs 'metric' and "
                f"'kind', got {entry!r}"
            )
        checks.append(
            Check(
                metric=str(entry["metric"]),
                kind=str(entry["kind"]),
                min_factor=entry.get("min_factor"),
                max_factor=entry.get("max_factor"),
                abs_slack=float(entry.get("abs_slack", 0.0)),
                requires_cores=(
                    None
                    if entry.get("requires_cores") is None
                    else int(entry["requires_cores"])
                ),
            )
        )
    return tuple(checks)


def lookup(report: dict[str, Any], dotted: str) -> Any:
    """Walk a dotted path into nested dicts; ``None`` when absent."""
    node: Any = report
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def _judge(check: Check, baseline: Any, candidate: Any) -> tuple[bool, str]:
    if check.kind == "flag_false":
        if candidate:
            return False, f"flag is {candidate!r}, must be falsy"
        return True, "flag clear"

    if not isinstance(baseline, (int, float)) or isinstance(baseline, bool):
        return False, f"baseline value {baseline!r} is not numeric"
    if not isinstance(candidate, (int, float)) or isinstance(candidate, bool):
        return False, f"candidate value {candidate!r} is not numeric"

    if abs(candidate - baseline) <= check.abs_slack:
        return True, f"within abs_slack {check.abs_slack}"

    if check.kind == "higher_better":
        assert check.min_factor is not None
        floor = baseline * check.min_factor
        if candidate >= floor:
            return True, f"{candidate} >= {floor:.4g} (baseline x {check.min_factor})"
        return False, f"{candidate} < {floor:.4g} (baseline x {check.min_factor})"

    assert check.max_factor is not None
    ceiling = baseline * check.max_factor
    if candidate <= ceiling:
        return True, f"{candidate} <= {ceiling:.4g} (baseline x {check.max_factor})"
    return False, f"{candidate} > {ceiling:.4g} (baseline x {check.max_factor})"


def evaluate(
    baseline: dict[str, Any],
    candidate: dict[str, Any],
    checks: tuple[Check, ...],
) -> tuple[CheckResult, ...]:
    """Judge every check; baseline-missing metrics skip, candidate-missing fail."""
    results: list[CheckResult] = []
    for check in checks:
        base_value = lookup(baseline, check.metric)
        cand_value = lookup(candidate, check.metric)
        if check.requires_cores is not None:
            affinity = lookup(candidate, "machine.cpu_affinity")
            cores = (
                int(affinity)
                if isinstance(affinity, (int, float))
                and not isinstance(affinity, bool)
                else 1
            )
            if cores < check.requires_cores:
                results.append(
                    CheckResult(
                        check=check,
                        baseline=base_value,
                        candidate=cand_value,
                        passed=True,
                        detail=f"skipped: candidate ran on {cores} usable "
                        f"core(s), check requires {check.requires_cores}",
                    )
                )
                continue
        if check.kind != "flag_false" and base_value is None:
            results.append(
                CheckResult(
                    check=check,
                    baseline=None,
                    candidate=cand_value,
                    passed=True,
                    detail="not in baseline (skipped; refresh the baseline "
                    "to start gating it)",
                )
            )
            continue
        if cand_value is None:
            results.append(
                CheckResult(
                    check=check,
                    baseline=base_value,
                    candidate=None,
                    passed=False,
                    detail="missing from candidate report",
                )
            )
            continue
        passed, detail = _judge(check, base_value, cand_value)
        results.append(
            CheckResult(
                check=check,
                baseline=base_value,
                candidate=cand_value,
                passed=passed,
                detail=detail,
            )
        )
    return tuple(results)


def render_results(results: tuple[CheckResult, ...]) -> str:
    """Human-readable verdict table (one line per check, failures flagged)."""
    lines = ["== bench compare =="]
    for result in results:
        mark = "ok  " if result.passed else "FAIL"
        lines.append(
            f"  {mark} {result.check.metric}: "
            f"baseline={result.baseline!r} candidate={result.candidate!r} "
            f"({result.detail})"
        )
    failed = sum(1 for result in results if not result.passed)
    lines.append(
        f"{len(results)} checks, {failed} failed"
        if failed
        else f"{len(results)} checks, all passed"
    )
    return "\n".join(lines)


def seeded_slowdown(report: dict[str, Any], factor: float = 2.0) -> dict[str, Any]:
    """A copy of ``report`` with hot-path costs scaled by ``factor``.

    The gate's sensitivity self-test: wall times of the parallel, replay,
    kernel, and sim scenarios are multiplied and the derived same-run ratios
    recomputed, exactly as if every hot path got ``factor``x slower while
    the serial baseline stayed put.  ``scripts/bench_gate.py`` asserts that
    comparing this against the fresh report exits non-zero.
    """
    seeded: dict[str, Any] = json.loads(json.dumps(report))

    walls = seeded.get("campaign_wall_s", {})
    serial_s = walls.get("serial")
    for name in list(walls):
        if name != "serial":
            walls[name] = walls[name] * factor
    speedups = seeded.get("speedup_vs_serial", {})
    if isinstance(serial_s, (int, float)):
        for name in list(speedups):
            wall = walls.get(name)
            if isinstance(wall, (int, float)) and wall > 0:
                speedups[name] = serial_s / wall

    kernel = seeded.get("kernel_vs_python", {})
    for name, tiers in kernel.get("wall_s", {}).items():
        if "batch" in tiers:
            tiers["batch"] = tiers["batch"] * factor
        python_s = tiers.get("python")
        batch_s = tiers.get("batch")
        if (
            isinstance(python_s, (int, float))
            and isinstance(batch_s, (int, float))
            and batch_s > 0
        ):
            kernel.setdefault("speedup", {})[name] = python_s / batch_s

    scaling = seeded.get("jobs_scaling", {})
    for kernel in ("python", "batch"):
        tier = scaling.get(kernel)
        if not isinstance(tier, dict):
            continue
        serial_s = tier.get("serial_wall_s")
        for name, point in tier.items():
            if not isinstance(point, dict) or "wall_s" not in point:
                continue
            point["wall_s"] = point["wall_s"] * factor
            if isinstance(serial_s, (int, float)) and point["wall_s"] > 0:
                point["speedup"] = serial_s / point["wall_s"]

    sim = seeded.get("sim_scenario", {})
    if isinstance(sim.get("wall_s"), (int, float)):
        sim["wall_s"] = sim["wall_s"] * factor
        if isinstance(sim.get("events"), (int, float)) and sim["wall_s"] > 0:
            sim["events_per_s"] = sim["events"] / sim["wall_s"]
    latency = sim.get("resched_latency_ms", {})
    for name in list(latency):
        latency[name] = latency[name] * factor

    for per_strategy in seeded.get("strategy_latency_us", {}).values():
        for name in list(per_strategy):
            per_strategy[name] = per_strategy[name] * factor

    return seeded


def compare_files(
    baseline_path: "str | Path",
    candidate_path: "str | Path",
    tolerance_path: "str | Path",
) -> tuple[CheckResult, ...]:
    """File-level convenience wrapper used by the CLI and the gate script."""
    return evaluate(
        load_report(baseline_path),
        load_report(candidate_path),
        load_tolerances(tolerance_path),
    )
