"""Noise-aware performance-regression gating over ``BENCH_engine.json``.

The bench trajectory (``scripts/bench_trajectory.py``) measures; this
package *judges*: :func:`~repro.bench.gate.evaluate` diffs a fresh report
against a committed baseline under per-metric tolerances, and the
``repro bench compare`` CLI turns the verdict into an exit code CI can gate
on.  See DESIGN.md §15 for the tolerance philosophy (tight on same-run
ratios, loose-with-slack on absolute wall times, hard-fail on mismatch
flags).
"""

from .gate import (
    Check,
    CheckResult,
    compare_files,
    evaluate,
    load_report,
    load_tolerances,
    lookup,
    render_results,
    seeded_slowdown,
)

__all__ = [
    "Check",
    "CheckResult",
    "compare_files",
    "evaluate",
    "load_report",
    "load_tolerances",
    "lookup",
    "render_results",
    "seeded_slowdown",
]
