"""Module entry point: ``python -m repro <experiment>``."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
