"""Platform state machine: which cores are up, over simulated time.

The simulator's platform is the paper's ``k``-type budget with a failure
overlay: per type, some cores are *down*.  :class:`PlatformState` applies
``core_failure`` / ``core_recovery`` events (clamped — failing more cores
than remain up takes down what is left, recovering more than are down
restores what is down), exposes the currently *available* budget as a
:class:`~repro.core.types.Resources`, and keeps an exact per-core down
timeline for the Chrome-trace export.

Concrete core identities are deterministic by convention: cores of type
``v`` are numbered ``0 .. total_v - 1``; failures take the highest-numbered
up core first and recoveries bring back the lowest-numbered down core
first.  The convention is arbitrary but fixed — two runs of the same trace
produce identical timelines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.errors import InvalidParameterError
from ..core.types import Resources

__all__ = ["DownInterval", "PlatformState"]


@dataclass(frozen=True, slots=True)
class DownInterval:
    """One contiguous down period of one concrete core.

    Attributes:
        core_type: the core's platform type index.
        core_index: the core's number within its type.
        start: simulated time the core went down.
        end: simulated time it came back (``inf`` while still down).
    """

    core_type: int
    core_index: int
    start: float
    end: float


class PlatformState:
    """Mutable per-type availability derived from a failure event stream."""

    __slots__ = ("_total", "_down", "_open", "_closed", "_clamped")

    def __init__(self, counts: "Sequence[int] | Iterable[int]") -> None:
        total = tuple(int(c) for c in counts)
        if not total or any(c < 0 for c in total) or sum(total) < 1:
            raise InvalidParameterError(f"invalid platform counts {total}")
        self._total = total
        # Down cores per type, as a sorted list of concrete core numbers.
        self._down: "list[list[int]]" = [[] for _ in total]
        # Open down intervals: (type, core) -> start time.
        self._open: "dict[tuple[int, int], float]" = {}
        self._closed: "list[DownInterval]" = []
        self._clamped: int = 0

    # -- event application ---------------------------------------------------

    def fail(self, core_type: int, cores: int, time: float) -> int:
        """Take ``cores`` cores of ``core_type`` down; returns how many
        actually went down (clamped to the cores still up)."""
        self._check_type(core_type)
        down = self._down[core_type]
        down_now = set(down)
        up = [c for c in range(self._total[core_type]) if c not in down_now]
        victims = up[-cores:] if cores < len(up) else up
        if len(victims) < cores:
            self._clamped += 1
        for core in sorted(victims, reverse=True):
            down.append(core)
            self._open[(core_type, core)] = time
        down.sort()
        return len(victims)

    def recover(self, core_type: int, cores: int, time: float) -> int:
        """Bring ``cores`` cores of ``core_type`` back; returns how many
        actually came back (clamped to the cores currently down)."""
        self._check_type(core_type)
        down = self._down[core_type]
        revived = down[:cores]
        if len(revived) < cores:
            self._clamped += 1
        for core in revived:
            start = self._open.pop((core_type, core))
            self._closed.append(
                DownInterval(core_type, core, start, time)
            )
        del down[: len(revived)]
        return len(revived)

    def _check_type(self, core_type: int) -> None:
        if not (0 <= core_type < len(self._total)):
            raise InvalidParameterError(
                f"core_type {core_type} outside the platform's "
                f"{len(self._total)} types"
            )

    # -- observation ---------------------------------------------------------

    @property
    def total(self) -> "tuple[int, ...]":
        """Healthy per-type core counts."""
        return self._total

    @property
    def clamp_events(self) -> int:
        """How many fail/recover calls were clamped (over-specified)."""
        return self._clamped

    def available_counts(self) -> "tuple[int, ...]":
        """Per-type count of cores currently up."""
        return tuple(
            total - len(down)
            for total, down in zip(self._total, self._down)
        )

    def available(self) -> Resources:
        """The currently available budget (possibly all-zero)."""
        return Resources.from_counts(self.available_counts())

    def availability(self) -> float:
        """Fraction of all cores currently up, in ``[0, 1]``."""
        return float(sum(self.available_counts())) / float(sum(self._total))

    def is_up(self, core_type: int, core_index: int) -> bool:
        """Whether one concrete core is currently up."""
        self._check_type(core_type)
        return core_index not in self._down[core_type]

    def down_intervals(self, end_time: float) -> "tuple[DownInterval, ...]":
        """Every down interval so far, open ones truncated at ``end_time``.

        Sorted by ``(core_type, core_index, start)`` — a deterministic,
        render-ready timeline for the per-core Chrome-trace lanes.
        """
        intervals = list(self._closed)
        for (core_type, core), start in self._open.items():
            intervals.append(DownInterval(core_type, core, start, end_time))
        intervals.sort(
            key=lambda d: (d.core_type, d.core_index, d.start, d.end)
        )
        return tuple(intervals)
