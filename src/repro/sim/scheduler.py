"""Deadline-bounded incremental rescheduling with a degradation ladder.

On every platform or workload change the simulator asks
:class:`IncrementalScheduler` for a fresh assignment of every live chain.
The scheduler's contract mirrors the engine's resilience ladder
(process → thread → serial, :mod:`repro.engine.resilience`): *some* answer
is always produced, and quality degrades in explicit, counted steps:

1. **keep** — nothing about this chain's instance changed (same allocation,
   same weights): the previous schedule stands.  Zero cost.
2. **warm** — re-fit the previous solution's stage structure to the new
   allocation (:func:`repro.core.warmstart.warm_start`).  Accepted only
   when the warm period is within the analytic feasibility upper bound of
   a cold solve (:func:`repro.core.certify.optimality_bracket`) — the
   "no worse than the proven heuristic bound" gate — and, when auditing
   is on, certified by :func:`repro.core.certify.certify_outcome`.
3. **full** — a cold solve through the strategy registry.
4. **reuse** — the last known-feasible schedule, if it still fits the new
   allocation (the platform changed under the chain, but not enough to
   invalidate the old assignment).
5. **shed** — the chain is explicitly dropped from the platform until
   capacity returns.  Shed chains stay registered and are re-admitted in
   arrival order by the next rescheduling round with room for them.

The *rescheduling deadline* is expressed in deterministic modeled cost
units — a warm start costs :data:`WARM_COST`, a cold solve costs the
chain's task count — never in wall-clock time, so a loaded machine cannot
change scheduling decisions (wall-clock rescheduling latency is observed
into histograms by the simulator, but no control flow reads it).  When the
per-event budget runs out, remaining chains degrade to **reuse** or
**shed** instead of solving: the system is never left scheduleless, it is
left *honest* about what it dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core.binary_search import ScheduleOutcome
from ..core.bounds import period_bounds
from ..core.certify import certify_outcome, optimality_bracket
from ..core.chain_stats import ChainProfile
from ..core.registry import get_info
from ..core.solution import Solution
from ..core.task import TaskChain
from ..core.types import Resources
from ..core.warmstart import warm_start
from ..obs.metrics import MetricsLike, NullMetrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.registry import StrategyInfo

__all__ = [
    "WARM_COST",
    "RESCHED_ACTIONS",
    "ChainDecision",
    "ChainRecord",
    "IncrementalScheduler",
]

#: Modeled cost of a warm-start attempt, in deadline units.
WARM_COST: float = 1.0

#: Every action the degradation ladder can take, best first.
RESCHED_ACTIONS: tuple[str, ...] = ("keep", "warm", "full", "reuse", "shed")

#: Relative slack when gating a warm period against the analytic upper
#: bound (the bound and the period come from different float paths).
_BOUND_RTOL: float = 1e-9


@dataclass(frozen=True, slots=True)
class ChainDecision:
    """One chain's outcome of one rescheduling round.

    Attributes:
        name: the chain's name.
        action: ladder rung taken (one of :data:`RESCHED_ACTIONS`).
        counts: per-type cores allocated to the chain (all zero when shed).
        period: achieved period (``None`` when shed).
        triplets: the solution as ``(start, end, cores, type)`` rows
            (empty when shed) — enough to rebuild the schedule on replay.
        cost: modeled deadline units this decision consumed.
    """

    name: str
    action: str
    counts: tuple[int, ...]
    period: "float | None"
    triplets: tuple[tuple[int, int, int, int], ...]
    cost: float


@dataclass(slots=True)
class ChainRecord:
    """A registered chain and its last known schedule."""

    chain: TaskChain
    profile: ChainProfile
    seq: int
    revision: int = 0
    outcome: "ScheduleOutcome | None" = None
    counts: "tuple[int, ...] | None" = None
    solved_revision: int = -1


def _triplets_of(outcome: ScheduleOutcome) -> "tuple[tuple[int, int, int, int], ...]":
    return tuple(
        (stage.start, stage.end, stage.cores, int(stage.core_type))
        for stage in outcome.solution.stages
    )


class IncrementalScheduler:
    """Keeps every live chain feasibly scheduled across platform changes.

    Args:
        strategy: registry name of the cold-solve strategy (must accept any
            budget shape the trace can produce; the default ``2catac``
            does).
        deadline: rescheduling budget per event, in modeled cost units
            (``None`` = unbounded; every chain may cold-solve).
        certify: audit warm-started and cold solutions with the
            independent certificate checker.
        metrics: metrics sink for the ladder counters (deterministic
            values only).
    """

    def __init__(
        self,
        strategy: str = "2catac",
        deadline: "float | None" = None,
        certify: bool = False,
        metrics: "MetricsLike | None" = None,
    ) -> None:
        if deadline is not None and deadline < 0:
            raise ValueError(f"deadline must be >= 0, got {deadline}")
        self._info: "StrategyInfo" = get_info(strategy)
        self.deadline = deadline
        self.certify = certify
        self.metrics: MetricsLike = metrics if metrics is not None else NullMetrics()
        self._records: "dict[str, ChainRecord]" = {}
        self._admitted: int = 0

    # -- workload registration ----------------------------------------------

    @property
    def chains(self) -> "tuple[str, ...]":
        """Names of every registered chain, in arrival order."""
        ordered = sorted(self._records.values(), key=lambda r: r.seq)
        return tuple(record.chain.name for record in ordered)

    def admit(self, chain: TaskChain) -> None:
        """Register an arriving chain (scheduled on the next round)."""
        if chain.name in self._records:
            raise ValueError(f"chain {chain.name!r} is already registered")
        self._records[chain.name] = ChainRecord(
            chain=chain, profile=ChainProfile(chain), seq=self._admitted
        )
        self._admitted += 1

    def depart(self, name: str) -> None:
        """Remove a departing chain."""
        if name not in self._records:
            raise ValueError(f"chain {name!r} is not registered")
        del self._records[name]

    def mutate(self, chain: TaskChain) -> None:
        """Replace a live chain's weights (matched by name)."""
        record = self._records.get(chain.name)
        if record is None:
            raise ValueError(f"chain {chain.name!r} is not registered")
        record.chain = chain
        record.profile = ChainProfile(chain)
        record.revision += 1

    def schedule_of(self, name: str) -> "ScheduleOutcome | None":
        """The chain's current schedule (``None`` when shed/unscheduled)."""
        return self._records[name].outcome

    # -- allocation ----------------------------------------------------------

    def _allocate(
        self, kept: "list[ChainRecord]", available: Resources
    ) -> "list[list[int]]":
        """Proportional-share split of the available budget across chains.

        Largest-remainder apportionment on type-0 load per type, then a
        min-one-core fix-up so every kept chain can hold at least a
        single-stage schedule.  Deterministic: quotas, remainders, and all
        tie-breaks resolve by arrival order.
        """
        ktype = available.ktype
        loads = [record.profile.total_weight(0) for record in kept]
        total_load = sum(loads)
        shares = [
            load / total_load if total_load > 0 else 1.0 / len(kept)
            for load in loads
        ]
        counts: "list[list[int]]" = [[0] * ktype for _ in kept]
        for v in range(ktype):
            budget = available.count(v)
            quotas = [share * budget for share in shares]
            base = [int(q) for q in quotas]
            spare = budget - sum(base)
            order = sorted(
                range(len(kept)),
                key=lambda i: (-(quotas[i] - base[i]), kept[i].seq),
            )
            for i in order[:spare]:
                base[i] += 1
            for i, b in enumerate(base):
                counts[i][v] = b
        # Min-one-core fix-up: donate from the richest chain (earliest on
        # ties), taking from its most-allocated type.
        for i, c in enumerate(counts):
            while sum(c) == 0:
                donor = max(
                    range(len(kept)),
                    key=lambda j: (sum(counts[j]), -kept[j].seq),
                )
                if sum(counts[donor]) <= 1:
                    break  # cannot happen when len(kept) <= total cores
                v = max(range(ktype), key=lambda t: counts[donor][t])
                counts[donor][v] -= 1
                c[v] += 1
        return counts

    # -- the ladder ----------------------------------------------------------

    def reschedule(self, available: Resources) -> "tuple[ChainDecision, ...]":
        """Produce a feasible decision for every registered chain.

        Returns one :class:`ChainDecision` per chain in arrival order;
        every chain is either scheduled (with a certified-feasible
        solution) or explicitly shed.  Never raises on capacity loss.
        """
        ordered = sorted(self._records.values(), key=lambda r: r.seq)
        if not ordered:
            return ()
        capacity = available.total
        kept = ordered[: min(len(ordered), capacity)]
        shed = ordered[len(kept):]
        decisions: "list[ChainDecision]" = []
        budget = float("inf") if self.deadline is None else self.deadline
        allocations = self._allocate(kept, available) if kept else []
        for record, alloc_counts in zip(kept, allocations):
            allocation = Resources.from_counts(alloc_counts)
            decision, budget = self._ladder(record, allocation, budget)
            decisions.append(decision)
        for record in shed:
            decisions.append(self._shed(record))
        self.metrics.set_gauge("sim.active_chains", float(len(kept)))
        decisions.sort(key=lambda d: self._records[d.name].seq)
        return tuple(decisions)

    def _ladder(
        self, record: ChainRecord, allocation: Resources, budget: float
    ) -> "tuple[ChainDecision, float]":
        counts = allocation.counts
        unchanged = (
            record.outcome is not None
            and record.counts == counts
            and record.solved_revision == record.revision
        )
        if unchanged:
            assert record.outcome is not None
            return self._decide(record, "keep", counts, record.outcome, 0.0), budget

        # Rung 2: warm start from the previous structure.
        if record.outcome is not None and budget >= WARM_COST:
            warm = warm_start(record.outcome, record.profile, allocation)
            if warm is not None and self._within_bound(warm, record, allocation):
                self._audit(warm, record, allocation)
                return (
                    self._decide(record, "warm", counts, warm, WARM_COST),
                    budget - WARM_COST,
                )
            budget -= WARM_COST  # the failed attempt still consumed budget

        # Rung 3: full cold solve.
        full_cost = float(record.profile.n)
        if budget >= full_cost and allocation.total > 0:
            outcome = self._info.func(record.profile, allocation)
            if outcome.feasible:
                self._audit(outcome, record, allocation)
                return (
                    self._decide(record, "full", counts, outcome, full_cost),
                    budget - full_cost,
                )
            budget -= full_cost

        # Rung 4: reuse the last known-feasible schedule if it still fits.
        if (
            record.outcome is not None
            and record.solved_revision == record.revision
            and record.outcome.solution.is_valid(record.profile, allocation)
        ):
            return self._decide(record, "reuse", counts, record.outcome, 0.0), budget

        # Rung 5: explicit shed.
        return self._shed(record), budget

    def _within_bound(
        self, warm: ScheduleOutcome, record: ChainRecord, allocation: Resources
    ) -> bool:
        """The warm-start quality gate: no worse than a cold solve's proven
        feasibility bound."""
        if allocation.total <= 0:
            return False
        _, upper = optimality_bracket(record.profile, allocation)
        return warm.period <= upper * (1.0 + _BOUND_RTOL)

    def _audit(
        self, outcome: ScheduleOutcome, record: ChainRecord, allocation: Resources
    ) -> None:
        if self.certify:
            certify_outcome(
                outcome,
                record.profile,
                allocation,
                optimal=False,
                context=f"sim:{record.chain.name}",
            )

    def _decide(
        self,
        record: ChainRecord,
        action: str,
        counts: "tuple[int, ...]",
        outcome: ScheduleOutcome,
        cost: float,
    ) -> ChainDecision:
        record.outcome = outcome
        record.counts = counts
        record.solved_revision = record.revision
        self.metrics.add(f"sim.resched.{action}")
        return ChainDecision(
            name=record.chain.name,
            action=action,
            counts=counts,
            period=outcome.period,
            triplets=_triplets_of(outcome),
            cost=cost,
        )

    def _shed(self, record: ChainRecord) -> ChainDecision:
        record.outcome = None
        record.counts = None
        record.solved_revision = -1
        self.metrics.add("sim.resched.shed")
        return ChainDecision(
            name=record.chain.name,
            action="shed",
            counts=(),
            period=None,
            triplets=(),
            cost=0.0,
        )

    # -- replay --------------------------------------------------------------

    def apply_decision(self, decision: ChainDecision) -> None:
        """Apply a journaled decision without re-solving (resume replay).

        Rebuilds the chain's schedule from the recorded triplets and
        advances the ladder counters exactly as the live run did, so a
        resumed simulation's metrics are bitwise identical.
        """
        record = self._records[decision.name]
        self.metrics.add(f"sim.resched.{decision.action}")
        if decision.action == "shed":
            record.outcome = None
            record.counts = None
            record.solved_revision = -1
            return
        solution = Solution.from_triplets(decision.triplets)
        assert decision.period is not None
        allocation = Resources.from_counts(decision.counts)
        record.outcome = ScheduleOutcome(
            solution=solution,
            period=decision.period,
            iterations=0,
            bounds=period_bounds(record.profile, allocation),
            probes=(),
        )
        record.counts = decision.counts
        record.solved_revision = record.revision
