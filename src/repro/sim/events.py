"""Deterministic event core of the online simulator.

Two pieces live here:

* :class:`SimEvent` — one timed change to the simulated world: a chain
  arriving, departing, or mutating its weights, or cores of one type
  failing / recovering.  Events are frozen values so traces are hashable
  and picklable.

* :class:`EventQueue` — the deterministic priority queue every simulation
  loop in the project drains.  Heap entries are ``(time, *tiebreak, seq,
  payload)``: the caller-supplied ``tiebreak`` tuple resolves simultaneous
  events *by policy* (e.g. the dynamic-scheduler baseline orders completions
  by ``(core, frame, task)``), and the monotonically increasing ``seq``
  counter both breaks remaining ties by insertion order and guarantees the
  payload itself is never compared — so payloads need not be orderable.
  Pop order is therefore a pure function of the push sequence: two runs
  that push the same entries pop them identically, which is the bitwise
  determinism the simulator tests demand.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Generic, TypeVar

from ..core.errors import InvalidParameterError
from ..core.task import TaskChain

__all__ = ["EVENT_KINDS", "SimEvent", "EventQueue"]

#: Recognized simulation event kinds.
EVENT_KINDS: tuple[str, ...] = (
    "chain_arrival",
    "chain_departure",
    "chain_mutation",
    "core_failure",
    "core_recovery",
)

PayloadT = TypeVar("PayloadT")


@dataclass(frozen=True, slots=True)
class SimEvent:
    """One timed change to the simulated platform or workload.

    Attributes:
        kind: one of :data:`EVENT_KINDS`.
        time: simulated time the event takes effect (non-negative).
        chain: the arriving chain (``chain_arrival``) or the replacement
            chain carrying the new weights (``chain_mutation``; matched to
            the live chain by name).
        name: the affected chain's name (departures and mutations; filled
            from ``chain.name`` automatically when a chain is given).
        core_type: platform type index of a core event.
        cores: number of cores a core event takes down / brings back.
    """

    kind: str
    time: float
    chain: "TaskChain | None" = None
    name: str = ""
    core_type: int = 0
    cores: int = 1

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise InvalidParameterError(
                f"unknown event kind {self.kind!r}; available: {EVENT_KINDS}"
            )
        if self.time < 0:
            raise InvalidParameterError(f"time must be >= 0, got {self.time}")
        if self.kind in ("chain_arrival", "chain_mutation"):
            if self.chain is None:
                raise InvalidParameterError(f"{self.kind} requires a chain")
            if not self.name:
                object.__setattr__(self, "name", self.chain.name)
        elif self.kind == "chain_departure":
            if not self.name:
                raise InvalidParameterError("chain_departure requires a name")
        else:  # core_failure / core_recovery
            if self.core_type < 0:
                raise InvalidParameterError(
                    f"core_type must be >= 0, got {self.core_type}"
                )
            if self.cores < 1:
                raise InvalidParameterError(
                    f"cores must be >= 1, got {self.cores}"
                )


class EventQueue(Generic[PayloadT]):
    """Deterministic min-heap of timed payloads.

    Entries order by ``(time, *tiebreak, seq)`` where ``seq`` is the push
    counter.  All pushes into one queue must use tiebreak tuples of the
    same length (heterogeneous lengths would compare a tiebreak element
    against a ``seq`` integer).
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: "list[tuple[object, ...]]" = []
        self._seq: int = 0

    def push(
        self,
        time: float,
        payload: PayloadT,
        tiebreak: "tuple[float | int, ...]" = (),
    ) -> None:
        """Insert ``payload`` at ``time`` (ties resolved by ``tiebreak``,
        then insertion order)."""
        heapq.heappush(self._heap, (time, *tiebreak, self._seq, payload))
        self._seq += 1

    def pop(self) -> "tuple[float, PayloadT]":
        """Remove and return the earliest ``(time, payload)`` entry."""
        if not self._heap:
            raise InvalidParameterError("pop from an empty EventQueue")
        entry = heapq.heappop(self._heap)
        time = entry[0]
        payload = entry[-1]
        assert isinstance(time, (int, float))
        return float(time), payload  # type: ignore[return-value]

    def peek_time(self) -> float:
        """Time of the earliest entry (queue must be non-empty)."""
        if not self._heap:
            raise InvalidParameterError("peek on an empty EventQueue")
        time = self._heap[0][0]
        assert isinstance(time, (int, float))
        return float(time)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
