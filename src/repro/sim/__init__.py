"""Online fault-tolerant simulation of partially-replicable task chains.

``repro.sim`` is the repo's discrete-event layer: chains arrive, depart and
mutate while cores fail and recover, and after *every* event the
:class:`IncrementalScheduler` re-establishes a feasible schedule for each
surviving chain within a configurable rescheduling deadline — degrading
gracefully (warm start → full re-solve → reuse → shed) but never leaving a
chain scheduleless.  See ``DESIGN.md`` §14.

The package splits into:

* :mod:`~repro.sim.events` — the deterministic event queue and event model;
* :mod:`~repro.sim.trace` — the on-disk trace format (JSONL, versioned);
* :mod:`~repro.sim.generators` — seeded bursty / diurnal / failure-storm
  workload generators;
* :mod:`~repro.sim.platform_state` — which cores are up, over time;
* :mod:`~repro.sim.scheduler` — the degradation-ladder scheduler;
* :mod:`~repro.sim.journal` — the append-only decision journal
  (interrupt + resume);
* :mod:`~repro.sim.simulator` — the event loop, invariants, and the
  Chrome-trace export.
"""

from .events import EVENT_KINDS, EventQueue, SimEvent
from .generators import bursty_trace, diurnal_trace, failure_storm_trace
from .journal import EventRecord, SimJournal
from .platform_state import DownInterval, PlatformState
from .scheduler import (
    RESCHED_ACTIONS,
    WARM_COST,
    ChainDecision,
    IncrementalScheduler,
)
from .simulator import SimConfig, SimResult, sim_spans, simulate, write_sim_trace
from .trace import TRACE_FORMAT, SimTrace

__all__ = [
    "EVENT_KINDS",
    "RESCHED_ACTIONS",
    "TRACE_FORMAT",
    "WARM_COST",
    "ChainDecision",
    "DownInterval",
    "EventQueue",
    "EventRecord",
    "IncrementalScheduler",
    "PlatformState",
    "SimConfig",
    "SimEvent",
    "SimJournal",
    "SimResult",
    "SimTrace",
    "bursty_trace",
    "diurnal_trace",
    "failure_storm_trace",
    "sim_spans",
    "simulate",
    "write_sim_trace",
]
