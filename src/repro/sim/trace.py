"""On-disk trace format of the online simulator.

A :class:`SimTrace` is the complete, self-contained input of one simulation:
the initial platform (per-type core counts) plus an ordered list of
:class:`~repro.sim.events.SimEvent`.  Traces serialize to JSONL — a header
line followed by one line per event — so they diff cleanly, stream, and
survive torn tails the same way the engine's checkpoint journal does.

Arrival and mutation events embed the full chain (per-type weight matrix +
replicability flags), making a trace file reproducible without the
generator that produced it.  :meth:`SimTrace.from_fault_plan` converts the
timed ``core_failure`` / ``core_recovery`` specs of an engine
:class:`~repro.engine.faults.FaultPlan` into platform events, so one plan
can drive the batch engine's per-cell faults and the simulator's platform
dynamics from a single description.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable

from ..core.errors import InvalidParameterError
from ..core.task import TaskChain
from .events import SimEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.faults import FaultPlan

__all__ = ["TRACE_FORMAT", "SimTrace", "chain_to_payload", "chain_from_payload"]

#: Format tag written in the trace header line.
TRACE_FORMAT: str = "repro-sim-trace/1"


def chain_to_payload(chain: TaskChain) -> "dict[str, Any]":
    """Serialize a chain as a JSON-safe weight matrix + flags."""
    ktype = chain.ktype
    return {
        "name": chain.name,
        "weights": [
            [task.weight(v) for task in chain.tasks] for v in range(ktype)
        ],
        "replicable": [bool(task.replicable) for task in chain.tasks],
    }


def chain_from_payload(payload: "dict[str, Any]") -> TaskChain:
    """Rebuild a chain from :func:`chain_to_payload` output."""
    return TaskChain.from_weight_matrix(
        payload["weights"],
        payload["replicable"],
        name=str(payload.get("name", "chain")),
    )


def _event_to_json(event: SimEvent) -> "dict[str, Any]":
    record: "dict[str, Any]" = {"kind": event.kind, "time": event.time}
    if event.kind in ("chain_arrival", "chain_mutation"):
        assert event.chain is not None
        record["chain"] = chain_to_payload(event.chain)
    elif event.kind == "chain_departure":
        record["name"] = event.name
    else:
        record["core_type"] = event.core_type
        record["cores"] = event.cores
    return record


def _event_from_json(record: "dict[str, Any]") -> SimEvent:
    kind = str(record["kind"])
    time = float(record["time"])
    if kind in ("chain_arrival", "chain_mutation"):
        return SimEvent(kind, time, chain=chain_from_payload(record["chain"]))
    if kind == "chain_departure":
        return SimEvent(kind, time, name=str(record["name"]))
    return SimEvent(
        kind,
        time,
        core_type=int(record["core_type"]),
        cores=int(record["cores"]),
    )


@dataclass(frozen=True)
class SimTrace:
    """One complete simulation input.

    Attributes:
        initial_counts: per-type core counts of the healthy platform.
        events: the timed events, in non-decreasing time order.
        name: trace label (carried into reports).
        metadata: free-form generator parameters (seed, kind, ...), kept
            for provenance only — the simulator never reads it.
    """

    initial_counts: tuple[int, ...]
    events: tuple[SimEvent, ...]
    name: str = "trace"
    metadata: "tuple[tuple[str, Any], ...]" = field(default=())

    def __post_init__(self) -> None:
        counts = tuple(int(c) for c in self.initial_counts)
        object.__setattr__(self, "initial_counts", counts)
        object.__setattr__(self, "events", tuple(self.events))
        if len(counts) < 1 or any(c < 0 for c in counts):
            raise InvalidParameterError(
                f"invalid initial platform counts {counts}"
            )
        if sum(counts) < 1:
            raise InvalidParameterError("the initial platform has no cores")
        last = 0.0
        for event in self.events:
            if event.time < last:
                raise InvalidParameterError(
                    "trace events must be in non-decreasing time order; "
                    f"{event.kind} at {event.time} after {last}"
                )
            last = event.time

    @property
    def ktype(self) -> int:
        """Number of platform core types."""
        return len(self.initial_counts)

    @property
    def num_events(self) -> int:
        """Number of events in the trace."""
        return len(self.events)

    # -- serialization -------------------------------------------------------

    def write(self, path: "Path | str") -> Path:
        """Write the trace as JSONL (header line + one line per event)."""
        target = Path(path)
        header = {
            "format": TRACE_FORMAT,
            "name": self.name,
            "initial_counts": list(self.initial_counts),
            "metadata": dict(self.metadata),
        }
        with target.open("w", encoding="utf-8") as handle:
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            for event in self.events:
                handle.write(
                    json.dumps(_event_to_json(event), sort_keys=True) + "\n"
                )
        return target

    @classmethod
    def read(cls, path: "Path | str") -> "SimTrace":
        """Load a trace written by :meth:`write` (torn tails tolerated)."""
        lines = Path(path).read_text(encoding="utf-8").splitlines()
        if not lines:
            raise InvalidParameterError(f"empty trace file {path}")
        header = json.loads(lines[0])
        if header.get("format") != TRACE_FORMAT:
            raise InvalidParameterError(
                f"not a {TRACE_FORMAT} file: {path} "
                f"(format={header.get('format')!r})"
            )
        events = []
        for line in lines[1:]:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                break  # torn final line of an interrupted writer
            events.append(_event_from_json(record))
        return cls(
            initial_counts=tuple(header["initial_counts"]),
            events=tuple(events),
            name=str(header.get("name", "trace")),
            metadata=tuple(sorted(dict(header.get("metadata", {})).items())),
        )

    # -- construction --------------------------------------------------------

    @classmethod
    def from_fault_plan(
        cls,
        plan: "FaultPlan",
        initial_counts: "Iterable[int]",
        events: "Iterable[SimEvent]" = (),
        name: str = "fault-plan",
    ) -> "SimTrace":
        """Build a trace whose platform dynamics come from a fault plan.

        The plan's timed ``core_failure`` / ``core_recovery`` specs (see
        :meth:`~repro.engine.faults.FaultPlan.platform_events`) become
        platform events; ``events`` supplies the workload side (arrivals /
        departures / mutations).  The merge is time-sorted and stable.
        """
        platform = tuple(
            SimEvent(
                spec.kind,
                spec.at,
                core_type=spec.core_type,
                cores=spec.cores,
            )
            for spec in plan.platform_events()
        )
        merged = [(e.time, i, e) for i, e in enumerate((*events, *platform))]
        merged.sort(key=lambda item: (item[0], item[1]))
        return cls(
            initial_counts=tuple(initial_counts),
            events=tuple(e for _, _, e in merged),
            name=name,
        )
