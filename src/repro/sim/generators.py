"""Seeded trace generators: bursty, diurnal, and failure-storm workloads.

Each generator is a pure function of its arguments — the returned
:class:`~repro.sim.trace.SimTrace` is bitwise reproducible from
``(kind, seed, parameters)`` — and draws chains from the paper's synthetic
distribution (:mod:`repro.workloads.synthetic`) with one weight column per
platform type.

* :func:`bursty_trace` — arrivals come in bursts (flash crowds), balanced
  by departures and weight mutations; stresses admission and shedding.
* :func:`diurnal_trace` — the arrival rate follows a day/night sinusoid;
  stresses slow capacity drift and warm-start reuse.
* :func:`failure_storm_trace` — a deterministic storm skeleton: at least
  three *overlapping* core failures over a populated platform, with
  mutations mid-storm and staggered recoveries; the acceptance scenario
  for the degradation ladder (warm → full → shed all exercised).
"""

from __future__ import annotations

import math

import numpy as np

from ..core.errors import InvalidParameterError
from ..workloads.synthetic import GeneratorConfig, random_ktype_chain
from .events import SimEvent
from .trace import SimTrace

__all__ = ["bursty_trace", "diurnal_trace", "failure_storm_trace"]

#: Chain shape used by the generators unless overridden: short chains keep
#: a 10k-event trace solvable in seconds.
SIM_CONFIG = GeneratorConfig(num_tasks=8, stateless_ratio=0.5)


def _check_platform(initial_counts: "tuple[int, ...]") -> int:
    if len(initial_counts) < 2:
        raise InvalidParameterError(
            "sim traces need at least two core types (the chain model "
            f"carries one weight column per type); got {initial_counts}"
        )
    if any(c < 1 for c in initial_counts):
        raise InvalidParameterError(
            f"every type needs at least one core, got {initial_counts}"
        )
    return len(initial_counts)


def bursty_trace(
    num_events: int,
    initial_counts: "tuple[int, ...]" = (4, 4),
    seed: int = 0,
    config: "GeneratorConfig | None" = None,
    burst: int = 6,
    mean_gap: float = 1.0,
    max_active: int = 12,
) -> SimTrace:
    """Flash-crowd workload: arrival bursts, departures, mutations."""
    if num_events < 1:
        raise InvalidParameterError(f"num_events must be >= 1, got {num_events}")
    ktype = _check_platform(tuple(initial_counts))
    cfg = config if config is not None else SIM_CONFIG
    rng = np.random.default_rng(seed)
    events: "list[SimEvent]" = []
    active: "list[str]" = []
    time = 0.0
    born = 0
    while len(events) < num_events:
        time += float(rng.exponential(mean_gap))
        roll = float(rng.random())
        if not active or (roll < 0.45 and len(active) < max_active):
            size = int(rng.integers(1, burst + 1))
            for _ in range(min(size, num_events - len(events))):
                chain = random_ktype_chain(
                    rng, cfg, ktype, name=f"bursty-{seed}-{born}"
                )
                born += 1
                events.append(SimEvent("chain_arrival", time, chain=chain))
                active.append(chain.name)
        elif roll < 0.75 or len(active) >= max_active:
            index = int(rng.integers(len(active)))
            events.append(
                SimEvent("chain_departure", time, name=active.pop(index))
            )
        else:
            index = int(rng.integers(len(active)))
            chain = random_ktype_chain(rng, cfg, ktype, name=active[index])
            events.append(SimEvent("chain_mutation", time, chain=chain))
    return SimTrace(
        initial_counts=tuple(initial_counts),
        events=tuple(events),
        name=f"bursty-{seed}",
        metadata=(("kind", "bursty"), ("num_events", num_events), ("seed", seed)),
    )


def diurnal_trace(
    num_events: int,
    initial_counts: "tuple[int, ...]" = (4, 4),
    seed: int = 0,
    config: "GeneratorConfig | None" = None,
    day: float = 60.0,
    mean_gap: float = 1.0,
    max_active: int = 12,
) -> SimTrace:
    """Day/night workload: sinusoidally modulated arrival pressure."""
    if num_events < 1:
        raise InvalidParameterError(f"num_events must be >= 1, got {num_events}")
    if day <= 0:
        raise InvalidParameterError(f"day must be > 0, got {day}")
    ktype = _check_platform(tuple(initial_counts))
    cfg = config if config is not None else SIM_CONFIG
    rng = np.random.default_rng(seed)
    events: "list[SimEvent]" = []
    active: "list[str]" = []
    time = 0.0
    born = 0
    while len(events) < num_events:
        time += float(rng.exponential(mean_gap))
        daylight = 0.5 + 0.45 * math.sin(2.0 * math.pi * time / day)
        roll = float(rng.random())
        if not active or (roll < daylight and len(active) < max_active):
            chain = random_ktype_chain(
                rng, cfg, ktype, name=f"diurnal-{seed}-{born}"
            )
            born += 1
            events.append(SimEvent("chain_arrival", time, chain=chain))
            active.append(chain.name)
        elif roll < daylight + 0.3 and len(active) > 1:
            index = int(rng.integers(len(active)))
            events.append(
                SimEvent("chain_departure", time, name=active.pop(index))
            )
        else:
            index = int(rng.integers(len(active)))
            chain = random_ktype_chain(rng, cfg, ktype, name=active[index])
            events.append(SimEvent("chain_mutation", time, chain=chain))
    return SimTrace(
        initial_counts=tuple(initial_counts),
        events=tuple(events),
        name=f"diurnal-{seed}",
        metadata=(("kind", "diurnal"), ("num_events", num_events), ("seed", seed)),
    )


def failure_storm_trace(
    initial_counts: "tuple[int, ...]" = (3, 3),
    seed: int = 0,
    chains: int = 8,
    config: "GeneratorConfig | None" = None,
) -> SimTrace:
    """The acceptance storm: >= 3 overlapping core failures mid-workload.

    Skeleton (times in simulated seconds, ``A = chains``):

    * ``t = 0 .. A-1`` — one chain arrives per second;
    * ``t = A+2 / A+4 / A+6`` — three failures land (two on type 0, one on
      type 1), all three down simultaneously in ``[A+6, A+16]``;
    * ``t = A+8 / A+10`` — two chains mutate mid-storm;
    * ``t = A+16 / A+18 / A+20`` — staggered recoveries restore the
      platform (reverse order), re-admitting shed chains;
    * ``t = A+22`` — one late arrival proves post-storm admission.

    With the default ``(3, 3)`` platform and 8 chains the storm floor is
    two cores for eight chains — shedding is forced, warm starts carry the
    survivors, and recoveries re-admit in arrival order.
    """
    if chains < 2:
        raise InvalidParameterError(f"chains must be >= 2, got {chains}")
    counts = tuple(initial_counts)
    ktype = _check_platform(counts)
    if counts[0] < 2:
        raise InvalidParameterError(
            f"the storm needs >= 2 cores of type 0, got {counts}"
        )
    cfg = config if config is not None else SIM_CONFIG
    rng = np.random.default_rng(seed)
    horizon = float(chains)
    events: "list[SimEvent]" = []
    names: "list[str]" = []
    for index in range(chains):
        chain = random_ktype_chain(
            rng, cfg, ktype, name=f"storm-{seed}-{index}"
        )
        names.append(chain.name)
        events.append(SimEvent("chain_arrival", float(index), chain=chain))
    # Three overlapping failures: all down during [horizon+6, horizon+16].
    events.append(
        SimEvent("core_failure", horizon + 2.0, core_type=0, cores=1)
    )
    events.append(
        SimEvent("core_failure", horizon + 4.0, core_type=1, cores=max(1, counts[1] - 1))
    )
    events.append(
        SimEvent("core_failure", horizon + 6.0, core_type=0, cores=counts[0] - 2 + 1)
    )
    # Mid-storm weight churn on two surviving chains.
    for offset, index in ((8.0, 0), (10.0, 1)):
        chain = random_ktype_chain(rng, cfg, ktype, name=names[index])
        events.append(SimEvent("chain_mutation", horizon + offset, chain=chain))
    # Staggered recoveries (reverse order of the failures).
    events.append(
        SimEvent("core_recovery", horizon + 16.0, core_type=0, cores=counts[0] - 2 + 1)
    )
    events.append(
        SimEvent("core_recovery", horizon + 18.0, core_type=1, cores=max(1, counts[1] - 1))
    )
    events.append(
        SimEvent("core_recovery", horizon + 20.0, core_type=0, cores=1)
    )
    late = random_ktype_chain(rng, cfg, ktype, name=f"storm-{seed}-late")
    events.append(SimEvent("chain_arrival", horizon + 22.0, chain=late))
    return SimTrace(
        initial_counts=counts,
        events=tuple(events),
        name=f"failure-storm-{seed}",
        metadata=(("chains", chains), ("kind", "failure_storm"), ("seed", seed)),
    )
