"""The discrete-event simulation loop.

:func:`simulate` drains a :class:`~repro.sim.trace.SimTrace` through the
deterministic :class:`~repro.sim.events.EventQueue`: each event mutates the
platform (:class:`~repro.sim.platform_state.PlatformState`) or the workload
and then triggers one rescheduling round of the
:class:`~repro.sim.scheduler.IncrementalScheduler`.  The loop enforces and
counts two invariants:

* **zero scheduleless intervals** — after every event, every registered
  chain either holds a feasible schedule or was *explicitly* shed
  (``sim.invariant.scheduleless`` stays 0);
* **no overcommit** — the per-chain allocations never exceed the cores
  currently up, i.e. nothing is ever scheduled onto a down core
  (``sim.invariant.overcommit`` stays 0).

Determinism contract: everything in the returned
:class:`SimResult.records` and :class:`SimResult.metrics` is a pure
function of ``(trace, config)`` — identical at any ``--jobs``, with or
without a journal, interrupted-and-resumed or not.  Wall-clock
rescheduling latencies are *observed* (they feed the obs histogram and the
bench percentiles through :attr:`SimResult.resched_seconds`) but never
consulted: no control flow reads a clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..core.errors import InvalidParameterError
from ..obs.clock import monotonic
from ..obs.export import write_chrome_trace
from ..obs.metrics import MetricsRegistry, MetricsSnapshot
from ..obs.sketch import SketchSnapshot, sketch_of
from ..obs.span import Span
from .events import EventQueue, SimEvent
from .journal import EventRecord, SimJournal
from .platform_state import DownInterval, PlatformState
from .scheduler import IncrementalScheduler
from .trace import SimTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from pathlib import Path

__all__ = ["SimConfig", "SimResult", "simulate", "sim_spans", "write_sim_trace"]


@dataclass(frozen=True, slots=True)
class SimConfig:
    """Knobs of one simulation run.

    Attributes:
        strategy: registry name of the cold-solve strategy.
        deadline: rescheduling budget per event in modeled cost units
            (``None`` = unbounded; see :mod:`repro.sim.scheduler`).
        certify: audit every warm/cold solution with the independent
            certificate checker.
    """

    strategy: str = "2catac"
    deadline: "float | None" = None
    certify: bool = False


@dataclass(frozen=True)
class SimResult:
    """Everything one simulation run produced.

    ``records`` and ``metrics`` are deterministic (the bitwise-comparable
    event log); ``resched_seconds`` holds the *non-deterministic* per-event
    wall-clock rescheduling latencies, kept strictly apart so determinism
    tests can compare the former and benchmarks can aggregate the latter.
    """

    name: str
    records: tuple[EventRecord, ...]
    metrics: MetricsSnapshot
    down_intervals: tuple[DownInterval, ...]
    final_periods: tuple[tuple[str, "float | None"], ...]
    end_time: float
    resched_seconds: tuple[float, ...] = field(repr=False, default=())

    @property
    def num_events(self) -> int:
        """Events processed (== replayed + live)."""
        return len(self.records)

    def counter(self, name: str) -> float:
        """A counter's final value (0.0 when never touched)."""
        counters = dict(self.metrics.counters)
        return float(counters.get(name, 0.0))

    @property
    def scheduleless_intervals(self) -> int:
        """Events after which some chain was neither scheduled nor shed."""
        return int(self.counter("sim.invariant.scheduleless"))

    @property
    def overcommit_events(self) -> int:
        """Events whose allocations exceeded the cores currently up."""
        return int(self.counter("sim.invariant.overcommit"))

    def aggregate_throughput(self) -> float:
        """Steady-state throughput: sum of ``1 / period`` over scheduled
        chains at the end of the run."""
        return sum(
            1.0 / period
            for _, period in self.final_periods
            if period is not None and period > 0
        )

    def resched_sketch(self) -> SketchSnapshot:
        """Quantile sketch of the per-event rescheduling latencies.

        The latencies themselves are wall-clock (non-deterministic), so the
        sketch lives outside :attr:`metrics` — but p50/p90/p99 come from the
        same :mod:`repro.obs.sketch` bucketing the rest of the project uses,
        so the CLI, the bench trajectory, and the obs layer cannot disagree
        about what a percentile means.
        """
        return sketch_of(self.resched_seconds)


def _apply_event(
    event: SimEvent,
    platform: PlatformState,
    scheduler: IncrementalScheduler,
    metrics: MetricsRegistry,
) -> None:
    """Mutate platform/workload state for one event."""
    metrics.add(f"sim.events.{event.kind}")
    if event.kind == "chain_arrival":
        assert event.chain is not None
        scheduler.admit(event.chain)
    elif event.kind == "chain_departure":
        scheduler.depart(event.name)
    elif event.kind == "chain_mutation":
        assert event.chain is not None
        scheduler.mutate(event.chain)
    elif event.kind == "core_failure":
        platform.fail(event.core_type, event.cores, event.time)
    else:  # core_recovery
        platform.recover(event.core_type, event.cores, event.time)


def _check_invariants(
    record: EventRecord, metrics: MetricsRegistry
) -> None:
    """Count violations of the scheduleless / overcommit invariants."""
    used = [0] * len(record.counts)
    scheduleless = False
    for decision in record.decisions:
        if decision.action == "shed":
            continue
        if decision.period is None or not decision.triplets:
            scheduleless = True
            continue
        for v, c in enumerate(decision.counts):
            used[v] += c
    if scheduleless:
        metrics.add("sim.invariant.scheduleless")
    if any(u > a for u, a in zip(used, record.counts)):
        metrics.add("sim.invariant.overcommit")


def simulate(
    trace: SimTrace,
    config: "SimConfig | None" = None,
    journal: "SimJournal | Path | str | None" = None,
    stop_after: "int | None" = None,
) -> SimResult:
    """Run a trace through the incremental scheduler.

    Args:
        trace: the simulation input.
        config: run knobs (defaults: ``2catac``, unbounded deadline).
        journal: decision journal to append to; when the file already holds
            records (an interrupted run), the recorded prefix is *replayed*
            — decisions applied without re-solving — and the run continues
            live from the first unjournaled event, bitwise identical to an
            uninterrupted run.
        stop_after: process at most this many events (interrupt a run
            mid-trace on purpose; used with ``journal`` by the resume
            tests and the CLI's ``--stop-after``).

    Returns:
        The :class:`SimResult`; deterministic except for
        :attr:`SimResult.resched_seconds`.
    """
    cfg = config if config is not None else SimConfig()
    sink = journal if isinstance(journal, SimJournal) or journal is None else SimJournal(journal)
    metrics = MetricsRegistry()
    platform = PlatformState(trace.initial_counts)
    scheduler = IncrementalScheduler(
        strategy=cfg.strategy,
        deadline=cfg.deadline,
        certify=cfg.certify,
        metrics=metrics,
    )

    replayed: "tuple[EventRecord, ...]" = sink.load() if sink is not None else ()
    if len(replayed) > len(trace.events):
        raise InvalidParameterError(
            f"journal holds {len(replayed)} records but the trace has only "
            f"{len(trace.events)} events — wrong journal for this trace?"
        )

    queue: "EventQueue[tuple[int, SimEvent]]" = EventQueue()
    for index, event in enumerate(trace.events):
        queue.push(event.time, (index, event))

    records: "list[EventRecord]" = []
    latencies: "list[float]" = []
    limit = len(trace.events) if stop_after is None else min(stop_after, len(trace.events))

    try:
        while queue and len(records) < limit:
            time, (index, event) = queue.pop()
            if index < len(replayed):
                # Replay: re-apply the event and the journaled decisions
                # without solving; verify the journal matches the trace.
                recorded = replayed[index]
                if recorded.seq != index or recorded.kind != event.kind:
                    raise InvalidParameterError(
                        f"journal record {recorded.seq} ({recorded.kind}) "
                        f"does not match trace event {index} ({event.kind})"
                    )
                _apply_event(event, platform, scheduler, metrics)
                for decision in recorded.decisions:
                    scheduler.apply_decision(decision)
                record = recorded
            else:
                _apply_event(event, platform, scheduler, metrics)
                started = monotonic()
                decisions = scheduler.reschedule(platform.available())
                elapsed = monotonic() - started
                latencies.append(elapsed)
                metrics.observe("sim.resched.cost", sum(d.cost for d in decisions))
                record = EventRecord(
                    seq=index,
                    time=time,
                    kind=event.kind,
                    availability=platform.availability(),
                    counts=platform.available_counts(),
                    decisions=decisions,
                )
                if sink is not None:
                    sink.append(record)
            metrics.set_gauge("sim.availability", record.availability)
            _check_invariants(record, metrics)
            records.append(record)
    finally:
        if sink is not None and not isinstance(journal, SimJournal):
            sink.close()

    end_time = records[-1].time if records else 0.0
    final_periods = tuple(
        (name, outcome.period if (outcome := scheduler.schedule_of(name)) is not None else None)
        for name in scheduler.chains
    )
    return SimResult(
        name=trace.name,
        records=tuple(records),
        metrics=metrics.snapshot(),
        down_intervals=platform.down_intervals(end_time),
        final_periods=final_periods,
        end_time=end_time,
        resched_seconds=tuple(latencies),
    )


# -- Chrome-trace export -----------------------------------------------------


def sim_spans(result: SimResult) -> "tuple[Span, ...]":
    """Render a run as Chrome-trace lanes.

    One lane per concrete core (``tid = 1 + global core number``, spans
    marking its down intervals) plus a scheduler lane (``tid = 0``) with
    one span per rescheduling round, sized by its modeled cost share and
    annotated with the ladder actions taken.
    """
    spans: "list[Span]" = []
    span_id = 1
    # Core lanes: offset core numbers by type so every concrete core gets
    # a stable lane of its own.
    type_offsets: "dict[int, int]" = {}
    offset = 0
    counts_seen: "dict[int, int]" = {}
    for interval in result.down_intervals:
        counts_seen[interval.core_type] = max(
            counts_seen.get(interval.core_type, 0), interval.core_index + 1
        )
    for core_type in sorted(counts_seen):
        type_offsets[core_type] = offset
        offset += counts_seen[core_type]
    for interval in result.down_intervals:
        lane = 1 + type_offsets[interval.core_type] + interval.core_index
        spans.append(
            Span(
                name="down",
                category="sim.core",
                start=interval.start,
                end=interval.end,
                pid=1,
                tid=lane,
                span_id=span_id,
                parent_id=None,
                depth=0,
                attrs=(
                    ("core_index", interval.core_index),
                    ("core_type", interval.core_type),
                ),
            )
        )
        span_id += 1
    for record in result.records:
        actions = ",".join(
            f"{d.action}:{d.name}" for d in record.decisions
        )
        spans.append(
            Span(
                name=record.kind,
                category="sim.event",
                start=record.time,
                end=record.time,
                pid=1,
                tid=0,
                span_id=span_id,
                parent_id=None,
                depth=0,
                attrs=(
                    ("actions", actions[:256]),
                    ("availability", record.availability),
                    ("seq", record.seq),
                ),
            )
        )
        span_id += 1
    return tuple(spans)


def write_sim_trace(path: "Path | str", result: SimResult) -> "Path":
    """Write the run's Chrome trace-event JSON (per-core lanes + metrics)."""
    return write_chrome_trace(path, sim_spans(result), result.metrics)
