"""Append-only decision journal of the online simulator.

Each processed event writes one JSON line recording everything the
scheduler *decided*: the event's identity, the platform availability after
it, and per-chain ``(action, allocation, period, solution triplets)``
rows.  That is sufficient to replay the prefix of an interrupted run
without re-solving anything — :func:`repro.sim.simulator.simulate` rebuilds
solutions from the triplets, advances the ladder counters exactly as the
live run did, and continues live from the first unjournaled event,
producing a bitwise-identical event log and metrics (the same contract as
the engine's checkpoint journal, :mod:`repro.engine.checkpoint`).

Torn final lines (a writer killed mid-``write``) are detected and dropped
on load; everything before them replays.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any

from .scheduler import ChainDecision

__all__ = ["EventRecord", "SimJournal"]


@dataclass(frozen=True, slots=True)
class EventRecord:
    """The deterministic outcome of processing one trace event.

    Attributes:
        seq: 0-based index of the event in the trace.
        time: simulated event time.
        kind: the event kind.
        availability: fraction of cores up after the event.
        counts: per-type cores available after the event.
        decisions: one :class:`~repro.sim.scheduler.ChainDecision` per
            registered chain, in arrival order.
    """

    seq: int
    time: float
    kind: str
    availability: float
    counts: tuple[int, ...]
    decisions: tuple[ChainDecision, ...]

    def to_json(self) -> "dict[str, Any]":
        """JSON-safe form (exact float round-trip via ``repr`` semantics)."""
        return {
            "seq": self.seq,
            "time": self.time,
            "kind": self.kind,
            "availability": self.availability,
            "counts": list(self.counts),
            "decisions": [
                {
                    "name": d.name,
                    "action": d.action,
                    "counts": list(d.counts),
                    "period": d.period,
                    "triplets": [list(t) for t in d.triplets],
                    "cost": d.cost,
                }
                for d in self.decisions
            ],
        }

    @classmethod
    def from_json(cls, record: "dict[str, Any]") -> "EventRecord":
        """Rebuild a record written by :meth:`to_json`."""
        return cls(
            seq=int(record["seq"]),
            time=float(record["time"]),
            kind=str(record["kind"]),
            availability=float(record["availability"]),
            counts=tuple(int(c) for c in record["counts"]),
            decisions=tuple(
                ChainDecision(
                    name=str(d["name"]),
                    action=str(d["action"]),
                    counts=tuple(int(c) for c in d["counts"]),
                    period=None if d["period"] is None else float(d["period"]),
                    triplets=tuple(
                        (int(t[0]), int(t[1]), int(t[2]), int(t[3]))
                        for t in d["triplets"]
                    ),
                    cost=float(d["cost"]),
                )
                for d in record["decisions"]
            ),
        )


class SimJournal:
    """Append-only JSONL journal of :class:`EventRecord` rows."""

    def __init__(self, path: "Path | str") -> None:
        self.path = Path(path)
        self._handle: "IO[str] | None" = None

    def load(self) -> "tuple[EventRecord, ...]":
        """Read every intact record (torn final lines dropped)."""
        if not self.path.exists():
            return ()
        records: "list[EventRecord]" = []
        for line in self.path.read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                break
            records.append(EventRecord.from_json(payload))
        return tuple(records)

    def append(self, record: EventRecord) -> None:
        """Append one record and flush it to the OS."""
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        self._handle.write(json.dumps(record.to_json(), sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        """Close the writer (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SimJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
