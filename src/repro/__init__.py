"""repro — scheduling partially-replicable task chains on two core types.

A complete, self-contained reproduction of *"Scheduling Strategies for
Partially-Replicable Task Chains on Two Types of Resources"* (Orhan et al.,
IPPS 2025): the FERTAC and 2CATAC greedy heuristics, the optimal HeRAD
dynamic program, the OTAC homogeneous baseline, a StreamPU-like pipelined
streaming runtime (discrete-event simulated and threaded), the DVB-S2
receiver workload, and the full experimental campaign of the paper.

Quickstart::

    from repro import TaskChain, Resources, herad

    chain = TaskChain.from_weights(
        weights_big=[4, 10, 3, 7],
        weights_little=[9, 21, 8, 15],
        replicable=[True, True, False, True],
    )
    outcome = herad(chain, Resources(big=2, little=2))
    print(outcome.solution.render(), outcome.period)

See ``examples/`` for runnable scenarios and ``DESIGN.md`` for the paper
mapping.
"""

from .core import (
    INFINITY,
    PAPER_ORDER,
    STRATEGIES,
    CertificateReport,
    CertificationError,
    ChainProfile,
    CoreType,
    CoreUsage,
    InfeasibleScheduleError,
    InvalidChainError,
    InvalidParameterError,
    InvalidPlatformError,
    PowerModel,
    PowerReport,
    Resources,
    ScheduleOutcome,
    SchedulingError,
    Solution,
    Stage,
    StrategyInfo,
    Task,
    TaskChain,
    UnknownStrategyError,
    audit_solution,
    brute_force_optimal,
    certify_outcome,
    certify_solution,
    fertac,
    get_strategy,
    herad,
    herad_reference,
    herad_solution,
    merge_replicable_stages,
    otac,
    otac_big,
    otac_little,
    pareto_front,
    run_strategies,
    solution_power,
    strategy_names,
    twocatac,
)
from .engine import CampaignEngine, MemoCache, default_engine

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Task",
    "TaskChain",
    "ChainProfile",
    "Stage",
    "Solution",
    "CoreUsage",
    "CoreType",
    "Resources",
    "INFINITY",
    "ScheduleOutcome",
    "fertac",
    "twocatac",
    "herad",
    "herad_solution",
    "herad_reference",
    "otac",
    "otac_big",
    "otac_little",
    "brute_force_optimal",
    "merge_replicable_stages",
    "PowerModel",
    "PowerReport",
    "solution_power",
    "pareto_front",
    "STRATEGIES",
    "PAPER_ORDER",
    "StrategyInfo",
    "get_strategy",
    "run_strategies",
    "strategy_names",
    "SchedulingError",
    "InvalidChainError",
    "InvalidPlatformError",
    "InvalidParameterError",
    "InfeasibleScheduleError",
    "UnknownStrategyError",
    "CertificationError",
    "CertificateReport",
    "audit_solution",
    "certify_solution",
    "certify_outcome",
    "CampaignEngine",
    "MemoCache",
    "default_engine",
]
