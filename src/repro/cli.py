"""Command-line interface: regenerate any paper table or figure.

Usage (after ``pip install -e .``)::

    repro table1 --chains 200
    repro fig2
    repro table2 --frames 5000
    repro all --chains 100 --out results/
    repro table1 --certify          # audit every solution while running
    repro table1 --resume run.jsonl # checkpoint to (and resume from) a journal
    repro table1 --retries 5 --timeout 60   # harden a long campaign
    repro table1 --trace out.json   # Chrome-trace the run (chrome://tracing)
    repro table1 --metrics          # print the end-of-run RunReport
    repro table1 --flamegraph out.folded   # collapsed-stack flamegraph
    repro bench compare --baseline benchmarks/baseline.json \
        --candidate BENCH_engine.json --tolerance-file benchmarks/tolerances.json
    repro lint                      # project-specific static analysis
    repro solve --cores big=6,little=8           # paper-style two-type solve
    repro solve --cores big=6,little=8,lpe=2 --certify   # k-type platform
    repro simulate --kind storm --certify        # online failure-storm sim
    repro simulate --kind bursty --events 1000 --deadline 16 --journal sim.jsonl

or equivalently ``python -m repro <command> [options]``.
"""

from __future__ import annotations

import argparse
import logging
import sys
from pathlib import Path

from .bench import compare_files, render_results
from .core.certify import certify_outcome
from .core.chain_stats import ChainProfile
from .core.errors import InvalidParameterError, SchedulingError
from .core.registry import get_info, solve_batch
from .core.types import Resources, type_name
from .engine import KERNELS, CampaignEngine, CheckpointJournal, ResilienceConfig, RetryPolicy, default_engine
from .experiments import ablation, fig1, fig2, fig3, fig4, fig5, fig6, table1, table2, table3
from .lint.cli import add_lint_arguments, run_lint
from .obs import (
    Observability,
    ObsConfig,
    RunReport,
    monotonic,
    write_chrome_trace,
    write_flamegraph,
)
from .sim import (
    SimConfig,
    SimTrace,
    bursty_trace,
    diurnal_trace,
    failure_storm_trace,
    simulate,
    write_sim_trace,
)
from .workloads.synthetic import GeneratorConfig, ktype_chain_batch

__all__ = ["main", "build_parser"]

_log = logging.getLogger("repro.cli")

_LOG_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
}


def _configure_logging(level_name: str) -> None:
    """Configure the single ``repro`` logger hierarchy (idempotent).

    Every diagnostic path in the package logs through a ``repro.*`` logger;
    the hierarchy gets one stderr handler here, so ``--log-level`` is the
    only knob and stdout stays reserved for experiment reports.
    """
    root = logging.getLogger("repro")
    root.setLevel(_LOG_LEVELS[level_name])
    if not root.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("[%(levelname)s %(name)s] %(message)s")
        )
        root.addHandler(handler)
        root.propagate = False

_EXPERIMENTS = (
    "table1",
    "table2",
    "table3",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "ablation",
)


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _parse_cores(text: str) -> "tuple[Resources, tuple[str, ...]]":
    """Parse ``--cores big=8,little=8,mid=4`` into a budget + class labels.

    Classes are listed most performant first (the core layer's type-index
    convention).  Each item is ``label=count`` or a bare count (labelled
    ``big``/``little``/``type2``... by position).
    """
    counts: list[int] = []
    labels: list[str] = []
    items = [item.strip() for item in text.split(",") if item.strip()]
    if not items:
        raise argparse.ArgumentTypeError("--cores needs at least one class")
    for position, item in enumerate(items):
        if "=" in item:
            label, _, value = item.partition("=")
            label = label.strip()
            value = value.strip()
            if not label:
                raise argparse.ArgumentTypeError(
                    f"--cores item {item!r}: empty class label"
                )
        else:
            label, value = type_name(position), item
        try:
            count = int(value)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"--cores item {item!r}: count must be an integer"
            ) from None
        if count < 0:
            raise argparse.ArgumentTypeError(
                f"--cores item {item!r}: count must be >= 0"
            )
        labels.append(label)
        counts.append(count)
    if sum(counts) < 1:
        raise argparse.ArgumentTypeError("--cores: platform has no cores")
    return Resources.from_counts(counts), tuple(labels)


def _experiment_options() -> argparse.ArgumentParser:
    """Parent parser holding the options shared by every experiment."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--chains",
        type=int,
        default=200,
        help=(
            "chains per synthetic scenario (paper: 1000; default 200 keeps "
            "a laptop run in minutes)"
        ),
    )
    parent.add_argument(
        "--timing-chains",
        type=int,
        default=20,
        help="chains averaged per execution-time point (paper: 50)",
    )
    parent.add_argument(
        "--frames",
        type=int,
        default=2000,
        help="frames streamed per throughput measurement (table2/fig5)",
    )
    parent.add_argument(
        "--seed", type=int, default=0, help="base random seed for campaigns"
    )
    parent.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        help=(
            "worker processes for the campaign engine (default: all cores, "
            "i.e. os.cpu_count()); results are identical for any value"
        ),
    )
    parent.add_argument(
        "--certify",
        action="store_true",
        help=(
            "audit every solution with the independent certificate checker "
            "(repro.core.certify) while the campaign runs; fails loudly on "
            "the first violation (disables memo-cache replay)"
        ),
    )
    parent.add_argument(
        "--kernel",
        choices=KERNELS,
        default="python",
        help=(
            "solver tier: 'python' runs each (chain, strategy) cell through "
            "the scalar solvers; 'batch' groups work units by strategy and "
            "solves them through the vectorized numpy kernels "
            "(repro.core.kernels) — bitwise-identical results, several "
            "times the campaign throughput for herad/2catac"
        ),
    )
    parent.add_argument(
        "--unit-wall",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "target estimated solve seconds per work unit for the "
            "cost-adaptive chunk planner (default 0.1); any value yields "
            "bitwise-identical results — it trades dispatch overhead "
            "against load balance on the process tier"
        ),
    )
    parent.add_argument(
        "--resume",
        type=Path,
        default=None,
        metavar="JOURNAL",
        help=(
            "checkpoint journal (JSONL): every solved instance is appended "
            "and fsync'd per chunk; if the file already holds rows (e.g. "
            "from a killed run), they replay through the memo cache and "
            "only the remainder is solved — results are bitwise identical "
            "to an uninterrupted run (--certify bypasses replay and "
            "re-solves everything)"
        ),
    )
    parent.add_argument(
        "--retries",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "enable resilient execution with N solve attempts per tier: "
            "transient failures (crashed workers, pickling errors, "
            "timeouts) retry with deterministic backoff, then degrade "
            "process -> thread -> serial; instances that still fail are "
            "quarantined (reported on stderr) instead of aborting"
        ),
    )
    parent.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "soft deadline per work unit on pooled tiers; a hung solve is "
            "abandoned and retried instead of stalling the campaign "
            "(implies resilient execution)"
        ),
    )
    parent.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "record a span trace of the run and write it as Chrome "
            "trace-event JSON (open in chrome://tracing or ui.perfetto.dev); "
            "results are bitwise identical with tracing on or off"
        ),
    )
    parent.add_argument(
        "--flamegraph",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "write the run's span forest as collapsed stacks "
            "('root;child;leaf microseconds' per line, self time only) — "
            "feed to flamegraph.pl or paste into speedscope.app; composes "
            "with --trace (same spans, two views)"
        ),
    )
    parent.add_argument(
        "--metrics",
        action="store_true",
        help=(
            "collect engine metrics (memo hit rate, retries, per-strategy "
            "solve latency, ...) and print an end-of-run report"
        ),
    )
    parent.add_argument(
        "--log-level",
        choices=sorted(_LOG_LEVELS),
        default="info",
        help="verbosity of the 'repro' logger hierarchy on stderr (default: info)",
    )
    parent.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory to also write each report as <experiment>.txt",
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (one subcommand per experiment + lint)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the evaluation of 'Scheduling Strategies for "
            "Partially-Replicable Task Chains on Two Types of Resources'."
        ),
    )
    subparsers = parser.add_subparsers(
        dest="experiment",
        required=True,
        metavar="command",
        help="experiment to regenerate ('all' runs everything), or 'lint'",
    )
    options = _experiment_options()
    for name in (*_EXPERIMENTS, "all"):
        subparsers.add_parser(
            name,
            parents=[options],
            help=f"regenerate {name}" if name != "all" else "run every experiment",
        )
    solve_parser = subparsers.add_parser(
        "solve",
        help="schedule synthetic chains on an arbitrary k-type platform",
        description=(
            "Schedule a batch of synthetic task chains on a platform "
            "described by --cores (classes listed most performant first). "
            "Two-type budgets reproduce the paper's setting exactly; more "
            "classes exercise the k-type generalization."
        ),
    )
    solve_parser.add_argument(
        "--cores",
        type=_parse_cores,
        required=True,
        metavar="SPEC",
        help=(
            "per-class core counts, most performant first: "
            "'big=8,little=8,mid=4' or bare counts '8,8,4'"
        ),
    )
    solve_parser.add_argument(
        "--strategy",
        action="append",
        default=None,
        metavar="NAME",
        help=(
            "strategy (registry name or alias; repeatable; default: "
            "ktype_ref, the exhaustive k-type reference solver); "
            "two-type-only strategies such as herad are rejected on "
            "platforms with more than two classes"
        ),
    )
    solve_parser.add_argument(
        "--chains", type=_positive_int, default=5, help="chains to schedule"
    )
    solve_parser.add_argument(
        "--num-tasks", type=_positive_int, default=12, help="tasks per chain"
    )
    solve_parser.add_argument(
        "--sr",
        type=float,
        default=0.5,
        help="stateless ratio of the generated chains",
    )
    solve_parser.add_argument(
        "--seed", type=int, default=0, help="base random seed"
    )
    solve_parser.add_argument(
        "--certify",
        action="store_true",
        help=(
            "audit every solution with the independent certificate checker; "
            "exits non-zero on the first violation"
        ),
    )
    solve_parser.add_argument(
        "--kernel",
        choices=KERNELS,
        default="python",
        help=(
            "solver tier: 'batch' schedules the whole chain batch per "
            "strategy through the vectorized numpy kernels (bitwise-"
            "identical outcomes; falls back to the python solvers where a "
            "kernel does not apply, e.g. k>2 platforms)"
        ),
    )
    solve_parser.add_argument(
        "--log-level",
        choices=sorted(_LOG_LEVELS),
        default="info",
        help="verbosity of the 'repro' logger hierarchy on stderr",
    )
    sim_parser = subparsers.add_parser(
        "simulate",
        help="online fault-tolerant simulation (chains and cores come and go)",
        description=(
            "Run the discrete-event simulator (repro.sim): chains arrive, "
            "depart and mutate while cores fail and recover; after every "
            "event the incremental scheduler re-establishes a feasible "
            "schedule for each surviving chain within the rescheduling "
            "deadline, degrading warm -> full -> reuse -> shed but never "
            "leaving a chain scheduleless.  Exits non-zero if any "
            "invariant (scheduleless interval / overcommit) is violated."
        ),
    )
    sim_parser.add_argument(
        "--kind",
        choices=("storm", "bursty", "diurnal"),
        default="storm",
        help=(
            "generated workload: 'storm' is the failure-storm acceptance "
            "scenario (>= 3 overlapping core failures), 'bursty' flash "
            "crowds, 'diurnal' a day/night arrival sinusoid"
        ),
    )
    sim_parser.add_argument(
        "--input",
        type=Path,
        default=None,
        metavar="TRACE",
        help="simulate a trace file written by --save-trace instead of generating one",
    )
    sim_parser.add_argument(
        "--events",
        type=_positive_int,
        default=200,
        help="events in a bursty/diurnal trace (the storm skeleton is fixed)",
    )
    sim_parser.add_argument(
        "--chains",
        type=_positive_int,
        default=8,
        help="arrivals in the storm skeleton (storm only)",
    )
    sim_parser.add_argument(
        "--cores",
        type=_parse_cores,
        default=None,
        metavar="SPEC",
        help=(
            "initial per-class core counts, e.g. 'big=3,little=3' "
            "(default: 3,3 for storm, 4,4 otherwise)"
        ),
    )
    sim_parser.add_argument(
        "--seed", type=int, default=0, help="trace generator seed"
    )
    sim_parser.add_argument(
        "--strategy",
        default="2catac",
        metavar="NAME",
        help="cold-solve strategy (registry name; default: 2catac)",
    )
    sim_parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="COST",
        help=(
            "rescheduling budget per event in modeled cost units (a warm "
            "start costs 1, a cold solve costs the chain's task count; "
            "default: unbounded)"
        ),
    )
    sim_parser.add_argument(
        "--certify",
        action="store_true",
        help=(
            "audit every warm-started and cold solution with the "
            "independent certificate checker"
        ),
    )
    sim_parser.add_argument(
        "--journal",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "append-only decision journal; an existing journal replays its "
            "prefix without re-solving (interrupt + resume, bitwise "
            "identical to an uninterrupted run)"
        ),
    )
    sim_parser.add_argument(
        "--stop-after",
        type=_positive_int,
        default=None,
        metavar="N",
        help="process at most N events (interrupt on purpose; use with --journal)",
    )
    sim_parser.add_argument(
        "--save-trace",
        type=Path,
        default=None,
        metavar="PATH",
        help="also write the generated trace (JSONL) for later --input runs",
    )
    sim_parser.add_argument(
        "--chrome",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "write a Chrome trace-event JSON of the run: one lane per "
            "concrete core (down intervals) plus a scheduler event lane"
        ),
    )
    sim_parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the sim.* counters (events, ladder actions, invariants)",
    )
    sim_parser.add_argument(
        "--log-level",
        choices=sorted(_LOG_LEVELS),
        default="info",
        help="verbosity of the 'repro' logger hierarchy on stderr",
    )
    bench_parser = subparsers.add_parser(
        "bench",
        help="performance utilities (perf-regression gate over bench reports)",
        description=(
            "Benchmark utilities.  'compare' diffs a fresh BENCH_engine.json "
            "against a committed baseline under per-metric tolerances and "
            "exits non-zero on regression — the CI perf gate."
        ),
    )
    bench_sub = bench_parser.add_subparsers(
        dest="bench_command", required=True, metavar="action"
    )
    compare_parser = bench_sub.add_parser(
        "compare",
        help="judge a candidate bench report against a baseline",
        description=(
            "Evaluate every check in the tolerance file against the "
            "(baseline, candidate) report pair.  Exit 0 when all checks "
            "pass, 1 on regression, 2 on malformed inputs."
        ),
    )
    compare_parser.add_argument(
        "--baseline",
        type=Path,
        required=True,
        metavar="PATH",
        help="committed reference report (e.g. benchmarks/baseline.json)",
    )
    compare_parser.add_argument(
        "--candidate",
        type=Path,
        default=Path("BENCH_engine.json"),
        metavar="PATH",
        help="fresh report to judge (default: BENCH_engine.json)",
    )
    compare_parser.add_argument(
        "--tolerance-file",
        type=Path,
        required=True,
        metavar="PATH",
        help="per-metric checks (e.g. benchmarks/tolerances.json)",
    )
    lint_parser = subparsers.add_parser(
        "lint",
        help="run the project-specific static analysis (repro.lint)",
        description=(
            "Project lint: AST rules guarding float-comparison discipline, "
            "value-object immutability, the core error hierarchy, engine "
            "determinism, numpy scalar containment, strict public typing, "
            "stdout hygiene, and worker picklability."
        ),
    )
    add_lint_arguments(lint_parser)
    return parser


def _build_engine(
    args: argparse.Namespace, obs: "Observability | None" = None
) -> "CampaignEngine | None":
    """A dedicated engine when a hardening, observability, or kernel flag is set.

    ``None`` means "use the process-wide default engine" (the lean fail-fast
    path).  The dedicated engine shares the default engine's memo cache, so
    ``repro all`` still replays repeated campaigns for free.
    """
    hardened = (
        args.resume is not None
        or args.retries is not None
        or args.timeout is not None
    )
    if (
        not hardened
        and obs is None
        and args.kernel == "python"
        and args.unit_wall is None
    ):
        return None
    resilience: "ResilienceConfig | None" = None
    journal: "CheckpointJournal | None" = None
    if hardened:
        retry = RetryPolicy(max_attempts=args.retries if args.retries else 3)
        resilience = ResilienceConfig(retry=retry, timeout=args.timeout)
        if args.resume is not None:
            journal = CheckpointJournal(args.resume)
    return CampaignEngine(
        jobs=args.jobs,
        memo=default_engine().memo,
        resilience=resilience,
        journal=journal,
        obs=obs,
        kernel=args.kernel,
        unit_wall=args.unit_wall,
    )


def _report_failures(engine: "CampaignEngine | None", name: str) -> None:
    """Surface quarantined instances on the repro logger (the campaign ran)."""
    if engine is None or not engine.failures:
        return
    _log.warning(
        "%s: %d instance(s) quarantined after exhausting retries",
        name,
        len(engine.failures),
    )
    for record in engine.failures:
        _log.warning(
            "  chain#%d %s: %s(%s) after %d attempts",
            record.index,
            record.strategy,
            record.error_type,
            record.message,
            record.attempts,
        )
    engine.clear_failures()


def _run_one(
    name: str, args: argparse.Namespace, engine: "CampaignEngine | None" = None
) -> str:
    jobs = args.jobs
    certify = args.certify
    if name == "table1":
        return table1.render(
            table1.run(
                num_chains=args.chains, seed=args.seed, jobs=jobs, certify=certify,
                engine=engine,
            )
        )
    if name == "table2":
        return table2.render(table2.run(num_frames=args.frames))
    if name == "table3":
        return table3.render(table3.run())
    if name == "fig1":
        return fig1.render(
            fig1.run(
                num_chains=args.chains, seed=args.seed, jobs=jobs, certify=certify,
                engine=engine,
            )
        )
    if name == "fig2":
        return fig2.render(
            fig2.run(
                num_chains=args.chains, seed=args.seed, jobs=jobs, certify=certify,
                engine=engine,
            )
        )
    if name == "fig3":
        return fig3.render(fig3.run(num_chains=args.timing_chains, seed=args.seed))
    if name == "fig4":
        return fig4.render(fig4.run(num_chains=args.timing_chains, seed=args.seed))
    if name == "fig5":
        return fig5.render(fig5.run(num_frames=args.frames))
    if name == "ablation":
        return ablation.render(
            ablation.run(num_chains=min(args.chains, 100), seed=args.seed)
        )
    if name == "fig6":
        return fig6.render(
            fig6.run(
                num_chains=min(args.chains, 200),
                seed=args.seed,
                jobs=jobs,
                certify=certify,
                engine=engine,
            )
        )
    raise ValueError(f"unknown experiment {name!r}")


def run_solve(args: argparse.Namespace) -> int:
    """``repro solve``: schedule synthetic chains on a --cores platform."""
    resources, labels = args.cores
    names = args.strategy or ["ktype_ref"]
    try:
        infos = [(name, get_info(name)) for name in names]
    except SchedulingError as error:
        _log.error("%s", error)
        return 2
    config = GeneratorConfig(num_tasks=args.num_tasks, stateless_ratio=args.sr)
    chains = list(
        ktype_chain_batch(
            args.chains, config, ktype=max(2, resources.ktype), seed=args.seed
        )
    )
    budget = ", ".join(
        f"{label}={count}" for label, count in zip(labels, resources.counts)
    )
    print(f"platform: {budget}  (k={resources.ktype})")
    profiles = [ChainProfile(chain) for chain in chains]
    solved: "dict[str, list] | None" = None
    if args.kernel == "batch":
        # One vectorized call per strategy over the whole batch; outcomes
        # are bitwise identical to the per-chain loop below.
        try:
            solved = {
                name: solve_batch(profiles, resources, name)
                for name, _ in infos
            }
        except SchedulingError as error:
            _log.error("%s", error)
            return 2
    for row, chain in enumerate(chains):
        profile = profiles[row]
        for name, info in infos:
            try:
                outcome = (
                    solved[name][row]
                    if solved is not None
                    else info.func(profile, resources)
                )
                if args.certify:
                    certify_outcome(
                        outcome,
                        profile,
                        resources,
                        optimal=info.optimal,
                        context=name,
                    )
            except SchedulingError as error:
                _log.error("%s on %s: %s", name, chain.name, error)
                return 2
            usage = outcome.solution.core_usage(resources.ktype)
            certified = "  [certified]" if args.certify else ""
            print(
                f"{chain.name}  {info.name:<12} period={outcome.period:.6g}  "
                f"usage={usage}{certified}"
            )
    return 0


def run_bench(args: argparse.Namespace) -> int:
    """``repro bench compare``: the noise-aware perf-regression gate."""
    try:
        results = compare_files(args.baseline, args.candidate, args.tolerance_file)
    except InvalidParameterError as error:
        print(f"bench compare: {error}", file=sys.stderr)
        return 2
    print(render_results(results))
    return 1 if any(not result.passed for result in results) else 0


def run_simulate(args: argparse.Namespace) -> int:
    """``repro simulate``: online fault-tolerant discrete-event simulation."""
    if args.input is not None:
        trace = SimTrace.read(args.input)
    else:
        counts = (
            args.cores[0].counts
            if args.cores is not None
            else ((3, 3) if args.kind == "storm" else (4, 4))
        )
        if args.kind == "storm":
            trace = failure_storm_trace(counts, seed=args.seed, chains=args.chains)
        elif args.kind == "bursty":
            trace = bursty_trace(args.events, counts, seed=args.seed)
        else:
            trace = diurnal_trace(args.events, counts, seed=args.seed)
    if args.save_trace is not None:
        _log.info("trace written to %s", trace.write(args.save_trace))
    config = SimConfig(
        strategy=args.strategy, deadline=args.deadline, certify=args.certify
    )
    try:
        result = simulate(
            trace, config, journal=args.journal, stop_after=args.stop_after
        )
    except SchedulingError as error:
        _log.error("%s", error)
        return 2
    print(
        f"trace: {result.name}  events: {result.num_events}/{trace.num_events}"
        f"  platform: {','.join(str(c) for c in trace.initial_counts)}"
    )
    actions = "  ".join(
        f"{action}={int(result.counter(f'sim.resched.{action}'))}"
        for action in ("keep", "warm", "full", "reuse", "shed")
    )
    print(f"ladder:  {actions}")
    scheduled = sum(1 for _, period in result.final_periods if period is not None)
    print(
        f"final:   {scheduled}/{len(result.final_periods)} chains scheduled, "
        f"aggregate throughput {result.aggregate_throughput():.6g}"
    )
    if result.resched_seconds:
        # Percentiles come from the obs quantile sketch, not ad-hoc sorting,
        # so this line agrees with the bench trajectory and RunReport.
        sketch = result.resched_sketch()
        print(
            "resched: "
            f"p50={sketch.p50 * 1e3:.2f}ms  "
            f"p90={sketch.p90 * 1e3:.2f}ms  "
            f"p99={sketch.p99 * 1e3:.2f}ms  "
            f"max={sketch.maximum * 1e3:.2f}ms"
        )
    print(
        f"invariants: scheduleless={result.scheduleless_intervals}  "
        f"overcommit={result.overcommit_events}"
    )
    if args.chrome is not None:
        _log.info("chrome trace written to %s", write_sim_trace(args.chrome, result))
    if args.metrics:
        for name, value in sorted(result.metrics.counters):
            if name.startswith("sim."):
                print(f"  {name} = {value:g}")
    if result.scheduleless_intervals or result.overcommit_events:
        _log.error("simulation violated a scheduling invariant")
        return 1
    return 0


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.experiment == "lint":
        return run_lint(args)
    if args.experiment == "bench":
        return run_bench(args)
    if args.experiment == "solve":
        _configure_logging(args.log_level)
        return run_solve(args)
    if args.experiment == "simulate":
        _configure_logging(args.log_level)
        return run_simulate(args)
    _configure_logging(args.log_level)
    names = list(_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
    obs_config = ObsConfig(
        trace=args.trace is not None or args.flamegraph is not None,
        metrics=args.metrics,
    )
    obs = Observability(obs_config) if obs_config.enabled else None
    engine = _build_engine(args, obs)
    sweep_start = monotonic()
    try:
        for name in names:
            start = monotonic()
            if obs is not None:
                with obs.span("experiment", "experiment", experiment=name):
                    report = _run_one(name, args, engine=engine)
            else:
                report = _run_one(name, args, engine=engine)
            elapsed = monotonic() - start
            print(report)
            _log.info("%s completed in %.1fs", name, elapsed)
            _report_failures(engine, name)
            print()
            if args.out is not None:
                (args.out / f"{name}.txt").write_text(report + "\n")
    finally:
        # A Ctrl-C lands here too: committed journal chunks survive for
        # --resume even when the sweep is aborted mid-experiment, and a
        # partial trace is still a viewable trace.
        if engine is not None and engine.journal is not None:
            engine.journal.close()
        if obs is not None and args.trace is not None:
            path = write_chrome_trace(
                args.trace, obs.spans(), obs.metrics.snapshot()
            )
            _log.info("trace written to %s", path)
        if obs is not None and args.flamegraph is not None:
            lines = write_flamegraph(args.flamegraph, obs.spans())
            _log.info(
                "flamegraph written to %s (%d stacks)", args.flamegraph, lines
            )
    if obs is not None and args.metrics:
        wall = monotonic() - sweep_start
        print(RunReport.from_observability(obs, wall).render())
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
