"""Command-line interface: regenerate any paper table or figure.

Usage (after ``pip install -e .``)::

    repro table1 --chains 200
    repro fig2
    repro table2 --frames 5000
    repro all --chains 100 --out results/
    repro table1 --certify          # audit every solution while running
    repro lint                      # project-specific static analysis

or equivalently ``python -m repro <command> [options]``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from .core.types import Resources
from .experiments import ablation, fig1, fig2, fig3, fig4, fig5, fig6, table1, table2, table3
from .lint.cli import add_lint_arguments, run_lint

__all__ = ["main", "build_parser"]

_EXPERIMENTS = (
    "table1",
    "table2",
    "table3",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "ablation",
)


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _experiment_options() -> argparse.ArgumentParser:
    """Parent parser holding the options shared by every experiment."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--chains",
        type=int,
        default=200,
        help=(
            "chains per synthetic scenario (paper: 1000; default 200 keeps "
            "a laptop run in minutes)"
        ),
    )
    parent.add_argument(
        "--timing-chains",
        type=int,
        default=20,
        help="chains averaged per execution-time point (paper: 50)",
    )
    parent.add_argument(
        "--frames",
        type=int,
        default=2000,
        help="frames streamed per throughput measurement (table2/fig5)",
    )
    parent.add_argument(
        "--seed", type=int, default=0, help="base random seed for campaigns"
    )
    parent.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        help=(
            "worker processes for the campaign engine (default: all cores, "
            "i.e. os.cpu_count()); results are identical for any value"
        ),
    )
    parent.add_argument(
        "--certify",
        action="store_true",
        help=(
            "audit every solution with the independent certificate checker "
            "(repro.core.certify) while the campaign runs; fails loudly on "
            "the first violation (disables memo-cache replay)"
        ),
    )
    parent.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory to also write each report as <experiment>.txt",
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (one subcommand per experiment + lint)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the evaluation of 'Scheduling Strategies for "
            "Partially-Replicable Task Chains on Two Types of Resources'."
        ),
    )
    subparsers = parser.add_subparsers(
        dest="experiment",
        required=True,
        metavar="command",
        help="experiment to regenerate ('all' runs everything), or 'lint'",
    )
    options = _experiment_options()
    for name in (*_EXPERIMENTS, "all"):
        subparsers.add_parser(
            name,
            parents=[options],
            help=f"regenerate {name}" if name != "all" else "run every experiment",
        )
    lint_parser = subparsers.add_parser(
        "lint",
        help="run the project-specific static analysis (repro.lint)",
        description=(
            "Project lint: AST rules guarding float-comparison discipline, "
            "value-object immutability, the core error hierarchy, engine "
            "determinism, numpy scalar containment, strict public typing, "
            "stdout hygiene, and worker picklability."
        ),
    )
    add_lint_arguments(lint_parser)
    return parser


def _run_one(name: str, args: argparse.Namespace) -> str:
    jobs = args.jobs
    certify = args.certify
    if name == "table1":
        return table1.render(
            table1.run(
                num_chains=args.chains, seed=args.seed, jobs=jobs, certify=certify
            )
        )
    if name == "table2":
        return table2.render(table2.run(num_frames=args.frames))
    if name == "table3":
        return table3.render(table3.run())
    if name == "fig1":
        return fig1.render(
            fig1.run(
                num_chains=args.chains, seed=args.seed, jobs=jobs, certify=certify
            )
        )
    if name == "fig2":
        return fig2.render(
            fig2.run(
                num_chains=args.chains, seed=args.seed, jobs=jobs, certify=certify
            )
        )
    if name == "fig3":
        return fig3.render(fig3.run(num_chains=args.timing_chains, seed=args.seed))
    if name == "fig4":
        return fig4.render(fig4.run(num_chains=args.timing_chains, seed=args.seed))
    if name == "fig5":
        return fig5.render(fig5.run(num_frames=args.frames))
    if name == "ablation":
        return ablation.render(
            ablation.run(num_chains=min(args.chains, 100), seed=args.seed)
        )
    if name == "fig6":
        return fig6.render(
            fig6.run(
                num_chains=min(args.chains, 200),
                seed=args.seed,
                jobs=jobs,
                certify=certify,
            )
        )
    raise ValueError(f"unknown experiment {name!r}")


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.experiment == "lint":
        return run_lint(args)
    names = list(_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
    for name in names:
        start = time.perf_counter()
        report = _run_one(name, args)
        elapsed = time.perf_counter() - start
        print(report)
        print(f"[{name} completed in {elapsed:.1f}s]", file=sys.stderr)
        print()
        if args.out is not None:
            (args.out / f"{name}.txt").write_text(report + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
