"""Command-line interface: regenerate any paper table or figure.

Usage (after ``pip install -e .``)::

    repro table1 --chains 200
    repro fig2
    repro table2 --frames 5000
    repro all --chains 100 --out results/

or equivalently ``python -m repro <experiment> [options]``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from .core.types import Resources
from .experiments import ablation, fig1, fig2, fig3, fig4, fig5, fig6, table1, table2, table3

__all__ = ["main", "build_parser"]

_EXPERIMENTS = (
    "table1",
    "table2",
    "table3",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "ablation",
)


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the evaluation of 'Scheduling Strategies for "
            "Partially-Replicable Task Chains on Two Types of Resources'."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=(*_EXPERIMENTS, "all"),
        help="which table/figure to regenerate ('all' runs everything)",
    )
    parser.add_argument(
        "--chains",
        type=int,
        default=200,
        help=(
            "chains per synthetic scenario (paper: 1000; default 200 keeps "
            "a laptop run in minutes)"
        ),
    )
    parser.add_argument(
        "--timing-chains",
        type=int,
        default=20,
        help="chains averaged per execution-time point (paper: 50)",
    )
    parser.add_argument(
        "--frames",
        type=int,
        default=2000,
        help="frames streamed per throughput measurement (table2/fig5)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="base random seed for campaigns"
    )
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        help=(
            "worker processes for the campaign engine (default: all cores, "
            "i.e. os.cpu_count()); results are identical for any value"
        ),
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory to also write each report as <experiment>.txt",
    )
    return parser


def _run_one(name: str, args: argparse.Namespace) -> str:
    jobs = args.jobs
    if name == "table1":
        return table1.render(
            table1.run(num_chains=args.chains, seed=args.seed, jobs=jobs)
        )
    if name == "table2":
        return table2.render(table2.run(num_frames=args.frames))
    if name == "table3":
        return table3.render(table3.run())
    if name == "fig1":
        return fig1.render(
            fig1.run(num_chains=args.chains, seed=args.seed, jobs=jobs)
        )
    if name == "fig2":
        return fig2.render(
            fig2.run(num_chains=args.chains, seed=args.seed, jobs=jobs)
        )
    if name == "fig3":
        return fig3.render(fig3.run(num_chains=args.timing_chains, seed=args.seed))
    if name == "fig4":
        return fig4.render(fig4.run(num_chains=args.timing_chains, seed=args.seed))
    if name == "fig5":
        return fig5.render(fig5.run(num_frames=args.frames))
    if name == "ablation":
        return ablation.render(
            ablation.run(num_chains=min(args.chains, 100), seed=args.seed)
        )
    if name == "fig6":
        return fig6.render(
            fig6.run(num_chains=min(args.chains, 200), seed=args.seed, jobs=jobs)
        )
    raise ValueError(f"unknown experiment {name!r}")


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    names = list(_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
    for name in names:
        start = time.perf_counter()
        report = _run_one(name, args)
        elapsed = time.perf_counter() - start
        print(report)
        print(f"[{name} completed in {elapsed:.1f}s]", file=sys.stderr)
        print()
        if args.out is not None:
            (args.out / f"{name}.txt").write_text(report + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
