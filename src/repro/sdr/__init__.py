"""Software-defined radio workload: the DVB-S2 receiver model.

Two layers:

* the *scheduling* model — the 23-task chain with the paper's Table III
  profiled latencies (:func:`dvbs2_chain` and friends);
* the *functional* substrate — executable signal-processing blocks
  (scramblers, BCH, LDPC, QPSK modem, RRC filters, PL framing/sync) and the
  :class:`FunctionalTransceiver` assembling them into a bit-true loopback
  link whose receiver runs on the streaming runtime.
"""

from .bch import BchCodec

from .filters import MatchedFilter, PulseShaper, rrc_taps
from .galois import GaloisField
from .ldpc import LdpcCode
from .modem import AwgnChannel, QpskModem, estimate_noise_sigma
from .plframe import (
    PlFramer,
    apply_frequency_offset,
    correlate_frame_start,
    decision_directed_phase_track,
    estimate_frequency_offset,
)
from .scrambler import BinaryScrambler, SymbolScrambler
from .transceiver import FramePayload, FunctionalTransceiver, TransceiverConfig
from .dvbs2 import (
    DVBS2_TASK_TABLE,
    SLOWEST_REPLICABLE,
    SLOWEST_SEQUENTIAL,
    DvbS2TaskRecord,
    dvbs2_chain,
    dvbs2_mac_studio_chain,
    dvbs2_x7ti_chain,
)
from .framing import (
    DVBS2_NORMAL_R8_9,
    FrameFormat,
    fps_from_period_us,
    mbps_from_fps,
)

__all__ = [
    "DVBS2_TASK_TABLE",
    "DvbS2TaskRecord",
    "dvbs2_chain",
    "dvbs2_mac_studio_chain",
    "dvbs2_x7ti_chain",
    "SLOWEST_SEQUENTIAL",
    "SLOWEST_REPLICABLE",
    "FrameFormat",
    "DVBS2_NORMAL_R8_9",
    "fps_from_period_us",
    "mbps_from_fps",
    "GaloisField",
    "BchCodec",
    "LdpcCode",
    "QpskModem",
    "AwgnChannel",
    "estimate_noise_sigma",
    "BinaryScrambler",
    "SymbolScrambler",
    "PulseShaper",
    "MatchedFilter",
    "rrc_taps",
    "PlFramer",
    "correlate_frame_start",
    "apply_frequency_offset",
    "estimate_frequency_offset",
    "decision_directed_phase_track",
    "FunctionalTransceiver",
    "TransceiverConfig",
    "FramePayload",
]
