"""Pulse shaping and matched filtering — tau_4/tau_5 (Filter Matched).

Root-raised-cosine (RRC) pulse shaping at the transmitter and the matched
RRC filter at the receiver, with simple upsampling/downsampling.  The
receiver's Filter Matched tasks are split in two parts in the paper's task
table; :func:`split_filter` reproduces that structural split (two
half-length convolutions) so the functional chain mirrors the 23-task
layout.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rrc_taps", "PulseShaper", "MatchedFilter", "split_filter"]


def rrc_taps(
    samples_per_symbol: int = 4, span_symbols: int = 8, rolloff: float = 0.35
) -> np.ndarray:
    """Root-raised-cosine filter taps (unit energy).

    Args:
        samples_per_symbol: oversampling factor.
        span_symbols: filter span in symbols (taps = span * sps + 1).
        rolloff: RRC roll-off factor in (0, 1].
    """
    if samples_per_symbol < 1:
        raise ValueError("samples_per_symbol must be >= 1")
    if not (0.0 < rolloff <= 1.0):
        raise ValueError("rolloff must be in (0, 1]")
    n = span_symbols * samples_per_symbol
    t = (np.arange(-n // 2, n // 2 + 1)) / samples_per_symbol
    taps = np.empty_like(t)
    beta = rolloff
    for i, ti in enumerate(t):
        if abs(ti) < 1e-12:
            taps[i] = 1.0 - beta + 4.0 * beta / np.pi
        elif abs(abs(ti) - 1.0 / (4.0 * beta)) < 1e-9:
            taps[i] = (beta / np.sqrt(2.0)) * (
                (1.0 + 2.0 / np.pi) * np.sin(np.pi / (4.0 * beta))
                + (1.0 - 2.0 / np.pi) * np.cos(np.pi / (4.0 * beta))
            )
        else:
            num = np.sin(np.pi * ti * (1 - beta)) + 4 * beta * ti * np.cos(
                np.pi * ti * (1 + beta)
            )
            den = np.pi * ti * (1 - (4 * beta * ti) ** 2)
            taps[i] = num / den
    return taps / np.sqrt(np.sum(taps**2))


class PulseShaper:
    """Transmit-side RRC shaping: upsample and filter."""

    def __init__(
        self, samples_per_symbol: int = 4, span_symbols: int = 8,
        rolloff: float = 0.35,
    ) -> None:
        self.samples_per_symbol = samples_per_symbol
        self.taps = rrc_taps(samples_per_symbol, span_symbols, rolloff)

    def shape(self, symbols: np.ndarray) -> np.ndarray:
        """Upsample by the oversampling factor and convolve with the RRC."""
        symbols = np.asarray(symbols, dtype=np.complex128)
        upsampled = np.zeros(symbols.size * self.samples_per_symbol, dtype=complex)
        upsampled[:: self.samples_per_symbol] = symbols
        return np.convolve(upsampled, self.taps)


class MatchedFilter:
    """Receive-side matched RRC filter and symbol-rate downsampling."""

    def __init__(
        self, samples_per_symbol: int = 4, span_symbols: int = 8,
        rolloff: float = 0.35,
    ) -> None:
        self.samples_per_symbol = samples_per_symbol
        self.taps = rrc_taps(samples_per_symbol, span_symbols, rolloff)
        #: End-to-end group delay of shaper + matched filter, in samples.
        self.delay = len(self.taps) - 1

    def filter(self, samples: np.ndarray) -> np.ndarray:
        """Convolve with the matched filter (full output)."""
        return np.convolve(np.asarray(samples, dtype=np.complex128), self.taps)

    def downsample(self, filtered: np.ndarray, num_symbols: int) -> np.ndarray:
        """Pick symbol-spaced samples after the known filter delay.

        Raises:
            ValueError: when fewer than ``num_symbols`` samples remain.
        """
        start = self.delay
        sps = self.samples_per_symbol
        picks = start + sps * np.arange(num_symbols)
        if picks.size and picks[-1] >= filtered.size:
            raise ValueError("not enough filtered samples to downsample")
        return filtered[picks]


def split_filter(taps: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    """Split a FIR into two cascaded halves (the paper's part 1 / part 2).

    Convolving with ``first`` then ``second`` equals convolving with
    ``taps`` only when one half is a delta; a FIR cannot generally be
    factored, so the split here is *structural*: part 1 applies the filter,
    part 2 is a unit passthrough with the same array-traversal cost.  This
    mirrors how the receiver splits one logical filter across two pipeline
    tasks for load balance.
    """
    first = np.asarray(taps, dtype=np.float64)
    second = np.zeros_like(first)
    second[0] = 1.0
    return first, second
