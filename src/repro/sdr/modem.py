"""QPSK modem and AWGN channel — tau_16 (Modem QPSK) and the link model.

Gray-mapped QPSK with unit-energy symbols, soft demodulation to channel
LLRs (the input the LDPC decoder expects), plus an AWGN channel and a noise
estimator (tau_15's role: estimate the channel sigma from known symbol
statistics).
"""

from __future__ import annotations

import numpy as np

__all__ = ["QpskModem", "AwgnChannel", "estimate_noise_sigma"]

_SQRT1_2 = 1.0 / np.sqrt(2.0)


class QpskModem:
    """Gray-mapped QPSK: bit pairs ``(b0, b1)`` -> ``((1-2 b0) + j(1-2 b1)) / sqrt(2)``."""

    bits_per_symbol = 2

    def modulate(self, bits: np.ndarray) -> np.ndarray:
        """Map an even-length bit vector to complex symbols.

        Raises:
            ValueError: for an odd number of bits.
        """
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.size % 2:
            raise ValueError("QPSK needs an even number of bits")
        i = 1.0 - 2.0 * bits[0::2]
        q = 1.0 - 2.0 * bits[1::2]
        return (i + 1j * q) * _SQRT1_2

    def demodulate_soft(
        self, symbols: np.ndarray, noise_sigma: float
    ) -> np.ndarray:
        """Per-bit channel LLRs (positive = bit 0 more likely).

        For Gray QPSK over AWGN the LLRs separate per quadrature:
        ``LLR = 2 sqrt(2) Re/Im(y) / sigma^2``.

        Raises:
            ValueError: for a non-positive noise sigma.
        """
        if noise_sigma <= 0:
            raise ValueError("noise_sigma must be positive")
        symbols = np.asarray(symbols, dtype=np.complex128)
        scale = 2.0 * np.sqrt(2.0) / (noise_sigma**2)
        llr = np.empty(symbols.size * 2, dtype=np.float64)
        llr[0::2] = scale * symbols.real
        llr[1::2] = scale * symbols.imag
        return llr

    def demodulate_hard(self, symbols: np.ndarray) -> np.ndarray:
        """Hard bit decisions (sign slicing)."""
        symbols = np.asarray(symbols, dtype=np.complex128)
        bits = np.empty(symbols.size * 2, dtype=np.uint8)
        bits[0::2] = (symbols.real < 0).astype(np.uint8)
        bits[1::2] = (symbols.imag < 0).astype(np.uint8)
        return bits


class AwgnChannel:
    """Additive white Gaussian noise channel with a seeded generator."""

    def __init__(self, snr_db: float, seed: int = 0) -> None:
        self.snr_db = snr_db
        #: Per-component noise std-dev for unit-energy symbols.
        self.sigma = float(np.sqrt(0.5 * 10.0 ** (-snr_db / 10.0)))
        self._rng = np.random.default_rng(seed)

    def transmit(self, symbols: np.ndarray) -> np.ndarray:
        """Add complex Gaussian noise."""
        symbols = np.asarray(symbols, dtype=np.complex128)
        noise = self._rng.normal(0.0, self.sigma, symbols.size) + (
            1j * self._rng.normal(0.0, self.sigma, symbols.size)
        )
        return symbols + noise


def estimate_noise_sigma(symbols: np.ndarray) -> float:
    """Blind per-component noise estimate for unit-energy QPSK.

    Uses the distance of each sample to the nearest constellation point —
    the role of the receiver's Noise Estimator task (tau_15).
    """
    symbols = np.asarray(symbols, dtype=np.complex128)
    if symbols.size == 0:
        raise ValueError("cannot estimate noise from no symbols")
    nearest = (
        np.sign(symbols.real) + 1j * np.sign(symbols.imag)
    ) * _SQRT1_2
    error = symbols - nearest
    per_component = np.concatenate([error.real, error.imag])
    return float(max(per_component.std(), 1e-6))
