"""LDPC code — the receiver's inner code (Decoder LDPC, tau_18).

A regular Gallager-style LDPC code with:

* deterministic parity-check construction (column weight 3, configurable
  rate) followed by Gaussian elimination over GF(2) for a systematic
  generator matrix;
* soft-input hard-output **normalized min-sum** decoding with an early-stop
  syndrome check — the same decoder family as the paper's receiver ("LDPC
  horizontal layered NMS 10 ite with early stop criterion").

The paper's DVB-S2 code is the standard's 64800-bit FECFRAME at rate 8/9;
this implementation builds codes of any modest size (hundreds to a few
thousand bits) that exercise the identical decode code path at pure-Python
tractable cost (substitution documented in DESIGN.md).
"""

from __future__ import annotations

import numpy as np

__all__ = ["LdpcCode"]


def _gaussian_elimination_gf2(h: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    """Bring H (r x n) to ``[I | P]`` form via row ops and column swaps.

    Returns the reduced matrix and the column permutation applied.
    """
    h = h.copy() % 2
    rows, cols = h.shape
    perm = np.arange(cols)
    rank = 0
    for col in range(rows):
        pivot_rows = np.flatnonzero(h[rank:, col]) + rank
        if pivot_rows.size == 0:
            # Find a later column with a pivot and swap it in.
            swap = None
            for candidate in range(col + 1, cols):
                pivots = np.flatnonzero(h[rank:, candidate]) + rank
                if pivots.size:
                    swap = candidate
                    pivot_rows = pivots
                    break
            if swap is None:
                break
            h[:, [col, swap]] = h[:, [swap, col]]
            perm[[col, swap]] = perm[[swap, col]]
        pivot = pivot_rows[0]
        if pivot != rank:
            h[[rank, pivot]] = h[[pivot, rank]]
        # Eliminate the column everywhere else.
        mask = h[:, col].astype(bool)
        mask[rank] = False
        h[mask] ^= h[rank]
        rank += 1
    return h[:rank], perm


class LdpcCode:
    """A regular LDPC code with a normalized min-sum decoder.

    Attributes:
        n: codeword length in bits.
        k: message length in bits.
        column_weight: ones per column of the parity-check matrix.
    """

    def __init__(
        self,
        n: int = 256,
        rate: float = 0.5,
        column_weight: int = 3,
        seed: int = 2024,
    ) -> None:
        if not (0.0 < rate < 1.0):
            raise ValueError(f"rate must be in (0, 1), got {rate}")
        if n < 16:
            raise ValueError("n must be at least 16")
        num_checks = int(round(n * (1.0 - rate)))
        if num_checks < column_weight:
            raise ValueError("too few checks for the requested column weight")

        rng = np.random.default_rng(seed)
        h = np.zeros((num_checks, n), dtype=np.uint8)
        # Gallager-style: each column gets `column_weight` distinct checks,
        # spreading row weights as evenly as possible.
        row_budget = np.zeros(num_checks, dtype=np.int64)
        for col in range(n):
            order = np.lexsort((rng.random(num_checks), row_budget))
            chosen = order[:column_weight]
            h[chosen, col] = 1
            row_budget[chosen] += 1
        # Drop degenerate rows (can appear for tiny codes).
        h = h[h.sum(axis=1) >= 2]

        reduced, perm = _gaussian_elimination_gf2(h)
        rank = reduced.shape[0]
        self.n = n
        self.k = n - rank
        if self.k <= 0:
            raise ValueError("construction yielded no message bits")
        # Systematic generator in the permuted ordering: codeword_perm =
        # [parity | message], parity = P @ message (P = reduced[:, rank:]).
        self._p = reduced[:, rank:].astype(np.uint8)
        self._perm = perm
        self._inv_perm = np.argsort(perm)
        # Keep the original H (in natural order) for syndrome checks and
        # message passing.
        self.h = h.astype(np.uint8)
        self._check_index = [np.flatnonzero(row) for row in self.h]

    # -- encode -----------------------------------------------------------------

    def encode(self, message: np.ndarray) -> np.ndarray:
        """Encode ``k`` message bits into an ``n``-bit codeword."""
        msg = np.asarray(message, dtype=np.uint8)
        if msg.shape != (self.k,):
            raise ValueError(f"expected {self.k} message bits, got {msg.shape}")
        parity = (self._p @ msg) % 2
        permuted = np.concatenate([parity.astype(np.uint8), msg])
        codeword = permuted[self._inv_perm]
        return codeword.astype(np.uint8)

    def extract_message(self, codeword: np.ndarray) -> np.ndarray:
        """Recover the message bits from a codeword."""
        permuted = np.asarray(codeword, dtype=np.uint8)[self._perm]
        return permuted[self.n - self.k :].copy()

    def is_codeword(self, bits: np.ndarray) -> bool:
        """Check the parity equations (the decoder's early-stop test)."""
        return not ((self.h @ np.asarray(bits, dtype=np.int64)) % 2).any()

    # -- decode -----------------------------------------------------------------

    def decode(
        self,
        llr: np.ndarray,
        max_iterations: int = 10,
        normalization: float = 0.75,
    ) -> "tuple[np.ndarray, int]":
        """Normalized min-sum decoding with early stop.

        Args:
            llr: channel log-likelihood ratios (positive = bit 0 likely).
            max_iterations: iteration cap (the paper's receiver uses 10).
            normalization: min-sum scaling factor.

        Returns:
            ``(hard bits, iterations used)``; ``iterations`` is
            ``max_iterations + 1`` when the decoder did not converge.
        """
        llr = np.asarray(llr, dtype=np.float64)
        if llr.shape != (self.n,):
            raise ValueError(f"expected {self.n} LLRs, got {llr.shape}")

        num_checks = self.h.shape[0]
        # check-to-variable messages, indexed per check row.
        c2v = [np.zeros(idx.size) for idx in self._check_index]
        total = llr.copy()

        for iteration in range(1, max_iterations + 1):
            # Horizontal (layered) pass: process checks sequentially,
            # updating the running totals in place, as in layered NMS.
            for row, idx in enumerate(self._check_index):
                extrinsic = total[idx] - c2v[row]
                signs = np.sign(extrinsic)
                signs[signs == 0] = 1.0
                magnitude = np.abs(extrinsic)
                order = np.argsort(magnitude)
                min1 = magnitude[order[0]]
                min2 = magnitude[order[1]] if idx.size > 1 else min1
                parity = np.prod(signs)
                new = np.where(
                    np.arange(idx.size) == order[0], min2, min1
                )
                new = normalization * new * parity * signs
                total[idx] = extrinsic + new
                c2v[row] = new
            hard = (total < 0).astype(np.uint8)
            if self.is_codeword(hard):
                return hard, iteration
        return (total < 0).astype(np.uint8), max_iterations + 1
