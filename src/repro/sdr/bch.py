"""BCH block code — the receiver's outer code (Decoder BCH, tau_19).

A binary primitive BCH(n = 2^m - 1, k, t) codec with:

* systematic polynomial-division encoding,
* syndrome computation,
* Berlekamp-Massey error-locator synthesis,
* Chien-search root finding and bit correction.

The paper's DVB-S2 configuration uses a shortened BCH over GF(2^16) with
K = 14232; this implementation supports any supported field degree, and the
end-to-end chain uses a smaller field for tractable pure-Python decoding
(the substitution is documented in DESIGN.md — the *decode HIHO* code path
and cost structure is what matters for scheduling).
"""

from __future__ import annotations

import numpy as np

from .galois import GaloisField

__all__ = ["BchCodec"]


class BchCodec:
    """A binary primitive BCH codec over GF(2^m).

    Attributes:
        m: field degree; code length is ``n = 2^m - 1``.
        t: correctable errors per codeword.
        n: codeword length in bits.
        k: message length in bits.
    """

    def __init__(self, m: int = 6, t: int = 2) -> None:
        self.field = GaloisField(m)
        self.m = m
        self.t = t
        self.n = self.field.size - 1
        self.generator = self.field.bch_generator(t)
        self.k = self.n - (len(self.generator) - 1)
        if self.k <= 0:
            raise ValueError(
                f"BCH(m={m}, t={t}) has no message bits (k={self.k})"
            )
        self._gen_arr = np.array(self.generator, dtype=np.uint8)

    # -- encoding -------------------------------------------------------------

    def encode(self, message: np.ndarray) -> np.ndarray:
        """Systematically encode ``k`` message bits into ``n`` code bits.

        Layout: ``codeword = [parity (n - k) | message (k)]``.

        Raises:
            ValueError: for a wrong-size or non-binary message.
        """
        msg = np.asarray(message, dtype=np.uint8)
        if msg.shape != (self.k,):
            raise ValueError(f"expected {self.k} message bits, got {msg.shape}")
        if ((msg != 0) & (msg != 1)).any():
            raise ValueError("message must be binary")

        # Polynomial division of x^(n-k) * m(x) by g(x) over GF(2).
        degree = len(self.generator) - 1
        remainder = np.zeros(degree, dtype=np.uint8)
        for bit in msg[::-1]:  # highest-degree message coefficient first
            feedback = bit ^ remainder[-1]
            remainder[1:] = remainder[:-1]
            remainder[0] = 0
            if feedback:
                remainder ^= self._gen_arr[:-1] * feedback
        codeword = np.concatenate([remainder, msg])
        return codeword.astype(np.uint8)

    # -- decoding ---------------------------------------------------------------

    def syndromes(self, received: np.ndarray) -> "list[int]":
        """Syndromes ``S_i = r(alpha^i)`` for i = 1..2t."""
        field = self.field
        out = []
        positions = np.flatnonzero(received)
        for i in range(1, 2 * self.t + 1):
            s = 0
            for pos in positions:
                s ^= field.pow_alpha(i * int(pos))
            out.append(s)
        return out

    def _berlekamp_massey(self, syndromes: "list[int]") -> "list[int]":
        """Error-locator polynomial sigma(x) from the syndromes."""
        field = self.field
        sigma = [1]
        prev = [1]
        l = 0
        shift = 1
        for step, s in enumerate(syndromes):
            # Discrepancy.
            delta = s
            for j in range(1, l + 1):
                if j < len(sigma) and sigma[j]:
                    delta ^= field.mul(sigma[j], syndromes[step - j])
            if delta == 0:
                shift += 1
                continue
            candidate = list(sigma)
            scaled = [0] * shift + [
                field.mul(delta, c) for c in prev
            ]
            width = max(len(sigma), len(scaled))
            sigma = [
                (sigma[i] if i < len(sigma) else 0)
                ^ (scaled[i] if i < len(scaled) else 0)
                for i in range(width)
            ]
            if 2 * l <= step:
                l = step + 1 - l
                prev = [field.div(c, delta) for c in candidate]
                shift = 1
            else:
                shift += 1
        return sigma

    def decode(self, received: np.ndarray) -> "tuple[np.ndarray, int]":
        """Correct up to ``t`` bit errors and extract the message.

        Args:
            received: ``n`` hard bits.

        Returns:
            ``(message bits, corrected_count)``; ``corrected_count`` is -1
            when decoding failed (more than ``t`` errors detected).
        """
        word = np.array(received, dtype=np.uint8)
        if word.shape != (self.n,):
            raise ValueError(f"expected {self.n} bits, got {word.shape}")

        syndromes = self.syndromes(word)
        if not any(syndromes):
            return word[self.n - self.k :].copy(), 0

        sigma = self._berlekamp_massey(syndromes)
        errors = len(sigma) - 1
        if errors > self.t:
            return word[self.n - self.k :].copy(), -1

        # Chien search: roots alpha^{-pos} locate error positions.
        field = self.field
        locations = []
        for pos in range(self.n):
            x = field.pow_alpha(-pos)
            if field.poly_eval(sigma, x) == 0:
                locations.append(pos)
        if len(locations) != errors:
            return word[self.n - self.k :].copy(), -1

        for pos in locations:
            word[pos] ^= 1
        # Sanity: the corrected word must be a codeword.
        if any(self.syndromes(word)):
            return word[self.n - self.k :].copy(), -1
        return word[self.n - self.k :].copy(), len(locations)
