"""Galois-field arithmetic GF(2^m) for the BCH codec.

Implements the standard table-driven field: elements are integers whose bits
are polynomial coefficients over GF(2); multiplication uses log/antilog
tables built from a primitive polynomial.  Everything the BCH
encoder/decoder needs: multiply, inverse, power, and minimal-polynomial /
generator-polynomial construction.

This is real (if compact) finite-field code — the reproduction's DVB-S2
receiver decodes actual BCH codewords with it.
"""

from __future__ import annotations

import numpy as np

__all__ = ["GaloisField", "DEFAULT_PRIMITIVE_POLYS"]

#: Primitive polynomials (as integers, bit i = coefficient of x^i) for the
#: field sizes the codecs use.
DEFAULT_PRIMITIVE_POLYS: dict[int, int] = {
    3: 0b1011,         # x^3 + x + 1
    4: 0b10011,        # x^4 + x + 1
    5: 0b100101,       # x^5 + x^2 + 1
    6: 0b1000011,      # x^6 + x + 1
    7: 0b10001001,     # x^7 + x^3 + 1
    8: 0b100011101,    # x^8 + x^4 + x^3 + x^2 + 1
    10: 0b10000001001, # x^10 + x^3 + 1
}


class GaloisField:
    """GF(2^m) with log/antilog tables.

    Attributes:
        m: field degree (2^m elements).
        size: number of elements ``2^m``.
        primitive_poly: the defining primitive polynomial.
    """

    def __init__(self, m: int, primitive_poly: int | None = None) -> None:
        if primitive_poly is None:
            try:
                primitive_poly = DEFAULT_PRIMITIVE_POLYS[m]
            except KeyError:
                raise ValueError(
                    f"no default primitive polynomial for m={m}; pass one"
                ) from None
        self.m = m
        self.size = 1 << m
        self.primitive_poly = primitive_poly

        # alpha^i for i in [0, 2^m - 2]; log is the inverse map.
        exp = np.zeros(2 * self.size, dtype=np.int64)
        log = np.zeros(self.size, dtype=np.int64)
        x = 1
        for i in range(self.size - 1):
            exp[i] = x
            log[x] = i
            x <<= 1
            if x & self.size:
                x ^= primitive_poly
        if x != 1:
            raise ValueError(
                f"polynomial {primitive_poly:#b} is not primitive for m={m}"
            )
        # Duplicate for index wrap-around (avoids modulo in hot paths).
        exp[self.size - 1 : 2 * (self.size - 1)] = exp[: self.size - 1]
        self._exp = exp
        self._log = log

    # -- element arithmetic ---------------------------------------------------

    @staticmethod
    def add(a: int, b: int) -> int:
        """Addition = XOR in characteristic 2."""
        return a ^ b

    def mul(self, a: int, b: int) -> int:
        """Field multiplication."""
        if a == 0 or b == 0:
            return 0
        return int(self._exp[self._log[a] + self._log[b]])

    def inv(self, a: int) -> int:
        """Multiplicative inverse.

        Raises:
            ZeroDivisionError: for the zero element.
        """
        if a == 0:
            raise ZeroDivisionError("0 has no inverse in GF(2^m)")
        return int(self._exp[(self.size - 1) - self._log[a]])

    def div(self, a: int, b: int) -> int:
        """Field division ``a / b``."""
        return self.mul(a, self.inv(b)) if a else 0

    def pow_alpha(self, i: int) -> int:
        """``alpha^i`` for any integer exponent."""
        return int(self._exp[i % (self.size - 1)])

    def log_alpha(self, a: int) -> int:
        """Discrete log base alpha.

        Raises:
            ValueError: for the zero element.
        """
        if a == 0:
            raise ValueError("log of 0 is undefined")
        return int(self._log[a])

    # -- polynomials over GF(2^m) (lists of coefficients, low degree first) ---

    def poly_eval(self, poly: "list[int]", x: int) -> int:
        """Evaluate a polynomial at ``x`` (Horner)."""
        result = 0
        for coeff in reversed(poly):
            result = self.mul(result, x) ^ coeff
        return result

    def poly_mul(self, a: "list[int]", b: "list[int]") -> "list[int]":
        """Multiply two polynomials over the field."""
        out = [0] * (len(a) + len(b) - 1)
        for i, ca in enumerate(a):
            if ca == 0:
                continue
            for j, cb in enumerate(b):
                if cb:
                    out[i + j] ^= self.mul(ca, cb)
        return out

    # -- code construction ------------------------------------------------------

    def minimal_polynomial(self, element: int) -> "list[int]":
        """Minimal polynomial over GF(2) of a field element.

        Built from the conjugacy class {e, e^2, e^4, ...}; coefficients are
        0/1 (the polynomial lies in GF(2)[x]).
        """
        conjugates = []
        e = element
        while e not in conjugates:
            conjugates.append(e)
            e = self.mul(e, e)
        poly = [1]
        for root in conjugates:
            poly = self.poly_mul(poly, [root, 1])
        if any(c not in (0, 1) for c in poly):
            raise AssertionError(
                "minimal polynomial must have GF(2) coefficients"
            )
        return poly

    def bch_generator(self, t: int) -> "list[int]":
        """Generator polynomial of the t-error-correcting primitive BCH code.

        LCM of the minimal polynomials of alpha, alpha^2, ..., alpha^{2t};
        coefficients in GF(2) (0/1 ints), lowest degree first.
        """
        if t < 1:
            raise ValueError("t must be >= 1")
        generator = [1]
        seen_polys: set[tuple[int, ...]] = set()
        for i in range(1, 2 * t + 1):
            m_poly = tuple(self.minimal_polynomial(self.pow_alpha(i)))
            if m_poly in seen_polys:
                continue
            seen_polys.add(m_poly)
            generator = self.poly_mul(generator, list(m_poly))
        return generator
