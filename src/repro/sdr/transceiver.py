"""A functional DVB-S2-like transceiver built from the signal blocks.

This assembles the package's real signal-processing blocks — binary/symbol
scramblers, BCH and LDPC codecs, QPSK modem, RRC filters, PL framing and
synchronization — into an executable transmitter and a receiver whose task
list mirrors the paper's Table III receiver (same names, same replicability,
and Table III weights attached for scheduling).

Scale substitution (DESIGN.md §3): the standard's 64800-bit FECFRAME with
K = 14232 is far beyond pure-Python decoding budgets; the functional chain
uses a shortened BCH(63, 51, t=2) outer code and a rate-1/2 LDPC(256, 128)
inner code.  Every receiver code path (descramble, sync, demodulate,
deinterleave, LDPC NMS decode with early stop, BCH Berlekamp-Massey decode,
descramble, monitor) is exercised bit-true at that reduced scale.

The produced :class:`CallableTask` list plugs directly into
:class:`~repro.streampu.runtime.PipelineRuntime`, so a *schedule computed by
the paper's strategies executes the actual DSP* — see
``examples/functional_transceiver.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.task import Task, TaskChain
from ..streampu.module import CallableTask
from .bch import BchCodec
from .dvbs2 import DVBS2_TASK_TABLE
from .filters import MatchedFilter, PulseShaper
from .ldpc import LdpcCode
from .modem import AwgnChannel, QpskModem, estimate_noise_sigma
from .plframe import (
    PlFramer,
    apply_frequency_offset,
    correlate_frame_start,
    decision_directed_phase_track,
    estimate_frequency_offset,
)
from .scrambler import BinaryScrambler, SymbolScrambler

__all__ = ["TransceiverConfig", "FunctionalTransceiver", "FramePayload"]


@dataclass(frozen=True, slots=True)
class TransceiverConfig:
    """Dimensioning of the functional link.

    Attributes:
        bch_m: BCH field degree (codewords of ``2^m - 1`` bits).
        bch_t: BCH correctable errors.
        ldpc_n: LDPC codeword length (bits; must be even for QPSK).
        ldpc_rate: LDPC design rate.
        snr_db: channel symbol SNR; the default sits in the error-free
            zone (the paper's receiver is likewise evaluated in the
            "error-free SNR zone", footnote 5).
        frequency_offset: residual carrier (cycles/symbol) injected at TX.
        samples_per_symbol: RRC oversampling factor.
        seed: base seed for channel noise and message generation.
    """

    bch_m: int = 6
    bch_t: int = 2
    ldpc_n: int = 256
    ldpc_rate: float = 0.5
    snr_db: float = 9.0
    frequency_offset: float = 0.001
    samples_per_symbol: int = 4
    seed: int = 0


@dataclass
class FramePayload:
    """The mutable frame state flowing through the pipeline tasks."""

    index: int
    message: np.ndarray | None = None
    samples: np.ndarray | None = None
    symbols: np.ndarray | None = None
    header: np.ndarray | None = None
    noise_sigma: float = 0.0
    llr: np.ndarray | None = None
    bits: np.ndarray | None = None
    decoded: np.ndarray | None = None
    ldpc_iterations: int = 0
    bch_corrections: int = 0
    bit_errors: int = -1
    extras: dict = field(default_factory=dict)


class FunctionalTransceiver:
    """The executable transmitter/receiver pair."""

    def __init__(self, config: TransceiverConfig = TransceiverConfig()) -> None:
        if config.ldpc_n % 2:
            raise ValueError("ldpc_n must be even for QPSK mapping")
        self.config = config
        self.bch = BchCodec(config.bch_m, config.bch_t)
        self.ldpc = LdpcCode(config.ldpc_n, config.ldpc_rate)

        #: How many whole BCH codewords fit into the LDPC message bits.
        self.bch_blocks = self.ldpc.k // self.bch.n
        if self.bch_blocks < 1:
            raise ValueError(
                "LDPC message too small to carry one BCH codeword; "
                "increase ldpc_n or decrease bch_m"
            )
        #: Information bits carried per frame.
        self.frame_bits = self.bch_blocks * self.bch.k
        self._ldpc_pad = self.ldpc.k - self.bch_blocks * self.bch.n

        self.bit_scrambler = BinaryScrambler(max_bits=self.ldpc.n)
        self.symbol_scrambler = SymbolScrambler(max_symbols=self.ldpc.n)
        self.modem = QpskModem()
        self.framer = PlFramer()
        self.shaper = PulseShaper(config.samples_per_symbol)
        self.matched = MatchedFilter(config.samples_per_symbol)
        self.channel = AwgnChannel(config.snr_db, seed=config.seed)
        rng = np.random.default_rng(config.seed + 1)
        self._interleaver = rng.permutation(self.ldpc.n)
        self._deinterleaver = np.argsort(self._interleaver)
        self._message_rng_seed = config.seed + 2

    # -- transmitter -------------------------------------------------------

    def random_message(self, frame_index: int) -> np.ndarray:
        """Deterministic per-frame message bits."""
        rng = np.random.default_rng(self._message_rng_seed + frame_index)
        return rng.integers(0, 2, self.frame_bits).astype(np.uint8)

    def transmit(self, message: np.ndarray) -> np.ndarray:
        """Full TX chain: scramble, BCH, LDPC, interleave, map, frame, RRC.

        Returns the oversampled waveform after the channel-facing shaping
        (noise and carrier offset are applied separately by
        :meth:`through_channel`).
        """
        message = np.asarray(message, dtype=np.uint8)
        if message.shape != (self.frame_bits,):
            raise ValueError(
                f"expected {self.frame_bits} message bits, got {message.shape}"
            )
        scrambled = self.bit_scrambler.scramble(message)
        blocks = [
            self.bch.encode(
                scrambled[b * self.bch.k : (b + 1) * self.bch.k]
            )
            for b in range(self.bch_blocks)
        ]
        outer = np.concatenate(blocks)
        padded = np.concatenate(
            [outer, np.zeros(self._ldpc_pad, dtype=np.uint8)]
        )
        codeword = self.ldpc.encode(padded)
        interleaved = codeword[self._interleaver]
        symbols = self.modem.modulate(interleaved)
        scrambled_syms = self.symbol_scrambler.scramble(symbols)
        framed = self.framer.add_header(scrambled_syms)
        return self.shaper.shape(framed)

    def through_channel(self, waveform: np.ndarray) -> np.ndarray:
        """Apply the residual carrier offset and AWGN."""
        offset = apply_frequency_offset(
            waveform,
            self.config.frequency_offset / self.config.samples_per_symbol,
        )
        return self.channel.transmit(offset)

    # -- receiver tasks -------------------------------------------------------

    def receiver_tasks(self) -> "list[CallableTask]":
        """The executable receiver as StreamPU-style tasks.

        Task names, order and replicability mirror the functional subset of
        Table III; each carries the corresponding Mac Studio big-core weight
        so the list doubles as scheduling input via :meth:`receiver_chain`.
        """
        num_payload_symbols = self.ldpc.n // 2

        def radio_receive(p: FramePayload) -> FramePayload:
            # Synthesizes the arriving waveform: TX + channel.  A real
            # radio hands over samples; the loopback keeps the chain
            # self-contained (and the task stateful, as in Table III).
            p.message = self.random_message(p.index)
            p.samples = self.through_channel(self.transmit(p.message))
            return p

        def agc(p: FramePayload) -> FramePayload:
            power = np.sqrt(np.mean(np.abs(p.samples) ** 2))
            p.samples = p.samples / max(power, 1e-12)
            return p

        def matched_part1(p: FramePayload) -> FramePayload:
            p.samples = self.matched.filter(p.samples)
            return p

        def matched_part2(p: FramePayload) -> FramePayload:
            total = self.framer.header_symbols + num_payload_symbols
            p.symbols = self.matched.downsample(p.samples, total)
            return p

        def frame_sync_part1(p: FramePayload) -> FramePayload:
            correlation, start = correlate_frame_start(
                p.symbols, self.framer.header
            )
            p.extras["frame_start"] = start
            return p

        def frame_sync_part2(p: FramePayload) -> FramePayload:
            # Clamp so a full frame always remains: at hopeless SNR the
            # correlation peak can land anywhere, and the pipeline must
            # degrade to bit errors, never crash.
            limit = p.symbols.size - (
                self.framer.header_symbols + num_payload_symbols
            )
            start = min(p.extras["frame_start"], max(0, limit))
            p.header = p.symbols[start : start + self.framer.header_symbols]
            p.symbols = p.symbols[start:]
            return p

        def fine_freq_lr(p: FramePayload) -> FramePayload:
            p.extras["freq_estimate"] = estimate_frequency_offset(
                p.header, self.framer.header
            )
            return p

        def fine_freq_pf(p: FramePayload) -> FramePayload:
            p.symbols = apply_frequency_offset(
                p.symbols, -p.extras["freq_estimate"]
            )
            # Phase correction from the de-rotated header, then a
            # decision-directed loop tracking the residual (the 26-pilot
            # estimate alone leaves enough frequency error to rotate the
            # payload tail off its quadrant).
            header = p.symbols[: self.framer.header_symbols]
            phase = np.angle(np.sum(header * np.conj(self.framer.header)))
            p.symbols = decision_directed_phase_track(
                p.symbols * np.exp(-1j * phase)
            )
            return p

        def plh_remove(p: FramePayload) -> FramePayload:
            p.symbols = self.framer.remove_header(p.symbols)[
                :num_payload_symbols
            ]
            return p

        def symbol_descramble(p: FramePayload) -> FramePayload:
            p.symbols = self.symbol_scrambler.descramble(p.symbols)
            return p

        def noise_estimate(p: FramePayload) -> FramePayload:
            p.noise_sigma = estimate_noise_sigma(p.symbols)
            return p

        def qpsk_demodulate(p: FramePayload) -> FramePayload:
            p.llr = self.modem.demodulate_soft(p.symbols, p.noise_sigma)
            return p

        def deinterleave(p: FramePayload) -> FramePayload:
            p.llr = p.llr[self._deinterleaver]
            return p

        def ldpc_decode(p: FramePayload) -> FramePayload:
            bits, iterations = self.ldpc.decode(p.llr, max_iterations=10)
            p.bits = bits
            p.ldpc_iterations = iterations
            return p

        def bch_decode(p: FramePayload) -> FramePayload:
            inner_message = self.ldpc.extract_message(p.bits)
            outer = inner_message[: self.bch_blocks * self.bch.n]
            decoded = []
            corrections = 0
            for b in range(self.bch_blocks):
                msg, fixed = self.bch.decode(
                    outer[b * self.bch.n : (b + 1) * self.bch.n]
                )
                decoded.append(msg)
                corrections += max(fixed, 0)
            p.decoded = np.concatenate(decoded)
            p.bch_corrections = corrections
            return p

        def binary_descramble(p: FramePayload) -> FramePayload:
            p.decoded = self.bit_scrambler.descramble(p.decoded)
            return p

        def monitor(p: FramePayload) -> FramePayload:
            p.bit_errors = int(np.sum(p.decoded != p.message))
            return p

        weights = {r.index: r.mac_big for r in DVBS2_TASK_TABLE}
        spec = [
            (1, "Radio - receive", False, radio_receive),
            (2, "Multiplier AGC - imultiply", False, agc),
            (4, "Filter Matched - filter (part 1)", False, matched_part1),
            (5, "Filter Matched - filter (part 2)", False, matched_part2),
            (9, "Sync. Frame - synchronize (part 1)", False, frame_sync_part1),
            (10, "Sync. Frame - synchronize (part 2)", False, frame_sync_part2),
            # Functional deviation from the Table III listing order: the
            # symbol descrambler must see the payload with the PL header
            # already stripped (the transmitter scrambles the payload only),
            # so tau_11 runs after tau_12-14 here.
            (12, "Sync. Freq. Fine L&R - synchronize", False, fine_freq_lr),
            (13, "Sync. Freq. Fine P/F - synchronize", True, fine_freq_pf),
            (14, "Framer PLH - remove", True, plh_remove),
            (11, "Scrambler Symbol - descramble", True, symbol_descramble),
            (15, "Noise Estimator - estimate", True, noise_estimate),
            (16, "Modem QPSK - demodulate", True, qpsk_demodulate),
            (17, "Interleaver - deinterleave", True, deinterleave),
            (18, "Decoder LDPC - decode SIHO", True, ldpc_decode),
            (19, "Decoder BCH - decode HIHO", True, bch_decode),
            (20, "Scrambler Binary - descramble", True, binary_descramble),
            (23, "Monitor - check errors", True, monitor),
        ]
        return [
            CallableTask(weight=weights[idx], func=func, name=name)
            for idx, name, _rep, func in spec
        ]

    def receiver_chain(self) -> TaskChain:
        """The schedulable chain matching :meth:`receiver_tasks`.

        Weights come from Table III (Mac Studio profile) for the functional
        subset of tasks, so schedules computed on this chain map one-to-one
        onto the executable tasks.
        """
        by_index = {r.index: r for r in DVBS2_TASK_TABLE}
        indices = [1, 2, 4, 5, 9, 10, 12, 13, 14, 11, 15, 16, 17, 18, 19, 20, 23]
        tasks = [
            Task(
                name=f"tau_{i} {by_index[i].name}",
                weight_big=by_index[i].mac_big,
                weight_little=by_index[i].mac_little,
                replicable=by_index[i].replicable,
            )
            for i in indices
        ]
        return TaskChain(tasks, name="functional DVB-S2 receiver")

    # -- loopback convenience ----------------------------------------------------

    def run_frame(self, frame_index: int) -> FramePayload:
        """Run one frame through all receiver tasks sequentially."""
        payload = FramePayload(index=frame_index)
        for task in self.receiver_tasks():
            payload = task.process(payload)
        return payload
