"""Physical-layer framing and synchronization — tau_9/tau_10 (Sync. Frame)
and tau_14 (Framer PLH).

* :class:`PlFramer` prepends a known PL header (PLH) of pilot symbols to
  each payload frame (the transmitter side) and removes it (tau_14).
* :func:`correlate_frame_start` implements frame synchronization: find the
  header by complex correlation against the known pilots — the job of the
  receiver's Sync. Frame tasks, split here into the correlation (part 1)
  and the peak search/alignment (part 2) to mirror the 23-task layout.
* :func:`apply_frequency_offset` / :func:`estimate_frequency_offset`
  provide the residual carrier model used by the fine-frequency sync tasks
  (tau_12/tau_13): a pilot-aided phase-slope estimate (Luise&Reggiannini-
  style simplification).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "PlFramer",
    "correlate_frame_start",
    "apply_frequency_offset",
    "estimate_frequency_offset",
    "decision_directed_phase_track",
]


class PlFramer:
    """Adds/removes a known pilot header in front of payload symbols."""

    def __init__(self, header_symbols: int = 26, seed: int = 90) -> None:
        if header_symbols < 4:
            raise ValueError("the header needs at least 4 symbols")
        rng = np.random.default_rng(seed)
        phases = rng.integers(0, 4, header_symbols)
        #: The known unit-energy pilot sequence.
        self.header = np.exp(1j * (np.pi / 2 * phases + np.pi / 4))

    @property
    def header_symbols(self) -> int:
        """Header length in symbols."""
        return self.header.size

    def add_header(self, payload: np.ndarray) -> np.ndarray:
        """Prepend the PLH pilots to a payload frame."""
        return np.concatenate([self.header, np.asarray(payload, dtype=complex)])

    def remove_header(self, frame: np.ndarray) -> np.ndarray:
        """Drop the PLH (tau_14, Framer PLH - remove).

        Raises:
            ValueError: when the frame is shorter than the header.
        """
        frame = np.asarray(frame, dtype=np.complex128)
        if frame.size < self.header.size:
            raise ValueError("frame shorter than the PL header")
        return frame[self.header.size :]


def correlate_frame_start(
    samples: np.ndarray, header: np.ndarray
) -> "tuple[np.ndarray, int]":
    """Frame synchronization by correlation against the known header.

    Args:
        samples: received symbol-rate samples containing a frame.
        header: the known pilot sequence.

    Returns:
        ``(correlation magnitudes, best start index)``.

    Raises:
        ValueError: when the window is shorter than the header.
    """
    samples = np.asarray(samples, dtype=np.complex128)
    header = np.asarray(header, dtype=np.complex128)
    if samples.size < header.size:
        raise ValueError("window shorter than the header")
    # Part 1: sliding correlation (the heavy task).
    conj = np.conj(header[::-1])
    correlation = np.abs(np.convolve(samples, conj, mode="valid"))
    # Part 2: peak pick (the light task).
    start = int(np.argmax(correlation))
    return correlation, start


def apply_frequency_offset(
    symbols: np.ndarray, normalized_offset: float, initial_phase: float = 0.0
) -> np.ndarray:
    """Rotate symbols by a residual carrier ``exp(j 2 pi f n + phase)``."""
    symbols = np.asarray(symbols, dtype=np.complex128)
    n = np.arange(symbols.size)
    return symbols * np.exp(
        1j * (2.0 * np.pi * normalized_offset * n + initial_phase)
    )


def decision_directed_phase_track(
    symbols: np.ndarray,
    proportional_gain: float = 0.12,
    integral_gain: float = 0.015,
) -> np.ndarray:
    """Second-order decision-directed phase tracking over QPSK symbols.

    After the pilot-aided coarse correction, a residual frequency/phase
    error remains (the 26-symbol header bounds the estimator's variance).
    This loop slices each symbol to the nearest pi/4-grid QPSK point,
    measures the phase error, and tracks it with a proportional-integral
    loop — the synchronizer structure behind the receiver's
    "Sync. Freq. Fine P/F" task.

    Args:
        symbols: unit-magnitude QPSK-like symbols (any pi/2 rotation grid).
        proportional_gain: instantaneous phase correction gain.
        integral_gain: frequency-tracking gain.

    Returns:
        The de-rotated symbol stream.
    """
    symbols = np.asarray(symbols, dtype=np.complex128)
    out = np.empty_like(symbols)
    phase = 0.0
    frequency = 0.0
    quarter = np.pi / 2.0
    for i, sample in enumerate(symbols):
        rotated = sample * np.exp(-1j * phase)
        # Nearest constellation point on the pi/4 + k*pi/2 grid.
        angle = np.angle(rotated)
        decided = quarter * np.round((angle - np.pi / 4) / quarter) + np.pi / 4
        error = angle - decided
        frequency += integral_gain * error
        phase += proportional_gain * error + frequency
        out[i] = rotated
    return out


def estimate_frequency_offset(
    received_header: np.ndarray, known_header: np.ndarray
) -> float:
    """Pilot-aided frequency estimate from the de-rotated header's phase slope.

    Computes the average phase increment between consecutive pilot symbols
    after wiping the known modulation — the fine-frequency synchronizer's
    (tau_12/tau_13) estimator, simplified to first-order autocorrelation.

    Raises:
        ValueError: on length mismatch or too-short headers.
    """
    received = np.asarray(received_header, dtype=np.complex128)
    known = np.asarray(known_header, dtype=np.complex128)
    if received.shape != known.shape:
        raise ValueError("received and known headers must match in length")
    if received.size < 2:
        raise ValueError("need at least two pilot symbols")
    wiped = received * np.conj(known)
    autocorr = np.sum(wiped[1:] * np.conj(wiped[:-1]))
    return float(np.angle(autocorr) / (2.0 * np.pi))
