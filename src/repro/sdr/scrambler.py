"""Scramblers — tau_11 (symbol) and tau_20 (binary) of the receiver.

* :class:`BinaryScrambler` — the DVB-S2 baseband scrambler: an additive LFSR
  with polynomial ``1 + x^14 + x^15`` XORed onto the bit stream.  Additive
  scrambling is an involution: descrambling is the same operation, which is
  what makes these tasks *stateless* per frame (replicable) when the LFSR is
  reset per frame, exactly as in the receiver's task table.
* :class:`SymbolScrambler` — complex symbol (de)scrambling by a
  deterministic unit-magnitude sequence (a simplified stand-in for the
  standard's Gold-code PL scrambler; same involution structure).
"""

from __future__ import annotations

import numpy as np

__all__ = ["BinaryScrambler", "SymbolScrambler"]


class BinaryScrambler:
    """DVB-S2 BB additive scrambler (polynomial ``1 + x^14 + x^15``).

    The keystream is generated once for a maximum frame size and reused per
    frame (reset-per-frame semantics, making scrambling stateless across
    frames).
    """

    def __init__(self, max_bits: int = 1 << 16, seed_register: int = 0x4A80) -> None:
        if max_bits < 1:
            raise ValueError("max_bits must be >= 1")
        register = seed_register & 0x7FFF
        if register == 0:
            raise ValueError("the LFSR register must not start at zero")
        stream = np.empty(max_bits, dtype=np.uint8)
        for i in range(max_bits):
            bit = ((register >> 13) ^ (register >> 14)) & 1
            stream[i] = bit
            register = ((register << 1) | bit) & 0x7FFF
        self._stream = stream

    def scramble(self, bits: np.ndarray) -> np.ndarray:
        """XOR the keystream onto ``bits`` (involution).

        Raises:
            ValueError: when the frame exceeds the generated keystream.
        """
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.size > self._stream.size:
            raise ValueError(
                f"frame of {bits.size} bits exceeds keystream "
                f"({self._stream.size})"
            )
        return bits ^ self._stream[: bits.size]

    #: Descrambling is the same additive operation.
    descramble = scramble


class SymbolScrambler:
    """Complex symbol scrambler: multiply by a deterministic QPSK-phase
    sequence; descrambling multiplies by the conjugate."""

    def __init__(self, max_symbols: int = 1 << 15, seed: int = 0x18D) -> None:
        if max_symbols < 1:
            raise ValueError("max_symbols must be >= 1")
        rng = np.random.default_rng(seed)
        phases = rng.integers(0, 4, size=max_symbols)
        self._sequence = np.exp(1j * np.pi / 2 * phases)

    def scramble(self, symbols: np.ndarray) -> np.ndarray:
        """Rotate each symbol by the sequence phase."""
        symbols = np.asarray(symbols, dtype=np.complex128)
        if symbols.size > self._sequence.size:
            raise ValueError(
                f"frame of {symbols.size} symbols exceeds the sequence "
                f"({self._sequence.size})"
            )
        return symbols * self._sequence[: symbols.size]

    def descramble(self, symbols: np.ndarray) -> np.ndarray:
        """Invert :meth:`scramble` (conjugate rotation)."""
        symbols = np.asarray(symbols, dtype=np.complex128)
        if symbols.size > self._sequence.size:
            raise ValueError(
                f"frame of {symbols.size} symbols exceeds the sequence "
                f"({self._sequence.size})"
            )
        return symbols * np.conj(self._sequence[: symbols.size])
