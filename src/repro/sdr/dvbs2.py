"""The DVB-S2 receiver task chain (paper Table III).

The receiver implements the transmission phase of the ETSI EN 302 307
standard as a chain of 23 StreamPU tasks: radio reception, automatic gain
control, coarse/fine synchronization, matched filtering, frame
synchronization, QPSK demodulation, LDPC and BCH decoding, descrambling and
monitoring.  Ten tasks are stateful (synchronizers, radio, sink/source) and
cannot be replicated; thirteen are stateless.

The per-task latencies below are the paper's own profiling results (Table
III) on the two evaluated platforms, in microseconds per batch of
``interframe`` frames (4 frames on the Mac Studio, 8 on the X7 Ti).  They
are the exact scheduler inputs used to produce Table II, which is why this
module reproduces the paper's pipeline decompositions and expected periods.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.task import Task, TaskChain
from ..platform.model import Platform
from ..platform.presets import MAC_STUDIO, X7_TI

__all__ = [
    "DVBS2_TASK_TABLE",
    "DvbS2TaskRecord",
    "dvbs2_chain",
    "dvbs2_mac_studio_chain",
    "dvbs2_x7ti_chain",
    "SLOWEST_SEQUENTIAL",
    "SLOWEST_REPLICABLE",
]


@dataclass(frozen=True, slots=True)
class DvbS2TaskRecord:
    """One row of Table III.

    Attributes:
        index: 1-based task id (``tau_i``).
        name: module - task label as printed in the paper.
        replicable: True for stateless tasks.
        mac_big: latency on a Mac Studio P-core (us, per 4-frame batch).
        mac_little: latency on a Mac Studio E-core (us, per 4-frame batch).
        x7_big: latency on an X7 Ti P-core (us, per 8-frame batch).
        x7_little: latency on an X7 Ti E-core (us, per 8-frame batch).
    """

    index: int
    name: str
    replicable: bool
    mac_big: float
    mac_little: float
    x7_big: float
    x7_little: float


# fmt: off
#: Table III verbatim: (index, name, replicable, Mac B, Mac L, X7 B, X7 L).
DVBS2_TASK_TABLE: tuple[DvbS2TaskRecord, ...] = (
    DvbS2TaskRecord(1,  "Radio - receive",                     False,   52.3,  248.3,  131.7,  133.2),
    DvbS2TaskRecord(2,  "Multiplier AGC - imultiply",          False,   75.2,  149.9,  138.3,  318.1),
    DvbS2TaskRecord(3,  "Sync. Freq. Coarse - synchronize",    False,   96.4,  496.6,  113.7,  429.0),
    DvbS2TaskRecord(4,  "Filter Matched - filter (part 1)",    False,  318.9,  902.9,  334.8,  711.9),
    DvbS2TaskRecord(5,  "Filter Matched - filter (part 2)",    False,  315.1,  883.2,  329.3,  712.6),
    DvbS2TaskRecord(6,  "Sync. Timing - synchronize",          False,  950.6, 1468.9, 1341.9, 2387.1),
    DvbS2TaskRecord(7,  "Sync. Timing - extract",              False,   55.5,  106.0,   58.7,  135.1),
    DvbS2TaskRecord(8,  "Multiplier AGC - imultiply",          False,   37.1,   75.4,   63.5,  157.4),
    DvbS2TaskRecord(9,  "Sync. Frame - synchronize (part 1)",  False,  361.0, 1064.7,  365.9,  848.1),
    DvbS2TaskRecord(10, "Sync. Frame - synchronize (part 2)",  False,   52.9,  169.1,   81.1,  197.9),
    DvbS2TaskRecord(11, "Scrambler Symbol - descramble",       True,    16.0,   61.0,   25.1,   65.9),
    DvbS2TaskRecord(12, "Sync. Freq. Fine L&R - synchronize",  False,   50.5,  247.1,   54.3,  203.2),
    DvbS2TaskRecord(13, "Sync. Freq. Fine P/F - synchronize",  True,    99.2,  597.8,  253.8,  356.2),
    DvbS2TaskRecord(14, "Framer PLH - remove",                 True,    23.4,   65.1,   47.4,   87.7),
    DvbS2TaskRecord(15, "Noise Estimator - estimate",          True,    40.5,   65.4,   32.4,   65.4),
    DvbS2TaskRecord(16, "Modem QPSK - demodulate",             True,  2257.5, 4838.6, 2123.1, 5742.4),
    DvbS2TaskRecord(17, "Interleaver - deinterleave",          True,    21.1,   58.4,   29.3,   47.6),
    DvbS2TaskRecord(18, "Decoder LDPC - decode SIHO",          True,   153.2,  506.7,  239.7, 1024.4),
    DvbS2TaskRecord(19, "Decoder BCH - decode HIHO",           True,  3339.9, 7303.5, 6209.0, 8166.2),
    DvbS2TaskRecord(20, "Scrambler Binary - descramble",       True,   191.7,  464.9,  559.0,  621.8),
    DvbS2TaskRecord(21, "Sink Binary File - send",             False,    9.5,   33.3,   34.6,   75.6),
    DvbS2TaskRecord(22, "Source - generate",                   False,    4.0,   13.6,   16.9,   23.4),
    DvbS2TaskRecord(23, "Monitor - check errors",              True,     9.5,   21.0,    9.2,   20.5),
)
# fmt: on

#: Table III highlights: the two slowest sequential / replicable tasks.
SLOWEST_SEQUENTIAL: tuple[int, ...] = (6, 9)
SLOWEST_REPLICABLE: tuple[int, ...] = (19, 16)


def dvbs2_chain(platform: Platform) -> TaskChain:
    """Build the DVB-S2 receiver chain profiled for ``platform``.

    Args:
        platform: one of the presets (:data:`~repro.platform.MAC_STUDIO`,
            :data:`~repro.platform.X7_TI`) or any platform whose name starts
            with theirs (half-core variants keep the same profile).

    Raises:
        ValueError: if the platform has no profile in Table III.
    """
    if platform.name.startswith(MAC_STUDIO.name):
        pick = lambda r: (r.mac_big, r.mac_little)  # noqa: E731
    elif platform.name.startswith(X7_TI.name):
        pick = lambda r: (r.x7_big, r.x7_little)  # noqa: E731
    else:
        raise ValueError(
            f"no DVB-S2 profile for platform {platform.name!r}; "
            "use MAC_STUDIO or X7_TI"
        )
    tasks = []
    for record in DVBS2_TASK_TABLE:
        big, little = pick(record)
        tasks.append(
            Task(
                name=f"tau_{record.index} {record.name}",
                weight_big=big,
                weight_little=little,
                replicable=record.replicable,
            )
        )
    return TaskChain(tasks, name=f"DVB-S2 receiver @ {platform.name}")


def dvbs2_mac_studio_chain() -> TaskChain:
    """The receiver chain with Mac Studio latencies (4-frame batches)."""
    return dvbs2_chain(MAC_STUDIO)


def dvbs2_x7ti_chain() -> TaskChain:
    """The receiver chain with X7 Ti latencies (8-frame batches)."""
    return dvbs2_chain(X7_TI)
