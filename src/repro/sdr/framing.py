"""DVB-S2 framing constants and throughput conversions.

The paper's receiver decodes normal FECFRAMEs with MODCOD 2 (QPSK) at LDPC
code rate 8/9: the BCH information block carries ``K = 14232`` bits per
frame.  Task latencies in Table III are profiled *per batch* of
``interframe`` frames (4 on the Mac Studio, 8 on the X7 Ti), so:

* ``FPS  = interframe / period``  (period in seconds), and
* ``Mb/s = FPS * K / 1e6``.

E.g. Table II's ``S_1``: period 1128.7 us with interframe 4 gives
``4 / 1128.7e-6 = 3544`` FPS and ``3544 * 14232 / 1e6 = 50.4`` Mb/s.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FrameFormat", "DVBS2_NORMAL_R8_9", "fps_from_period_us", "mbps_from_fps"]


@dataclass(frozen=True, slots=True)
class FrameFormat:
    """A DVB-S2 frame configuration.

    Attributes:
        name: configuration label.
        info_bits: information bits per frame (``K``).
        ldpc_rate: LDPC code rate (informational).
        modcod: MODCOD index (informational).
        ldpc_frame_bits: coded bits per LDPC frame (informational).
    """

    name: str
    info_bits: int
    ldpc_rate: str = ""
    modcod: int = 0
    ldpc_frame_bits: int = 0

    def __post_init__(self) -> None:
        if self.info_bits <= 0:
            raise ValueError("info_bits must be positive")

    def throughput_mbps(self, fps: float) -> float:
        """Information throughput in Mb/s for a frame rate in frames/s."""
        return fps * self.info_bits / 1e6


#: The paper's receiver configuration: K = 14232, R = 8/9, MODCOD 2.
DVBS2_NORMAL_R8_9 = FrameFormat(
    name="DVB-S2 normal FECFRAME, MODCOD 2, R=8/9",
    info_bits=14232,
    ldpc_rate="8/9",
    modcod=2,
    ldpc_frame_bits=64800,
)


def fps_from_period_us(period_us: float, interframe: int) -> float:
    """Frames per second for a pipeline period given in microseconds.

    Args:
        period_us: steady-state pipeline period (per batch), microseconds.
        interframe: frames per batch.
    """
    if period_us <= 0:
        raise ValueError(f"period must be positive, got {period_us}")
    if interframe < 1:
        raise ValueError(f"interframe must be >= 1, got {interframe}")
    return interframe / (period_us * 1e-6)


def mbps_from_fps(fps: float, frame: FrameFormat = DVBS2_NORMAL_R8_9) -> float:
    """Information throughput (Mb/s) for a frame rate (frames/s)."""
    return frame.throughput_mbps(fps)
