"""Platform models and the paper's platform presets."""

from .model import CoreClass, Platform
from .presets import (
    MAC_STUDIO,
    REAL_CONFIGURATIONS,
    SIMULATION_BUDGETS,
    X7_TI,
    X7_TI_3T,
    ktype_simulation_platform,
    simulation_platform,
)

__all__ = [
    "CoreClass",
    "Platform",
    "MAC_STUDIO",
    "X7_TI",
    "X7_TI_3T",
    "SIMULATION_BUDGETS",
    "REAL_CONFIGURATIONS",
    "simulation_platform",
    "ktype_simulation_platform",
]
