"""Platform models and the paper's platform presets."""

from .model import Platform
from .presets import (
    MAC_STUDIO,
    REAL_CONFIGURATIONS,
    SIMULATION_BUDGETS,
    X7_TI,
    simulation_platform,
)

__all__ = [
    "Platform",
    "MAC_STUDIO",
    "X7_TI",
    "SIMULATION_BUDGETS",
    "REAL_CONFIGURATIONS",
    "simulation_platform",
]
