"""Platform presets used throughout the paper's evaluation.

* The three *simulation* budgets of Section VI-A-1:
  ``(16B, 4L)``, ``(10B, 10L)``, ``(4B, 16L)``.
* The two *real* SDR platforms of Section VI-A-2:

  - **Mac Studio** — Apple M1 Ultra, 16 performance + 4 efficiency cores,
    DVB-S2 receiver run at interframe level 4;
  - **X7 Ti** — Minisforum AtomMan X7 Ti (Intel Ultra 9 185H), 6 P-cores +
    8 E-cores usable (2 LPE-cores left unused), interframe level 8.

  Each real platform is evaluated with all cores and with half of them,
  giving the four Table II configurations ``(8B, 2L)``, ``(16B, 4L)``,
  ``(3B, 4L)``, ``(6B, 8L)``.
"""

from __future__ import annotations

from ..core.types import Resources, format_usage
from .model import CoreClass, Platform

__all__ = [
    "MAC_STUDIO",
    "X7_TI",
    "X7_TI_3T",
    "SIMULATION_BUDGETS",
    "simulation_platform",
    "ktype_simulation_platform",
    "REAL_CONFIGURATIONS",
]

#: Apple Mac Studio (M1 Ultra) as configured in the paper.
MAC_STUDIO = Platform(
    name="Mac Studio",
    resources=Resources(big=16, little=4),
    big_frequency_ghz=3.2,
    little_frequency_ghz=2.0,
    interframe=4,
)

#: Minisforum AtomMan X7 Ti (Intel Ultra 9 185H) as configured in the paper.
X7_TI = Platform(
    name="X7 Ti",
    resources=Resources(big=6, little=8),
    big_frequency_ghz=5.1,
    little_frequency_ghz=3.8,
    interframe=8,
)

#: The X7 Ti with its 2 low-power-efficiency cores enabled as a third class
#: — the paper leaves them unused, so this is a k-type extension preset, not
#: a paper configuration.  Class order follows the type-index convention:
#: performant (P) first, then E, then LPE.
X7_TI_3T = Platform.from_core_classes(
    "X7 Ti (3 classes)",
    (
        CoreClass("P-core", 6, 5.1),
        CoreClass("E-core", 8, 3.8),
        CoreClass("LPE-core", 2, 2.5),
    ),
    interframe=8,
)

#: The three simulated budgets of the synthetic campaign (Table I, Figs. 1-2).
SIMULATION_BUDGETS: tuple[Resources, ...] = (
    Resources(16, 4),
    Resources(10, 10),
    Resources(4, 16),
)


def simulation_platform(big: int, little: int) -> Platform:
    """A synthetic platform with the given budget (for simulation studies)."""
    return Platform(
        name=f"synthetic ({big}B, {little}L)",
        resources=Resources(big, little),
    )


def ktype_simulation_platform(counts: "tuple[int, ...] | list[int]") -> Platform:
    """A synthetic k-type platform with the given per-class budget.

    Counts are ordered most performant first; at two classes this names and
    budgets the platform exactly like :func:`simulation_platform`.
    """
    budget = Resources.from_counts(counts)
    return Platform(
        name=f"synthetic {format_usage(budget.counts)}",
        resources=budget,
    )


#: The four real-world configurations of Table II, in paper order:
#: (platform, budget actually offered to the scheduler).
REAL_CONFIGURATIONS: tuple[tuple[Platform, Resources], ...] = (
    (MAC_STUDIO, Resources(8, 2)),
    (MAC_STUDIO, Resources(16, 4)),
    (X7_TI, Resources(3, 4)),
    (X7_TI, Resources(6, 8)),
)
