"""Platform descriptions.

A :class:`Platform` couples a core budget with metadata about the machine
(names, nominal frequencies) used by reports and by the runtime simulator.
Scheduling itself only needs the budget — per-task speeds come from the
profiled chain weights, since the resources are *unrelated* (the big/little
latency ratio varies per task; see Table III of the paper).

The paper's platforms have exactly two core classes; the model here admits
an arbitrary ordered list of :class:`CoreClass` descriptions (performant
first, matching the core layer's type-index convention) so k-type studies
can describe, say, a P/E/LPE laptop part.  A platform built through the
plain two-type constructor is bitwise-identical to the pre-k-type model.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable

from ..core.errors import InvalidPlatformError
from ..core.types import CoreIndex, Resources, format_usage, type_name

__all__ = ["CoreClass", "Platform"]


@dataclass(frozen=True, slots=True)
class CoreClass:
    """One homogeneous core class of a platform.

    Attributes:
        name: human-readable class name (``"P-core"``, ``"efficiency"``...).
        count: number of cores of this class.
        frequency_ghz: nominal frequency (informational; 0 = unknown).
    """

    name: str
    count: int
    frequency_ghz: float = 0.0

    def __post_init__(self) -> None:
        if self.count < 0:
            raise InvalidPlatformError(
                f"core class {self.name!r}: count must be >= 0, got {self.count}"
            )
        if self.frequency_ghz < 0:
            raise InvalidPlatformError(
                f"core class {self.name!r}: frequency must be >= 0"
            )


@dataclass(frozen=True, slots=True)
class Platform:
    """A multicore platform with one or more core classes.

    Attributes:
        name: human-readable platform name.
        resources: the core budget, performant class first.
        big_frequency_ghz: nominal frequency of class 0 (informational).
        little_frequency_ghz: nominal frequency of class 1 (informational).
        interframe: number of frames processed per pipeline traversal by the
            streaming runtime on this platform (the DVB-S2 experiments use 4
            on the Mac Studio and 8 on the X7 Ti); task latencies profiled on
            a platform are *per batch* of ``interframe`` frames.
        core_classes: optional per-class descriptions, performant first.
            When given, they must agree with ``resources`` class for class;
            when omitted (every two-type paper platform), class metadata is
            derived from the big/little fields.
    """

    name: str
    resources: Resources
    big_frequency_ghz: float = 0.0
    little_frequency_ghz: float = 0.0
    interframe: int = 1
    core_classes: tuple[CoreClass, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.resources.total <= 0:
            raise InvalidPlatformError(f"platform {self.name!r} has no cores")
        if self.interframe < 1:
            raise InvalidPlatformError(
                f"platform {self.name!r}: interframe must be >= 1"
            )
        if self.core_classes:
            counts = tuple(cls.count for cls in self.core_classes)
            if counts != self.resources.counts:
                raise InvalidPlatformError(
                    f"platform {self.name!r}: core classes {counts} disagree "
                    f"with the budget {self.resources.counts}"
                )

    @classmethod
    def from_core_classes(
        cls,
        name: str,
        classes: "Iterable[CoreClass]",
        *,
        interframe: int = 1,
    ) -> "Platform":
        """Build a platform from an ordered core-class list (performant
        first).  The big/little frequency fields are filled from the first
        two classes so two-type consumers keep working unchanged."""
        class_tuple = tuple(classes)
        if not class_tuple:
            raise InvalidPlatformError(f"platform {name!r} has no core classes")
        return cls(
            name=name,
            resources=Resources.from_counts(c.count for c in class_tuple),
            big_frequency_ghz=class_tuple[0].frequency_ghz,
            little_frequency_ghz=(
                class_tuple[1].frequency_ghz if len(class_tuple) > 1 else 0.0
            ),
            interframe=interframe,
            core_classes=class_tuple,
        )

    @property
    def ktype(self) -> int:
        """Number of core classes."""
        return self.resources.ktype

    @property
    def big(self) -> int:
        """Number of cores of the most performant class."""
        return self.resources.big

    @property
    def little(self) -> int:
        """Number of cores of class 1 (two-type platforms)."""
        return self.resources.little

    def class_name(self, core_type: CoreIndex) -> str:
        """Name of the given core class (falls back to ``big``/``little``/
        ``type2``... when no explicit class metadata was given)."""
        index = int(core_type)
        if self.core_classes:
            return self.core_classes[index].name
        if index >= self.ktype:
            raise InvalidPlatformError(
                f"platform {self.name!r} has no core class {index}"
            )
        return type_name(index)

    def frequency(self, core_type: CoreIndex) -> float:
        """Nominal frequency of the given core class (GHz; informational)."""
        index = int(core_type)
        if self.core_classes:
            return self.core_classes[index].frequency_ghz
        if index == 0:
            return self.big_frequency_ghz
        return self.little_frequency_ghz

    def halved(self) -> "Platform":
        """The paper's "half the cores" configuration of this platform.

        Halves every class pool (floor division), keeping at least one core
        in a pool that was non-empty.
        """
        counts = tuple(
            max(1, count // 2) if count else 0
            for count in self.resources.counts
        )
        classes = tuple(
            replace(cls, count=count)
            for cls, count in zip(self.core_classes, counts)
        )
        return replace(
            self,
            name=f"{self.name} (half)",
            resources=Resources.from_counts(counts),
            core_classes=classes,
        )

    def with_resources(self, big: int, little: int) -> "Platform":
        """A copy of this platform with a different two-type core budget."""
        return replace(
            self, resources=Resources(big, little), core_classes=()
        )

    def with_counts(self, counts: "Iterable[int]") -> "Platform":
        """A copy of this platform with a different k-type core budget."""
        return replace(
            self,
            resources=Resources.from_counts(counts),
            core_classes=(),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name} R={format_usage(self.resources.counts)}"
