"""Platform descriptions.

A :class:`Platform` couples a core budget ``R = (b, l)`` with metadata about
the machine (names, nominal frequencies) used by reports and by the runtime
simulator.  Scheduling itself only needs the budget — per-task speeds come
from the profiled chain weights, since the resources are *unrelated* (the
big/little latency ratio varies per task; see Table III of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.errors import InvalidPlatformError
from ..core.types import CoreType, Resources

__all__ = ["Platform"]


@dataclass(frozen=True, slots=True)
class Platform:
    """A two-type multicore platform.

    Attributes:
        name: human-readable platform name.
        resources: the core budget ``(b, l)``.
        big_frequency_ghz: nominal big-core frequency (informational).
        little_frequency_ghz: nominal little-core frequency (informational).
        interframe: number of frames processed per pipeline traversal by the
            streaming runtime on this platform (the DVB-S2 experiments use 4
            on the Mac Studio and 8 on the X7 Ti); task latencies profiled on
            a platform are *per batch* of ``interframe`` frames.
    """

    name: str
    resources: Resources
    big_frequency_ghz: float = 0.0
    little_frequency_ghz: float = 0.0
    interframe: int = 1

    def __post_init__(self) -> None:
        if self.resources.total <= 0:
            raise InvalidPlatformError(f"platform {self.name!r} has no cores")
        if self.interframe < 1:
            raise InvalidPlatformError(
                f"platform {self.name!r}: interframe must be >= 1"
            )

    @property
    def big(self) -> int:
        """Number of big cores."""
        return self.resources.big

    @property
    def little(self) -> int:
        """Number of little cores."""
        return self.resources.little

    def frequency(self, core_type: CoreType) -> float:
        """Nominal frequency of the given core type (GHz; informational)."""
        return (
            self.big_frequency_ghz
            if core_type is CoreType.BIG
            else self.little_frequency_ghz
        )

    def halved(self) -> "Platform":
        """The paper's "half the cores" configuration of this platform.

        Halves both pools (floor division), keeping at least one core in a
        pool that was non-empty.
        """
        big = max(1, self.big // 2) if self.big else 0
        little = max(1, self.little // 2) if self.little else 0
        return replace(
            self,
            name=f"{self.name} (half)",
            resources=Resources(big, little),
        )

    def with_resources(self, big: int, little: int) -> "Platform":
        """A copy of this platform with a different core budget."""
        return replace(self, resources=Resources(big, little))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name} R=({self.big}B, {self.little}L)"
