"""FERTAC — First Efficient Resources for TAsk Chains (Algo. 4).

FERTAC builds stages greedily from the head of the chain, always trying
little (efficient) cores first and falling back to big cores only when the
little-core stage cannot respect the target period with the cores that
remain.  Wrapped in the binary-search ``Schedule`` driver, it runs in
``O(n log(w_max (b + l)) + n^2)`` — in this implementation the replicability
table is an O(n) index array, so the ``n^2`` term disappears.

On a ``k``-type platform the greedy generalizes to an *efficiency-ordered*
type list: types are tried from the most efficient (highest type index, see
the convention in :mod:`repro.core.types`) to the most performant.  For
``k = 2`` that order is exactly (little, big), so the paper's algorithm is
the two-type special case.

The paper presents ``ComputeSolution`` recursively; the recursion is a tail
call, implemented here as a loop.
"""

from __future__ import annotations

from .binary_search import ScheduleOutcome, schedule_by_binary_search
from .chain_stats import ChainProfile
from .packing import StagePlan, compute_stage, stage_fits
from .solution import Solution
from .stage import Stage
from .task import TaskChain
from .types import CoreIndex, Resources

__all__ = ["fertac_compute_solution", "fertac", "efficiency_order"]


def efficiency_order(resources: Resources) -> tuple[CoreIndex, ...]:
    """FERTAC's type preference: most efficient type first.

    Type indices are ordered performant-to-efficient, so the greedy simply
    walks them in reverse; at ``k = 2`` this is ``(little, big)`` — the
    paper's Algo. 4 lines 1 and 3.
    """
    return tuple(reversed(resources.types()))


def fertac_compute_solution(
    profile: ChainProfile, resources: Resources, period: float
) -> Solution:
    """FERTAC's ``ComputeSolution`` (Algo. 4) for one target period.

    Builds stages left to right; each stage tries core types in efficiency
    order (little first, line 1; big as the fallback, line 3).  Returns the
    empty solution when no core type can host some stage within the
    remaining budget.
    """
    last = profile.n - 1
    remaining = list(resources.counts)
    order = efficiency_order(resources)
    stages: list[Stage] = []

    start = 0
    while True:
        chosen: "tuple[CoreIndex, StagePlan] | None" = None
        for core_type in order:
            available = remaining[int(core_type)]
            plan = compute_stage(profile, start, available, core_type, period)
            if stage_fits(profile, start, plan, available, core_type, period):
                chosen = (core_type, plan)
                break
        if chosen is None:
            return Solution.empty()

        core_type, plan = chosen
        stages.append(Stage(start, plan.end, plan.cores, core_type))
        if plan.end == last:
            return Solution(stages)

        remaining[int(core_type)] -= plan.cores
        start = plan.end + 1


def fertac(
    chain: "TaskChain | ChainProfile",
    resources: Resources,
    *,
    epsilon: float | None = None,
) -> ScheduleOutcome:
    """Schedule a chain with FERTAC (binary search + Algo. 4).

    Args:
        chain: the task chain (or a precomputed profile).
        resources: the platform budget ``R = (b, l)`` (or a ``k``-type one).
        epsilon: binary-search tolerance, defaulting to ``1 / (b + l)``.

    Returns:
        The :class:`~repro.core.binary_search.ScheduleOutcome` holding the
        best schedule found and search diagnostics.
    """
    return schedule_by_binary_search(
        chain, resources, fertac_compute_solution, epsilon=epsilon
    )
