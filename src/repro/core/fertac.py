"""FERTAC — First Efficient Resources for TAsk Chains (Algo. 4).

FERTAC builds stages greedily from the head of the chain, always trying
little (efficient) cores first and falling back to big cores only when the
little-core stage cannot respect the target period with the cores that
remain.  Wrapped in the binary-search ``Schedule`` driver, it runs in
``O(n log(w_max (b + l)) + n^2)`` — in this implementation the replicability
table is an O(n) index array, so the ``n^2`` term disappears.

The paper presents ``ComputeSolution`` recursively; the recursion is a tail
call, implemented here as a loop.
"""

from __future__ import annotations

from .binary_search import ScheduleOutcome, schedule_by_binary_search
from .chain_stats import ChainProfile
from .packing import compute_stage, stage_fits
from .solution import Solution
from .stage import Stage
from .task import TaskChain
from .types import CoreType, Resources

__all__ = ["fertac_compute_solution", "fertac"]


def fertac_compute_solution(
    profile: ChainProfile, resources: Resources, period: float
) -> Solution:
    """FERTAC's ``ComputeSolution`` (Algo. 4) for one target period.

    Builds stages left to right; each stage tries little cores first (line 1)
    and falls back to big cores (line 3).  Returns the empty solution when
    neither core type can host some stage within the remaining budget.
    """
    last = profile.n - 1
    big, little = resources.big, resources.little
    stages: list[Stage] = []

    start = 0
    while True:
        plan = compute_stage(profile, start, little, CoreType.LITTLE, period)
        core_type = CoreType.LITTLE
        if not stage_fits(profile, start, plan, little, core_type, period):
            plan = compute_stage(profile, start, big, CoreType.BIG, period)
            core_type = CoreType.BIG
            if not stage_fits(profile, start, plan, big, core_type, period):
                return Solution.empty()

        stages.append(Stage(start, plan.end, plan.cores, core_type))
        if plan.end == last:
            return Solution(stages)

        if core_type is CoreType.BIG:
            big -= plan.cores
        else:
            little -= plan.cores
        start = plan.end + 1


def fertac(
    chain: "TaskChain | ChainProfile",
    resources: Resources,
    *,
    epsilon: float | None = None,
) -> ScheduleOutcome:
    """Schedule a chain with FERTAC (binary search + Algo. 4).

    Args:
        chain: the task chain (or a precomputed profile).
        resources: the platform budget ``R = (b, l)``.
        epsilon: binary-search tolerance, defaulting to ``1 / (b + l)``.

    Returns:
        The :class:`~repro.core.binary_search.ScheduleOutcome` holding the
        best schedule found and search diagnostics.
    """
    return schedule_by_binary_search(
        chain, resources, fertac_compute_solution, epsilon=epsilon
    )
