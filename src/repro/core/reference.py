"""Exhaustive k-type reference solver (library extension).

The paper's optimal DP (HeRAD) is specialized to two core types.  For the
``k``-type generalization of the platform model this module provides a
*reference* solver: an exhaustive per-stage type assignment wrapped in the
existing binary-search ``Schedule`` driver (Algo. 1).

At a fixed target period ``P``, :func:`reference_compute_solution` decides
feasibility *exactly*: it explores, for every stage start, every end index
and every core type, taking the minimal core count that meets ``P``
(``ceil(w / P)`` for replicable stages — more replicas never help
feasibility once the weight fits — and exactly one core for sequential
stages).  Subproblems are memoized on ``(start, remaining budget)``, so a
probe costs ``O(n^2 * k * prod(counts + 1))`` in the worst case — a
reference, not a production path.  Because each probe is exact, the binary
search converges to within ``search_epsilon(resources)`` of the true
optimal period on *any* ``k``-type budget; at ``k = 2`` this cross-checks
HeRAD, and at ``k = 3`` the generalized brute force cross-checks it.

Among feasible schedules at the final period the solver returns the one
minimizing total core usage, ties broken by the per-type usage vector read
from the performant side — deterministic, so memoization and journaling
stay bitwise stable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .binary_search import ScheduleOutcome, schedule_by_binary_search
from .chain_stats import ChainProfile
from .solution import Solution
from .stage import Stage
from .task import TaskChain
from .types import Resources

__all__ = ["reference_compute_solution", "ktype_reference"]


@dataclass(frozen=True, slots=True)
class _Best:
    """A feasible tail schedule and its per-type usage."""

    stages: tuple[Stage, ...]
    used: tuple[int, ...]

    @property
    def key(self) -> tuple[int, ...]:
        return (sum(self.used), *self.used)


def reference_compute_solution(
    profile: ChainProfile, resources: Resources, period: float
) -> Solution:
    """Exact ``ComputeSolution`` for one target period on a k-type budget.

    Returns the empty solution if and only if no interval mapping meets the
    target period within the budget.
    """
    n = profile.n
    types = resources.types()
    cache: "dict[tuple[int, tuple[int, ...]], _Best | None]" = {}

    def solve(start: int, remaining: tuple[int, ...]) -> "_Best | None":
        key = (start, remaining)
        if key in cache:
            return cache[key]
        best: "_Best | None" = None
        for core_type in types:
            index = int(core_type)
            available = remaining[index]
            if available < 1:
                continue
            for end in range(start, n):
                w = profile.interval_weight(start, end, core_type)
                if profile.is_replicable(start, end):
                    need = max(1, math.ceil(w / period))
                else:
                    need = 1
                    if w > period:
                        break  # heavier sequential intervals only
                if need > available:
                    # ceil(w / P) > available implies w > P for every longer
                    # interval too: no end past this one can fit either.
                    break
                stage = Stage(start, end, need, core_type)
                if end == n - 1:
                    candidate: "_Best | None" = _Best(
                        (stage,),
                        tuple(
                            need if v == index else 0
                            for v in range(len(remaining))
                        ),
                    )
                else:
                    rest = solve(
                        end + 1,
                        tuple(
                            c - need if v == index else c
                            for v, c in enumerate(remaining)
                        ),
                    )
                    candidate = (
                        None
                        if rest is None
                        else _Best(
                            (stage, *rest.stages),
                            tuple(
                                u + (need if v == index else 0)
                                for v, u in enumerate(rest.used)
                            ),
                        )
                    )
                if candidate is not None and (
                    best is None or candidate.key < best.key
                ):
                    best = candidate
        cache[key] = best
        return best

    result = solve(0, resources.counts)
    if result is None:
        return Solution.empty()
    return Solution(result.stages)


def ktype_reference(
    chain: "TaskChain | ChainProfile",
    resources: Resources,
    *,
    epsilon: float | None = None,
) -> ScheduleOutcome:
    """Schedule a chain with the exhaustive k-type reference solver.

    Args:
        chain: the task chain (or a precomputed profile).
        resources: any ``k``-type budget.
        epsilon: binary-search tolerance, defaulting to
            ``1 / sum(counts)``.

    Returns:
        The :class:`~repro.core.binary_search.ScheduleOutcome`; its period
        is within ``epsilon`` of the true optimum because every probe is an
        exact feasibility decision.
    """
    return schedule_by_binary_search(
        chain, resources, reference_compute_solution, epsilon=epsilon
    )
