"""Solution model: a pipelined-and-replicated schedule ``S = (s, r, v)``.

A :class:`Solution` is an ordered list of :class:`~repro.core.stage.Stage`
objects covering the chain contiguously.  It provides the paper's evaluation
primitives: the period ``P(S)`` (Eq. (2)), resource-constraint validation
(Eq. (3)), and the core-usage accounting used by the secondary objective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from .chain_stats import ChainProfile, profile_of
from .errors import InvalidChainError
from .stage import Stage
from .task import TaskChain
from .types import CoreIndex, CoreType, Resources, format_usage, type_name, type_symbol

__all__ = ["Solution", "CoreUsage"]


@dataclass(frozen=True, init=False)
class CoreUsage:
    """Aggregate number of cores used per type by a solution.

    The two-argument constructor ``CoreUsage(big, little)`` is the canonical
    two-type form; ``k``-type usages are built with :meth:`from_counts`.
    """

    counts: tuple[int, ...]

    def __init__(self, big: int, little: int) -> None:
        object.__setattr__(self, "counts", (int(big), int(little)))

    @classmethod
    def from_counts(cls, counts: Iterable[int]) -> "CoreUsage":
        """Build a per-type usage from one count per type index."""
        self = object.__new__(cls)
        object.__setattr__(self, "counts", tuple(int(c) for c in counts))
        return self

    @property
    def big(self) -> int:
        """Cores of type 0 (big) used."""
        return self.counts[0]

    @property
    def little(self) -> int:
        """Cores of type 1 (little) used (0 when the usage has one type)."""
        return self.counts[1] if len(self.counts) > 1 else 0

    @property
    def ktype(self) -> int:
        """Number of core types this usage accounts for."""
        return len(self.counts)

    def count(self, core_type: CoreIndex) -> int:
        """Cores of the given type used (0 beyond the accounted types)."""
        index = int(core_type)
        return self.counts[index] if index < len(self.counts) else 0

    @property
    def total(self) -> int:
        """Total cores used."""
        return sum(self.counts)

    def __iter__(self) -> Iterator[int]:
        return iter(self.counts)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return format_usage(self.counts)


@dataclass(frozen=True)
class Solution:
    """An interval-mapped schedule of a task chain.

    Attributes:
        stages: the pipeline stages in chain order.

    Stages must be contiguous (each stage starts right after the previous one
    ends); whether they cover a *whole* chain is checked against a chain via
    :meth:`covers`.
    """

    stages: tuple[Stage, ...]

    def __init__(self, stages: Iterable[Stage]) -> None:
        stages = tuple(stages)
        for prev, cur in zip(stages, stages[1:]):
            if cur.start != prev.end + 1:
                raise InvalidChainError(
                    f"stages are not contiguous: {prev} then {cur}"
                )
        object.__setattr__(self, "stages", stages)

    # -- basic structure ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.stages)

    def __iter__(self) -> Iterator[Stage]:
        return iter(self.stages)

    def __getitem__(self, index: int) -> Stage:
        return self.stages[index]

    @property
    def is_empty(self) -> bool:
        """True for the empty (invalid) solution."""
        return not self.stages

    @property
    def num_stages(self) -> int:
        """Number of pipeline stages ``k``."""
        return len(self.stages)

    def covers(self, chain: "TaskChain | ChainProfile") -> bool:
        """True when the stages exactly cover the whole chain."""
        profile = profile_of(chain)
        return (
            bool(self.stages)
            and self.stages[0].start == 0
            and self.stages[-1].end == profile.n - 1
        )

    # -- paper metrics ---------------------------------------------------------

    def period(self, chain: "TaskChain | ChainProfile") -> float:
        """Period ``P(S)``: the maximum stage weight (Eq. (2)).

        Returns ``inf`` for the empty solution.
        """
        profile = profile_of(chain)
        if not self.stages:
            return float("inf")
        return max(stage.weight(profile) for stage in self.stages)

    def throughput(self, chain: "TaskChain | ChainProfile") -> float:
        """Steady-state throughput: ``1 / P(S)`` (frames per weight unit)."""
        p = self.period(chain)
        return 0.0 if p == float("inf") else 1.0 / p

    def latency(self, chain: "TaskChain | ChainProfile") -> float:
        """End-to-end pipeline latency of one frame: the sum of stage
        latencies (each replica processes a whole frame, so replication
        shortens the period but not the per-frame latency).

        The paper's future work highlights shorter pipelines (fewer stages,
        e.g. after the replicable-merge step) as practically faster; this
        metric quantifies the latency side of that trade.
        """
        profile = profile_of(chain)
        if not self.stages:
            return float("inf")
        return sum(stage.latency(profile) for stage in self.stages)

    def bottleneck(self, chain: "TaskChain | ChainProfile") -> Stage:
        """The stage attaining the period (first one in chain order)."""
        profile = profile_of(chain)
        if not self.stages:
            raise InvalidChainError("the empty solution has no bottleneck")
        return max(self.stages, key=lambda s: s.weight(profile))

    def core_usage(self, ktype: int | None = None) -> CoreUsage:
        """Cores used per type (Eq. (3) left-hand sides).

        Args:
            ktype: number of core types to account for; defaults to the
                smallest ``k >= 2`` covering every stage's type, so two-type
                solutions keep their historical ``(big, little)`` shape.
        """
        if ktype is None:
            ktype = max(2, *(int(s.core_type) + 1 for s in self.stages), 2) \
                if self.stages else 2
        counts = [0] * ktype
        for s in self.stages:
            counts[int(s.core_type)] += s.cores
        return CoreUsage.from_counts(counts)

    def is_valid(
        self,
        chain: "TaskChain | ChainProfile",
        resources: Resources,
        period: float | None = None,
    ) -> bool:
        """Paper's ``IsValid``: non-empty, within budget, and (optionally)
        within the target period.

        Args:
            chain: the scheduled chain (or its profile).
            resources: the platform budget ``R = (b, l)``.
            period: optional target period ``P``; when given the solution
                must satisfy ``P(S) <= P``.
        """
        if not self.stages:
            return False
        usage = self.core_usage()
        if not resources.fits(*usage.counts):
            return False
        if not self.covers(chain):
            return False
        if period is not None and self.period(chain) > period:
            return False
        return True

    # -- rendering --------------------------------------------------------------

    def render(self) -> str:
        """Paper-style decomposition, e.g. ``(5,1B),(1,1B),(9,1B)``."""
        return ",".join(stage.render() for stage in self.stages)

    def describe(self, chain: "TaskChain | ChainProfile") -> str:
        """Multi-line report with per-stage weights and the period."""
        profile = profile_of(chain)
        lines = [f"Solution with {self.num_stages} stage(s):"]
        for i, s in enumerate(self.stages):
            rep = "rep" if s.is_replicable(profile) else "seq"
            lines.append(
                f"  stage {i + 1}: tasks [{s.start:>3}..{s.end:>3}] "
                f"({rep}) on {s.cores} {type_name(s.core_type):<6} "
                f"weight={s.weight(profile):.6g} "
                f"latency={s.latency(profile):.6g}"
            )
        lines.append(f"  period P(S) = {self.period(profile):.6g}")
        usage = self.core_usage()
        lines.append(
            "  cores used  = "
            + " + ".join(
                f"{c}{type_symbol(v)}" for v, c in enumerate(usage.counts)
            )
        )
        return "\n".join(lines)

    # -- constructors --------------------------------------------------------------

    @classmethod
    def empty(cls) -> "Solution":
        """The empty (invalid) solution, the paper's ``(∅, ∅, ∅)``."""
        return cls(())

    @classmethod
    def single_stage(
        cls,
        chain: "TaskChain | ChainProfile",
        cores: int,
        core_type: CoreIndex,
    ) -> "Solution":
        """A whole-chain single-stage solution (always structurally valid)."""
        profile = profile_of(chain)
        return cls((Stage(0, profile.n - 1, cores, core_type),))

    @classmethod
    def from_triplets(
        cls, triplets: Sequence[tuple[int, int, int, "CoreType | str | int"]]
    ) -> "Solution":
        """Build from ``(start, end, cores, core_type)`` tuples.

        Core types beyond the two canonical ones are given as plain type
        indices (``2``, ``3``, ...); ``0``/``1`` and the usual string forms
        parse to :class:`CoreType` members.
        """
        def _parse(v: "CoreType | str | int") -> CoreIndex:
            if isinstance(v, int) and not isinstance(v, (bool, CoreType)) and v >= 2:
                return v
            return CoreType.parse(v)

        return cls(Stage(s, e, r, _parse(v)) for (s, e, r, v) in triplets)
