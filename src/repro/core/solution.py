"""Solution model: a pipelined-and-replicated schedule ``S = (s, r, v)``.

A :class:`Solution` is an ordered list of :class:`~repro.core.stage.Stage`
objects covering the chain contiguously.  It provides the paper's evaluation
primitives: the period ``P(S)`` (Eq. (2)), resource-constraint validation
(Eq. (3)), and the core-usage accounting used by the secondary objective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from .chain_stats import ChainProfile, profile_of
from .errors import InvalidChainError
from .stage import Stage
from .task import TaskChain
from .types import CoreType, Resources

__all__ = ["Solution", "CoreUsage"]


@dataclass(frozen=True, slots=True)
class CoreUsage:
    """Aggregate number of cores used per type by a solution."""

    big: int
    little: int

    @property
    def total(self) -> int:
        """Total cores used."""
        return self.big + self.little

    def __iter__(self) -> Iterator[int]:
        yield self.big
        yield self.little

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.big}B, {self.little}L)"


@dataclass(frozen=True)
class Solution:
    """An interval-mapped schedule of a task chain.

    Attributes:
        stages: the pipeline stages in chain order.

    Stages must be contiguous (each stage starts right after the previous one
    ends); whether they cover a *whole* chain is checked against a chain via
    :meth:`covers`.
    """

    stages: tuple[Stage, ...]

    def __init__(self, stages: Iterable[Stage]) -> None:
        stages = tuple(stages)
        for prev, cur in zip(stages, stages[1:]):
            if cur.start != prev.end + 1:
                raise InvalidChainError(
                    f"stages are not contiguous: {prev} then {cur}"
                )
        object.__setattr__(self, "stages", stages)

    # -- basic structure ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.stages)

    def __iter__(self) -> Iterator[Stage]:
        return iter(self.stages)

    def __getitem__(self, index: int) -> Stage:
        return self.stages[index]

    @property
    def is_empty(self) -> bool:
        """True for the empty (invalid) solution."""
        return not self.stages

    @property
    def num_stages(self) -> int:
        """Number of pipeline stages ``k``."""
        return len(self.stages)

    def covers(self, chain: "TaskChain | ChainProfile") -> bool:
        """True when the stages exactly cover the whole chain."""
        profile = profile_of(chain)
        return (
            bool(self.stages)
            and self.stages[0].start == 0
            and self.stages[-1].end == profile.n - 1
        )

    # -- paper metrics ---------------------------------------------------------

    def period(self, chain: "TaskChain | ChainProfile") -> float:
        """Period ``P(S)``: the maximum stage weight (Eq. (2)).

        Returns ``inf`` for the empty solution.
        """
        profile = profile_of(chain)
        if not self.stages:
            return float("inf")
        return max(stage.weight(profile) for stage in self.stages)

    def throughput(self, chain: "TaskChain | ChainProfile") -> float:
        """Steady-state throughput: ``1 / P(S)`` (frames per weight unit)."""
        p = self.period(chain)
        return 0.0 if p == float("inf") else 1.0 / p

    def latency(self, chain: "TaskChain | ChainProfile") -> float:
        """End-to-end pipeline latency of one frame: the sum of stage
        latencies (each replica processes a whole frame, so replication
        shortens the period but not the per-frame latency).

        The paper's future work highlights shorter pipelines (fewer stages,
        e.g. after the replicable-merge step) as practically faster; this
        metric quantifies the latency side of that trade.
        """
        profile = profile_of(chain)
        if not self.stages:
            return float("inf")
        return sum(stage.latency(profile) for stage in self.stages)

    def bottleneck(self, chain: "TaskChain | ChainProfile") -> Stage:
        """The stage attaining the period (first one in chain order)."""
        profile = profile_of(chain)
        if not self.stages:
            raise InvalidChainError("the empty solution has no bottleneck")
        return max(self.stages, key=lambda s: s.weight(profile))

    def core_usage(self) -> CoreUsage:
        """Cores used per type (Eq. (3) left-hand sides)."""
        big = sum(s.cores for s in self.stages if s.core_type is CoreType.BIG)
        little = sum(
            s.cores for s in self.stages if s.core_type is CoreType.LITTLE
        )
        return CoreUsage(big, little)

    def is_valid(
        self,
        chain: "TaskChain | ChainProfile",
        resources: Resources,
        period: float | None = None,
    ) -> bool:
        """Paper's ``IsValid``: non-empty, within budget, and (optionally)
        within the target period.

        Args:
            chain: the scheduled chain (or its profile).
            resources: the platform budget ``R = (b, l)``.
            period: optional target period ``P``; when given the solution
                must satisfy ``P(S) <= P``.
        """
        if not self.stages:
            return False
        usage = self.core_usage()
        if not resources.fits(usage.big, usage.little):
            return False
        if not self.covers(chain):
            return False
        if period is not None and self.period(chain) > period:
            return False
        return True

    # -- rendering --------------------------------------------------------------

    def render(self) -> str:
        """Paper-style decomposition, e.g. ``(5,1B),(1,1B),(9,1B)``."""
        return ",".join(stage.render() for stage in self.stages)

    def describe(self, chain: "TaskChain | ChainProfile") -> str:
        """Multi-line report with per-stage weights and the period."""
        profile = profile_of(chain)
        lines = [f"Solution with {self.num_stages} stage(s):"]
        for i, s in enumerate(self.stages):
            rep = "rep" if s.is_replicable(profile) else "seq"
            lines.append(
                f"  stage {i + 1}: tasks [{s.start:>3}..{s.end:>3}] "
                f"({rep}) on {s.cores} {s.core_type.name:<6} "
                f"weight={s.weight(profile):.6g} "
                f"latency={s.latency(profile):.6g}"
            )
        lines.append(f"  period P(S) = {self.period(profile):.6g}")
        usage = self.core_usage()
        lines.append(f"  cores used  = {usage.big}B + {usage.little}L")
        return "\n".join(lines)

    # -- constructors --------------------------------------------------------------

    @classmethod
    def empty(cls) -> "Solution":
        """The empty (invalid) solution, the paper's ``(∅, ∅, ∅)``."""
        return cls(())

    @classmethod
    def single_stage(
        cls,
        chain: "TaskChain | ChainProfile",
        cores: int,
        core_type: CoreType,
    ) -> "Solution":
        """A whole-chain single-stage solution (always structurally valid)."""
        profile = profile_of(chain)
        return cls((Stage(0, profile.n - 1, cores, core_type),))

    @classmethod
    def from_triplets(
        cls, triplets: Sequence[tuple[int, int, int, "CoreType | str | int"]]
    ) -> "Solution":
        """Build from ``(start, end, cores, core_type)`` tuples."""
        return cls(
            Stage(s, e, r, CoreType.parse(v)) for (s, e, r, v) in triplets
        )
