"""Greedy stage construction: the paper's ``ComputeStage`` (Algo. 2).

``ComputeStage`` decides where a stage starting at task ``start`` should end
and how many cores (of one given type) it needs so that its weight respects a
target period ``P``.  The procedure:

1. packs as many tasks as possible on a *single* core (``MaxPacking``);
2. if the packed interval is replicable and not final, extends it to the
   last consecutive replicable task and computes the cores required;
3. if that requires more cores than available, shrinks the stage back to
   what the available cores can sustain;
4. otherwise checks whether surrendering one core (shrinking the stage so
   the leftover tasks plus the following sequential task fit on a single
   core of the next stage) is a strictly better use of resources.

The support predicates (``MaxPacking``, ``RequiredCores``, ``IsRep``,
``FinalRepTask`` — Algo. 3) live on :class:`~repro.core.chain_stats.ChainProfile`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs.context import counter_add
from .chain_stats import ChainProfile
from .types import CoreIndex

__all__ = ["StagePlan", "compute_stage", "stage_fits"]


@dataclass(frozen=True, slots=True)
class StagePlan:
    """The outcome of ``ComputeStage``: a stage end index and a core count.

    Attributes:
        end: inclusive 0-based index of the stage's last task.
        cores: number of cores ``u`` the stage uses.
    """

    end: int
    cores: int


def compute_stage(
    profile: ChainProfile,
    start: int,
    available: int,
    core_type: CoreIndex,
    period: float,
) -> StagePlan:
    """Paper's ``ComputeStage`` (Algo. 2) for a stage starting at ``start``.

    Args:
        profile: precomputed chain statistics.
        start: 0-based index of the stage's first task.
        available: cores of ``core_type`` still available (``c``).
        core_type: the core type ``v`` used for the whole stage.
        period: target period ``P``.

    Returns:
        A :class:`StagePlan`.  The plan is *not* guaranteed to be valid (the
        stage weight may exceed ``P``, or ``cores`` may exceed ``available``)
        — callers must check with :func:`stage_fits`, mirroring the paper
        where ``ComputeSolution`` validates each stage after building it.
    """
    # Observability hook (no-op without an ambient obs context): stage
    # construction count is the greedy strategies' work metric.
    counter_add("packing.compute_stage_calls")
    last = profile.n - 1

    # Line 1-2: pack with one core, then count the cores this interval needs
    # (more than one only when the packing was forced past the period by a
    # single heavy replicable task).
    end = profile.max_packing(start, 1, core_type, period)
    cores = profile.required_cores(start, end, core_type, period)

    # Lines 3-14: replicable, non-final stages may extend across the whole
    # run of consecutive replicable tasks and absorb more cores.
    if end != last and profile.is_replicable(start, end):
        end = profile.final_replicable_task(start, end)
        cores = profile.required_cores(start, end, core_type, period)
        if cores > available:
            # Lines 5-7: not enough cores for the full replicable run.
            end = profile.max_packing(start, available, core_type, period)
            cores = available
        elif end != last and cores >= 2:
            # Lines 8-12: the next task is sequential.  Check whether giving
            # up one core here lets the leftover tasks ride along with that
            # sequential task on a single core of the next stage.  MaxPacking
            # may return a *forced* single-task interval that violates the
            # period (e.g. one heavy replicable task needing >= 2 cores);
            # the shrink is only taken when the shorter stage actually fits.
            shorter = profile.max_packing(start, cores - 1, core_type, period)
            if (
                profile.stage_weight(start, shorter, cores - 1, core_type)
                <= period
                and profile.required_cores(
                    shorter + 1, end + 1, core_type, period
                )
                == 1
            ):
                end = shorter
                cores = cores - 1

    return StagePlan(end=end, cores=cores)


def stage_fits(
    profile: ChainProfile,
    start: int,
    plan: StagePlan,
    available: int,
    core_type: CoreIndex,
    period: float,
) -> bool:
    """Single-stage validity check used after :func:`compute_stage`.

    A stage is acceptable when it uses at least one and at most ``available``
    cores and its weight (Eq. (1)) does not exceed the target period.
    """
    if plan.cores < 1 or plan.cores > available:
        return False
    return (
        profile.stage_weight(start, plan.end, plan.cores, core_type) <= period
    )
