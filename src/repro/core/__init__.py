"""Scheduling core: the paper's primary contribution.

This package implements scheduling of partially-replicable task chains on
two types of resources (big/little cores):

* problem model — :class:`Task`, :class:`TaskChain`, :class:`Stage`,
  :class:`Solution`, :class:`Resources`, :class:`CoreType`;
* greedy heuristics — :func:`fertac` (Algo. 4) and :func:`twocatac`
  (Algos. 5-6), both wrapped in the binary-search ``Schedule`` driver
  (Algo. 1);
* the optimal dynamic program — :func:`herad` (Algos. 7-11 / Eq. (4));
* the homogeneous baseline — :func:`otac`, :func:`otac_big`,
  :func:`otac_little`;
* verification oracles — :func:`herad_reference` (literal pseudocode) and
  :func:`brute_force_optimal` (exhaustive enumeration).
"""

from .binary_search import (
    ComputeSolutionFn,
    ScheduleOutcome,
    schedule_by_binary_search,
)
from .bounds import PeriodBounds, period_bounds, search_epsilon
from .bruteforce import brute_force_optimal, brute_force_period
from .certify import (
    CertificateReport,
    CertificateViolation,
    audit_solution,
    certify_outcome,
    certify_solution,
    optimality_bracket,
)
from .chain_stats import ChainProfile, profile_of
from .errors import (
    CertificationError,
    InfeasibleScheduleError,
    InvalidChainError,
    InvalidParameterError,
    InvalidPlatformError,
    SchedulingError,
    UnknownStrategyError,
)
from .fertac import fertac, fertac_compute_solution
from .herad import herad, herad_solution
from .herad_reference import herad_reference
from .merge import merge_replicable_stages
from .norep import norep_optimal, norep_period
from .otac import otac, otac_big, otac_little
from .packing import StagePlan, compute_stage, stage_fits
from .reference import ktype_reference, reference_compute_solution
from .power import PowerModel, PowerReport, pareto_front, solution_power
from .registry import (
    PAPER_ORDER,
    STRATEGIES,
    StrategyInfo,
    get_info,
    get_strategy,
    run_strategies,
    strategy_names,
)
from .solution import CoreUsage, Solution
from .stage import Stage
from .task import Task, TaskChain
from .twocatac import twocatac, twocatac_compute_solution
from .warmstart import warm_start
from .types import (
    INFINITY,
    CoreIndex,
    CoreType,
    Resources,
    core_types,
    format_usage,
    type_name,
    type_symbol,
)

__all__ = [
    "warm_start",
    # model
    "Task",
    "TaskChain",
    "ChainProfile",
    "profile_of",
    "Stage",
    "Solution",
    "CoreUsage",
    "CoreType",
    "CoreIndex",
    "Resources",
    "INFINITY",
    "core_types",
    "type_symbol",
    "type_name",
    "format_usage",
    # machinery
    "ComputeSolutionFn",
    "ScheduleOutcome",
    "schedule_by_binary_search",
    "PeriodBounds",
    "period_bounds",
    "search_epsilon",
    "StagePlan",
    "compute_stage",
    "stage_fits",
    "merge_replicable_stages",
    "PowerModel",
    "PowerReport",
    "solution_power",
    "pareto_front",
    # strategies
    "fertac",
    "fertac_compute_solution",
    "twocatac",
    "twocatac_compute_solution",
    "herad",
    "herad_solution",
    "herad_reference",
    "otac",
    "otac_big",
    "otac_little",
    "norep_optimal",
    "norep_period",
    "brute_force_optimal",
    "brute_force_period",
    "ktype_reference",
    "reference_compute_solution",
    # registry
    "STRATEGIES",
    "PAPER_ORDER",
    "StrategyInfo",
    "get_strategy",
    "get_info",
    "run_strategies",
    "strategy_names",
    # certificates
    "CertificateReport",
    "CertificateViolation",
    "audit_solution",
    "certify_solution",
    "certify_outcome",
    "optimality_bracket",
    # errors
    "SchedulingError",
    "InvalidChainError",
    "InvalidPlatformError",
    "InvalidParameterError",
    "InfeasibleScheduleError",
    "UnknownStrategyError",
    "CertificationError",
]
