"""Period bounds and binary-search tolerance (Algo. 1, lines 1-3).

``Schedule`` brackets the optimal period between:

* a lower bound ``P_min`` — the best conceivable period: either every task
  replicated over all cores at its fastest usable speed (perfect load
  balance), or the heaviest sequential task at its fastest usable speed
  (replication cannot help it);
* an upper bound ``P_max`` — a period at which a schedule provably exists:
  for each usable core type ``v`` with ``c_v`` cores, a greedy single-type
  packing achieves at most ``total^v / c_v + w_max^v`` (the classic
  chains-on-chains argument), so the minimum over usable types is feasible.

The paper states the bounds under the assumption that tasks run fastest on
big cores (footnote 1): ``P_min = max(sum w^B / (b+l), max seq w^B)`` and
``P_max = P_min + max w^L``.  The formulas here reduce to the same bracket in
that regime (up to a feasible, slightly looser upper bound) while remaining
*correct* for arbitrary weight tables and for single-type budgets — e.g. the
OTAC(L) baseline, where using big-core weights in the bounds would either
under- or over-shoot.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .chain_stats import ChainProfile
from .errors import InvalidParameterError, InvalidPlatformError
from .types import CoreIndex, Resources

__all__ = ["PeriodBounds", "period_bounds", "search_epsilon"]


@dataclass(frozen=True, slots=True)
class PeriodBounds:
    """The ``[P_min, P_max]`` bracket for the binary search."""

    lower: float
    upper: float

    def __post_init__(self) -> None:
        if not (0 <= self.lower <= self.upper):
            raise InvalidParameterError(f"invalid period bounds: {self}")

    @property
    def width(self) -> float:
        """Bracket width ``P_max - P_min``."""
        return self.upper - self.lower

    def midpoint(self) -> float:
        """The binary-search probe ``P_mid`` (Algo. 1, line 6)."""
        return (self.upper + self.lower) / 2.0


def _usable_types(resources: Resources) -> "list[CoreIndex]":
    return resources.usable_types()


def period_bounds(profile: ChainProfile, resources: Resources) -> PeriodBounds:
    """Compute a correct ``[P_min, P_max]`` bracket for the optimal period.

    Args:
        profile: precomputed chain statistics.
        resources: the platform budget; must contain at least one core.

    Returns:
        Bounds such that ``lower <= P* <= upper`` where ``P*`` is the optimal
        period, and such that the paper's greedy builders find *some* valid
        schedule at ``upper``.

    Raises:
        InvalidPlatformError: when the budget is empty.
    """
    if resources.ktype > profile.ktype:
        raise InvalidPlatformError(
            f"budget has {resources.ktype} core types but the chain only "
            f"carries weights for {profile.ktype}"
        )
    usable = _usable_types(resources)
    if not usable:
        raise InvalidPlatformError("cannot bound the period without cores")

    weight_rows = [profile.weights(v) for v in usable]
    # Fastest usable speed per task: a task can never run faster than this.
    per_task_min = np.minimum.reduce(weight_rows)

    # (I) replicate everything over all cores at the fastest usable speed.
    balance = float(per_task_min.sum()) / resources.total
    # (II) the heaviest sequential task runs somewhere, unreplicated.
    seq_mask = ~profile.replicable_mask
    heaviest_seq = float(per_task_min[seq_mask].max()) if seq_mask.any() else 0.0
    lower = max(balance, heaviest_seq)

    # Feasible upper bound: best single-type greedy packing guarantee.
    upper = min(
        profile.total_weight(v) / resources.count(v) + profile.max_weight(v)
        for v in usable
    )
    upper = max(upper, lower)
    return PeriodBounds(lower, upper)


def search_epsilon(resources: Resources) -> float:
    """Binary-search stopping tolerance (Algo. 1, line 3).

    ``epsilon = 1 / (b + l)`` accounts for the fractional nature of periods
    of replicated stages: with integer task weights, achievable periods are
    rationals ``W / r`` with ``r <= b + l``.
    """
    if resources.total <= 0:
        raise InvalidPlatformError("cannot derive a tolerance without cores")
    return 1.0 / resources.total
