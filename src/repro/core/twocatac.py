"""2CATAC — Two-Choice Allocation for TAsk Chains (Algos. 5-6).

Where FERTAC commits to little cores as early as possible, 2CATAC builds the
current stage with *both* core types and recursively explores both branches,
finally keeping the better alternative with ``ChooseBestSolution`` (Algo. 6):

* if only one branch is valid, keep it;
* if both are valid (they meet the target period by construction, so periods
  need no comparison), prefer the one that better exchanges big cores for
  little ones, and otherwise the one using fewer cores in total.

On a ``k``-type platform the two choices become ``k`` choices per stage, and
``ChooseBestSolution`` compares usages by *efficiency mass* (cores weighted
by their type index) against *performance mass* (cores weighted by the
reversed index): a candidate wins outright when it uses strictly more
efficient and strictly less performant capacity.  At ``k = 2`` the masses
are exactly the little- and big-core counts, so the pairwise rule — and the
left fold applying it across the per-type branches in type order, later
branch winning ties — reproduces Algo. 6 decision for decision.

The exploration is exponential in the number of stages (worst case ``O(k^n)``
per probe when each stage holds one task).  A memoized variant — an extension
over the paper, returning identical solutions because a subproblem is fully
determined by ``(start, remaining budget)`` at fixed target period — is
available through ``memoize=True`` and ablated in the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from .binary_search import ScheduleOutcome, schedule_by_binary_search
from .chain_stats import ChainProfile
from .packing import compute_stage, stage_fits
from .solution import Solution
from .stage import Stage
from .task import TaskChain
from .types import Resources

__all__ = ["twocatac_compute_solution", "twocatac", "choose_best"]


@dataclass(frozen=True, slots=True)
class _Partial:
    """A partial solution: stages from some start to the end of the chain,
    with accumulated per-type core usage (the paper amortizes the usage sums
    the same way, Algo. 5 line 13)."""

    stages: tuple[Stage, ...]
    used: tuple[int, ...]

    @property
    def used_big(self) -> int:
        """Cores of type 0 (big) used."""
        return self.used[0]

    @property
    def used_little(self) -> int:
        """Cores of type 1 (little) used."""
        return self.used[1] if len(self.used) > 1 else 0


def _masses(used: tuple[int, ...]) -> tuple[int, int]:
    """``(performance mass, efficiency mass)`` of a usage vector.

    Performance mass weights cores by reversed type index, efficiency mass
    by the type index itself; at ``k = 2`` they are exactly
    ``(big_used, little_used)`` (the k=2 shortcut also keeps this off the
    two-type hot path's profile).
    """
    if len(used) == 2:
        return used[0], used[1]
    k = len(used)
    performance = efficiency = 0
    for v, c in enumerate(used):
        efficiency += c * v
        performance += c * (k - 1 - v)
    return performance, efficiency


def choose_best(
    big_branch: "_Partial | None", little_branch: "_Partial | None"
) -> "_Partial | None":
    """Paper's ``ChooseBestSolution`` (Algo. 6) on two candidate branches.

    Both candidates, when present, already respect the target period and the
    core budget; the comparison is purely about the secondary objective.
    The first argument is the more-performant-type branch (``S_B`` at
    ``k = 2``); ties go to the second (``S_L``), as in the paper.
    """
    if big_branch is None:
        return little_branch
    if little_branch is None:
        return big_branch

    bb, bl = _masses(big_branch.used)
    lb, ll = _masses(little_branch.used)
    if bl > ll and bb < lb:
        return big_branch  # S_B makes better usage of little cores
    if bl < ll and bb > lb:
        return little_branch  # S_L makes better usage of little cores
    if bb + bl < lb + ll:
        return big_branch  # S_B uses fewer cores
    return little_branch  # S_L uses fewer cores (or tie)


def twocatac_compute_solution(
    profile: ChainProfile,
    resources: Resources,
    period: float,
    *,
    memoize: bool = False,
) -> Solution:
    """2CATAC's ``ComputeSolution`` (Algo. 5) for one target period.

    Args:
        profile: precomputed chain statistics.
        resources: the platform budget.
        period: target period ``P``.
        memoize: cache subproblems on ``(start, remaining budget)``.  This is
            an extension over the paper: it bounds the exploration by
            ``n * prod(counts)`` states while returning the same solutions,
            since a subproblem's outcome depends only on those values.
    """
    last = profile.n - 1
    types = resources.types()
    cache: "dict[tuple[int, tuple[int, ...]], _Partial | None] | None" = (
        {} if memoize else None
    )

    def solve(start: int, remaining: tuple[int, ...]) -> "_Partial | None":
        key = (start, remaining)
        if cache is not None and key in cache:
            return cache[key]

        best: "_Partial | None" = None
        for core_type in types:
            index = int(core_type)
            available = remaining[index]
            plan = compute_stage(profile, start, available, core_type, period)
            candidate: "_Partial | None"
            if not stage_fits(
                profile, start, plan, available, core_type, period
            ):
                candidate = None
            else:
                stage = Stage(start, plan.end, plan.cores, core_type)
                if plan.end == last:
                    usage = [0] * len(remaining)
                    usage[index] = plan.cores
                    candidate = _Partial((stage,), tuple(usage))
                else:
                    left = list(remaining)
                    left[index] -= plan.cores
                    rest = solve(plan.end + 1, tuple(left))
                    if rest is None:
                        candidate = None
                    else:
                        usage = list(rest.used)
                        usage[index] += plan.cores
                        candidate = _Partial(
                            (stage, *rest.stages), tuple(usage)
                        )
            # Left fold in type order, later branch winning ties: at k = 2
            # this is exactly choose_best(branches[BIG], branches[LITTLE]).
            best = candidate if best is None else choose_best(best, candidate)

        if cache is not None:
            cache[key] = best
        return best

    result = solve(0, resources.counts)
    if result is None:
        return Solution.empty()
    return Solution(result.stages)


def twocatac(
    chain: "TaskChain | ChainProfile",
    resources: Resources,
    *,
    epsilon: float | None = None,
    memoize: bool = False,
) -> ScheduleOutcome:
    """Schedule a chain with 2CATAC (binary search + Algos. 5-6).

    Args:
        chain: the task chain (or a precomputed profile).
        resources: the platform budget ``R = (b, l)`` (or a ``k``-type one).
        epsilon: binary-search tolerance, defaulting to ``1 / (b + l)``.
        memoize: enable the subproblem cache (see
            :func:`twocatac_compute_solution`).

    Returns:
        The :class:`~repro.core.binary_search.ScheduleOutcome`.
    """

    def builder(
        profile: ChainProfile, res: Resources, period: float
    ) -> Solution:
        return twocatac_compute_solution(profile, res, period, memoize=memoize)

    return schedule_by_binary_search(chain, resources, builder, epsilon=epsilon)
