"""2CATAC — Two-Choice Allocation for TAsk Chains (Algos. 5-6).

Where FERTAC commits to little cores as early as possible, 2CATAC builds the
current stage with *both* core types and recursively explores both branches,
finally keeping the better alternative with ``ChooseBestSolution`` (Algo. 6):

* if only one branch is valid, keep it;
* if both are valid (they meet the target period by construction, so periods
  need no comparison), prefer the one that better exchanges big cores for
  little ones, and otherwise the one using fewer cores in total.

The exploration is exponential in the number of stages (worst case ``O(2^n)``
per probe when each stage holds one task).  A memoized variant — an extension
over the paper, returning identical solutions because a subproblem is fully
determined by ``(start, big, little)`` at fixed target period — is available
through ``memoize=True`` and ablated in the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from .binary_search import ScheduleOutcome, schedule_by_binary_search
from .chain_stats import ChainProfile
from .packing import compute_stage, stage_fits
from .solution import Solution
from .stage import Stage
from .task import TaskChain
from .types import CoreType, Resources

__all__ = ["twocatac_compute_solution", "twocatac", "choose_best"]


@dataclass(frozen=True, slots=True)
class _Partial:
    """A partial solution: stages from some start to the end of the chain,
    with accumulated core usage (the paper amortizes the usage sums the same
    way, Algo. 5 line 13)."""

    stages: tuple[Stage, ...]
    used_big: int
    used_little: int


def choose_best(
    big_branch: "_Partial | None", little_branch: "_Partial | None"
) -> "_Partial | None":
    """Paper's ``ChooseBestSolution`` (Algo. 6) on two candidate branches.

    Both candidates, when present, already respect the target period and the
    core budget; the comparison is purely about the secondary objective.
    """
    if big_branch is None:
        return little_branch
    if little_branch is None:
        return big_branch

    bb, bl = big_branch.used_big, big_branch.used_little
    lb, ll = little_branch.used_big, little_branch.used_little
    if bl > ll and bb < lb:
        return big_branch  # S_B makes better usage of little cores
    if bl < ll and bb > lb:
        return little_branch  # S_L makes better usage of little cores
    if bb + bl < lb + ll:
        return big_branch  # S_B uses fewer cores
    return little_branch  # S_L uses fewer cores (or tie)


def twocatac_compute_solution(
    profile: ChainProfile,
    resources: Resources,
    period: float,
    *,
    memoize: bool = False,
) -> Solution:
    """2CATAC's ``ComputeSolution`` (Algo. 5) for one target period.

    Args:
        profile: precomputed chain statistics.
        resources: the platform budget.
        period: target period ``P``.
        memoize: cache subproblems on ``(start, big, little)``.  This is an
            extension over the paper: it bounds the exploration by
            ``n * b * l`` states while returning the same solutions, since a
            subproblem's outcome depends only on those three values.
    """
    last = profile.n - 1
    cache: dict[tuple[int, int, int], "_Partial | None"] | None = (
        {} if memoize else None
    )

    def solve(start: int, big: int, little: int) -> "_Partial | None":
        if cache is not None:
            key = (start, big, little)
            if key in cache:
                return cache[key]

        branches: dict[CoreType, "_Partial | None"] = {}
        for core_type in (CoreType.BIG, CoreType.LITTLE):
            available = big if core_type is CoreType.BIG else little
            plan = compute_stage(profile, start, available, core_type, period)
            if not stage_fits(
                profile, start, plan, available, core_type, period
            ):
                branches[core_type] = None
                continue
            stage = Stage(start, plan.end, plan.cores, core_type)
            used_b = plan.cores if core_type is CoreType.BIG else 0
            used_l = plan.cores if core_type is CoreType.LITTLE else 0
            if plan.end == last:
                branches[core_type] = _Partial((stage,), used_b, used_l)
                continue
            rest = solve(plan.end + 1, big - used_b, little - used_l)
            if rest is None:
                branches[core_type] = None
            else:
                branches[core_type] = _Partial(
                    (stage, *rest.stages),
                    used_b + rest.used_big,
                    used_l + rest.used_little,
                )

        best = choose_best(branches[CoreType.BIG], branches[CoreType.LITTLE])
        if cache is not None:
            cache[key] = best
        return best

    result = solve(0, resources.big, resources.little)
    if result is None:
        return Solution.empty()
    return Solution(result.stages)


def twocatac(
    chain: "TaskChain | ChainProfile",
    resources: Resources,
    *,
    epsilon: float | None = None,
    memoize: bool = False,
) -> ScheduleOutcome:
    """Schedule a chain with 2CATAC (binary search + Algos. 5-6).

    Args:
        chain: the task chain (or a precomputed profile).
        resources: the platform budget ``R = (b, l)``.
        epsilon: binary-search tolerance, defaulting to ``1 / (b + l)``.
        memoize: enable the subproblem cache (see
            :func:`twocatac_compute_solution`).

    Returns:
        The :class:`~repro.core.binary_search.ScheduleOutcome`.
    """

    def builder(
        profile: ChainProfile, res: Resources, period: float
    ) -> Solution:
        return twocatac_compute_solution(profile, res, period, memoize=memoize)

    return schedule_by_binary_search(chain, resources, builder, epsilon=epsilon)
