"""Pipeline-only baseline: optimal interval mapping *without replication*.

The related-work heuristics of Benoit & Robert map pipeline skeletons onto
heterogeneous platforms with one core per stage (no replicated parallelism).
This module provides the exact optimum of that restricted problem on two
core types, by dynamic programming over (prefix, big used, little used):

    P_norep(j, b, l) = min over stage starts i and core types v of
                       max(P_norep(i-1, b - [v=B], l - [v=L]), w([i, j], 1, v))

Comparing :func:`norep_optimal` against HeRAD isolates exactly how much of
the heterogeneous strategies' advantage comes from *replication* versus
pipelining + core-type choice — the ablation behind the paper's motivation
that stateless SDR tasks should be replicated.
"""

from __future__ import annotations

import math

import numpy as np

from .binary_search import ScheduleOutcome
from .bounds import PeriodBounds
from .chain_stats import ChainProfile, profile_of
from .errors import InvalidPlatformError
from .solution import Solution
from .stage import Stage
from .task import TaskChain
from .types import CoreType, Resources

__all__ = ["norep_optimal", "norep_period"]


def norep_optimal(
    chain: "TaskChain | ChainProfile", resources: Resources
) -> ScheduleOutcome:
    """Optimal one-core-per-stage schedule on two core types.

    Args:
        chain: the task chain (or a precomputed profile).
        resources: the platform budget; at most ``b + l`` stages are used.

    Returns:
        A :class:`~repro.core.binary_search.ScheduleOutcome` (``iterations``
        is 0; the bounds report the achieved period).

    Raises:
        InvalidPlatformError: for an empty budget.
    """
    profile = profile_of(chain)
    if resources.ktype != 2:
        raise InvalidPlatformError(
            "the NoRep DP is specialized to two core types; use the k-type "
            f"reference solver for a {resources.ktype}-type budget"
        )
    if resources.total <= 0:
        raise InvalidPlatformError("need at least one core")
    n = profile.n
    big, little = resources.big, resources.little

    # period[j, ub, ul]: best max-stage-weight covering tasks 0..j-1 using
    # exactly <= ub big and <= ul little cores (one per stage).
    period = np.full((n + 1, big + 1, little + 1), math.inf)
    period[0, :, :] = 0.0
    start = np.zeros((n + 1, big + 1, little + 1), dtype=np.int32)
    vtype = np.zeros((n + 1, big + 1, little + 1), dtype=np.int8)

    weights = {
        CoreType.BIG: profile.prefix[int(CoreType.BIG)],
        CoreType.LITTLE: profile.prefix[int(CoreType.LITTLE)],
    }

    for j in range(1, n + 1):
        for i in range(j):  # final stage covers tasks i..j-1
            for core_type in (CoreType.BIG, CoreType.LITTLE):
                p = weights[core_type]
                stage_w = float(p[j] - p[i])
                if core_type is CoreType.BIG:
                    if big == 0:
                        continue
                    pred = period[i, : big, :]
                    cand = np.maximum(pred, stage_w)
                    region = (slice(1, big + 1), slice(0, little + 1))
                else:
                    if little == 0:
                        continue
                    pred = period[i, :, : little]
                    cand = np.maximum(pred, stage_w)
                    region = (slice(0, big + 1), slice(1, little + 1))
                target = period[j][region]
                better = cand < target
                if better.any():
                    np.copyto(target, cand, where=better)
                    np.copyto(start[j][region], np.int32(i), where=better)
                    np.copyto(
                        vtype[j][region], np.int8(int(core_type)), where=better
                    )

    if not math.isfinite(period[n, big, little]):
        return ScheduleOutcome(
            solution=Solution.empty(),
            period=math.inf,
            iterations=0,
            bounds=PeriodBounds(0.0, math.inf),
        )

    # Extract: walk backwards, keeping the budget consistent with vtype.
    stages: list[Stage] = []
    j, ub, ul = n, big, little
    while j > 0:
        i = int(start[j, ub, ul])
        core_type = CoreType(int(vtype[j, ub, ul]))
        stages.append(Stage(i, j - 1, 1, core_type))
        if core_type is CoreType.BIG:
            ub -= 1
        else:
            ul -= 1
        j = i
    stages.reverse()
    solution = Solution(stages)
    achieved = solution.period(profile)
    return ScheduleOutcome(
        solution=solution,
        period=achieved,
        iterations=0,
        bounds=PeriodBounds(achieved, achieved),
    )


def norep_period(
    chain: "TaskChain | ChainProfile", resources: Resources
) -> float:
    """The optimal pipeline-only period (no replication)."""
    return norep_optimal(chain, resources).period
