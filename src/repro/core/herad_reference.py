"""HeRAD reference implementation — a literal transcription of Algos. 7-11.

This module exists for *fidelity and verification*: it follows the paper's
pseudocode line by line (pure Python, no vectorization) and is used by the
test suite to validate the production implementation in
:mod:`repro.core.herad`, which computes identical periods and core usages
orders of magnitude faster.

HeRAD (Heterogeneous Resource Allocation using Dynamic programming) fills a
solution matrix ``S[j][b][l]`` holding, for each prefix of ``j`` tasks and
each core budget ``(b, l)``, the minimum achievable period ``P*(j, b, l)``
(Eq. (4)) together with bookkeeping to extract the schedule:

* ``Pbest`` — the optimal period of the prefix;
* ``acc`` — accumulated ``(big, little)`` cores used by that partial solution;
* ``prev`` — the budget coordinates of the predecessor cell (see note below);
* ``v`` — core type of the final stage;
* ``start`` — first task index of the final stage.

Tie-breaking (Algo. 10) prefers, at equal period, the solution that better
exchanges big cores for little ones, then the one using fewer cores.

Deviation note: Algo. 9 stores ``B_prev = (b - u, a_l)`` and
``L_prev = (a_b, l - u)``, mixing a *budget* coordinate with an *accumulated
usage* coordinate.  ``ExtractSolution`` (Algo. 11) dereferences ``prev`` as
the predecessor's budget cell, so consistency requires ``(b - u, l)`` /
``(b, l - u)``; we store those (see DESIGN.md §5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .chain_stats import ChainProfile, profile_of
from .solution import Solution
from .stage import Stage
from .task import TaskChain
from .types import CoreType, Resources

__all__ = ["herad_reference"]

_INF = math.inf


@dataclass(frozen=True, slots=True)
class _Cell:
    """One cell of the HeRAD solution matrix (Algo. 7, lines 1-7)."""

    pbest: float = _INF
    prev_b: int = 0
    prev_l: int = 0
    acc_b: int = 0
    acc_l: int = 0
    vtype: CoreType = CoreType.LITTLE
    start: int = 0  # 0-based index of the final stage's first task


def _compare_cells(current: _Cell, new: _Cell) -> _Cell:
    """Paper's ``CompareCells`` (Algo. 10)."""
    c_b, c_l = current.acc_b, current.acc_l
    n_b, n_l = new.acc_b, new.acc_l
    # Literal transcription of the paper's pseudocode, equality included:
    # both cells' pbest values flow from the same table, so exact comparison
    # is the intended (bitwise) tie-break.
    if (
        current.pbest > new.pbest
        or (current.pbest == new.pbest and c_l < n_l and c_b > n_b)  # lint: ignore[float-equality]
        or (current.pbest == new.pbest and c_l >= n_l and c_b >= n_b)  # lint: ignore[float-equality]
    ):
        return new
    return current


def _single_stage_solution(
    plane: list[list[_Cell]],
    profile: ChainProfile,
    end: int,
    big: int,
    little: int,
) -> None:
    """Paper's ``SingleStageSolution`` (Algo. 8) for tasks ``0..end``.

    Fills ``plane[r_b][r_l]`` with the best solution that puts all the
    considered tasks in one stage.
    """
    rep = profile.is_replicable(0, end)
    w_little = profile.interval_weight(0, end, CoreType.LITTLE)
    w_big_1 = profile.interval_weight(0, end, CoreType.BIG)

    # Lines 1-4: little-core single stages fill the r_b = 0 row.
    for r_l in range(1, little + 1):
        weight = w_little / r_l if rep else w_little
        plane[0][r_l] = _Cell(
            pbest=weight,
            acc_b=0,
            acc_l=r_l if rep else 1,
            vtype=CoreType.LITTLE,
            start=0,
        )

    # Lines 5-17: big-core single stages, compared against the little row.
    for r_b in range(1, big + 1):
        w_b = w_big_1 / r_b if rep else w_big_1
        u_b = r_b if rep else 1
        for r_l in range(0, little + 1):
            if w_b < plane[0][r_l].pbest:
                plane[r_b][r_l] = _Cell(
                    pbest=w_b,
                    acc_b=u_b,
                    acc_l=0,
                    vtype=CoreType.BIG,
                    start=0,
                )
            else:
                plane[r_b][r_l] = plane[0][r_l]


def _recompute_cell(
    matrix: list[list[list[_Cell]]],
    profile: ChainProfile,
    end: int,
    big: int,
    little: int,
) -> None:
    """Paper's ``RecomputeCell`` (Algo. 9) for ``P*(end + 1, big, little)``.

    ``end`` is the 0-based index of the last task considered; ``big`` and
    ``little`` are the cores available in this cell.
    """
    j = end + 1  # plane index: number of tasks covered
    plane = matrix[j]
    cell = plane[big][little]

    # Lines 2-3: propagate solutions that need one core fewer.
    if little > 0:
        cell = _compare_cells(cell, plane[big][little - 1])
    if big > 0:
        cell = _compare_cells(cell, plane[big - 1][little])

    # Lines 4-19: all stage starts, in reverse, for both core types.
    for start in range(end, -1, -1):
        rep = profile.is_replicable(start, end)
        pred_plane = matrix[start]

        w_big = profile.interval_weight(start, end, CoreType.BIG)
        # Optimization from Section V: a sequential stage gains nothing from
        # extra cores, so only u = 1 is considered.
        max_u_big = big if rep else min(1, big)
        for u in range(1, max_u_big + 1):
            pred = pred_plane[big - u][little]
            stage_w = w_big / u if rep else w_big
            cand = _Cell(
                pbest=max(pred.pbest, stage_w),
                prev_b=big - u,
                prev_l=little,
                acc_b=pred.acc_b + (u if rep else 1),
                acc_l=pred.acc_l,
                vtype=CoreType.BIG,
                start=start,
            )
            cell = _compare_cells(cell, cand)

        w_little = profile.interval_weight(start, end, CoreType.LITTLE)
        max_u_little = little if rep else min(1, little)
        for u in range(1, max_u_little + 1):
            pred = pred_plane[big][little - u]
            stage_w = w_little / u if rep else w_little
            cand = _Cell(
                pbest=max(pred.pbest, stage_w),
                prev_b=big,
                prev_l=little - u,
                acc_b=pred.acc_b,
                acc_l=pred.acc_l + (u if rep else 1),
                vtype=CoreType.LITTLE,
                start=start,
            )
            cell = _compare_cells(cell, cand)

    plane[big][little] = cell


def _extract_solution(
    matrix: list[list[list[_Cell]]],
    profile: ChainProfile,
    big: int,
    little: int,
) -> Solution:
    """Paper's ``ExtractSolution`` (Algo. 11): walk the matrix backwards."""
    end = profile.n - 1
    r_b, r_l = big, little
    stages: list[Stage] = []

    while end >= 0:
        cell = matrix[end + 1][r_b][r_l]
        if not math.isfinite(cell.pbest):
            return Solution.empty()
        start = cell.start
        used_b, used_l = cell.acc_b, cell.acc_l
        if start > 0:
            pred = matrix[start][cell.prev_b][cell.prev_l]
            used_b -= pred.acc_b
            used_l -= pred.acc_l
        cores = used_b if cell.vtype is CoreType.BIG else used_l
        stages.append(Stage(start, end, cores, cell.vtype))
        end = start - 1
        r_b, r_l = cell.prev_b, cell.prev_l

    stages.reverse()
    return Solution(stages)


def herad_reference(
    chain: "TaskChain | ChainProfile", resources: Resources
) -> Solution:
    """Run the literal HeRAD (Algo. 7) and return the optimal schedule.

    Args:
        chain: the task chain (or a precomputed profile).
        resources: the platform budget ``R = (b, l)``.

    Returns:
        The optimal solution (empty only for an empty budget).
    """
    profile = profile_of(chain)
    big, little = resources.big, resources.little
    if big + little <= 0:
        return Solution.empty()

    n = profile.n
    # matrix[j][b][l]: best solution covering the first j tasks.  Plane 0 is
    # the P*(0, ., .) = 0 base case.
    base = _Cell(pbest=0.0)
    matrix: list[list[list[_Cell]]] = [
        [[base for _ in range(little + 1)] for _ in range(big + 1)]
    ]
    for _ in range(n):
        matrix.append(
            [[_Cell() for _ in range(little + 1)] for _ in range(big + 1)]
        )

    # Line 8: solutions for the first task alone.  Every one-task schedule is
    # a single stage, so SingleStageSolution alone completes plane 1.
    _single_stage_solution(matrix[1], profile, 0, big, little)

    # Lines 9-18: grow the prefix one task at a time.
    for end in range(1, n):
        _single_stage_solution(matrix[end + 1], profile, end, big, little)
        for u_b in range(big + 1):
            for u_l in range(little + 1):
                if u_b or u_l:
                    _recompute_cell(matrix, profile, end, u_b, u_l)

    return _extract_solution(matrix, profile, big, little)
