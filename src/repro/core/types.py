"""Fundamental types shared by the scheduling core.

The paper models a heterogeneous multicore processor with two types of
*unrelated* resources: big (performance) cores and little (efficient) cores.
This module defines the :class:`CoreType` enumeration used throughout the
library, together with the :class:`Resources` description of a platform's
core budget ``R = (b, l)``.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Iterator

from .errors import InvalidParameterError, InvalidPlatformError

__all__ = ["CoreType", "Resources", "INFINITY"]

#: Sentinel weight/period for infeasible configurations (Eq. (1), r = 0 case).
INFINITY: float = math.inf


class CoreType(enum.IntEnum):
    """The two kinds of resources of the platform.

    ``BIG`` cores are high-performance cores (assumed to have the highest
    power consumption); ``LITTLE`` cores are high-efficiency cores.  The
    integer values are stable and used as array indices by the vectorized
    code paths.
    """

    BIG = 0
    LITTLE = 1

    @property
    def other(self) -> "CoreType":
        """Return the opposite core type."""
        return CoreType.LITTLE if self is CoreType.BIG else CoreType.BIG

    @property
    def symbol(self) -> str:
        """One-letter symbol used in rendered schedules (``B`` / ``L``)."""
        return "B" if self is CoreType.BIG else "L"

    @classmethod
    def parse(cls, value: "CoreType | str | int") -> "CoreType":
        """Coerce ``value`` into a :class:`CoreType`.

        Accepts existing enum members, the integers 0/1, and the strings
        ``"big"``/``"little"`` or ``"B"``/``"L"`` (case-insensitive).

        Raises:
            InvalidParameterError: if the value cannot be interpreted.
        """
        if isinstance(value, cls):
            return value
        if isinstance(value, int) and not isinstance(value, bool):
            return cls(value)
        if isinstance(value, str):
            v = value.strip().lower()
            if v in ("b", "big", "p", "performance"):
                return cls.BIG
            if v in ("l", "little", "e", "efficiency", "efficient"):
                return cls.LITTLE
        raise InvalidParameterError(f"cannot interpret {value!r} as a CoreType")


@dataclass(frozen=True, slots=True)
class Resources:
    """A core budget ``R = (b, l)``: *b* big cores and *l* little cores.

    Instances are immutable; arithmetic helpers return new budgets.  A budget
    may be empty (both counts zero) — it then represents an exhausted pool of
    cores inside a partially-built schedule; the scheduling entry points
    reject empty *platform* budgets explicitly.

    Attributes:
        big: number of big cores available (``b`` in the paper).
        little: number of little cores available (``l`` in the paper).
    """

    big: int
    little: int

    def __post_init__(self) -> None:
        if self.big < 0 or self.little < 0:
            raise InvalidPlatformError(f"negative core counts are invalid: {self}")

    @property
    def total(self) -> int:
        """Total number of cores ``b + l``."""
        return self.big + self.little

    def count(self, core_type: CoreType) -> int:
        """Number of cores of the given type."""
        return self.big if core_type is CoreType.BIG else self.little

    def minus(self, core_type: CoreType, amount: int) -> "Resources":
        """Return a budget with ``amount`` cores of ``core_type`` removed."""
        if core_type is CoreType.BIG:
            return Resources(self.big - amount, self.little)
        return Resources(self.big, self.little - amount)

    def is_exhausted(self) -> bool:
        """True when no cores remain."""
        return self.big == 0 and self.little == 0

    def fits(self, used_big: int, used_little: int) -> bool:
        """Check Eq. (3): the usage fits inside this budget."""
        return used_big <= self.big and used_little <= self.little

    def __iter__(self) -> Iterator[int]:
        yield self.big
        yield self.little

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.big}B, {self.little}L)"
