"""Fundamental types shared by the scheduling core.

The paper models a heterogeneous multicore processor with two types of
*unrelated* resources: big (performance) cores and little (efficient) cores.
Its follow-up (*Energy-Aware Scheduling Strategies for Partially-Replicable
Task Chains on Heterogeneous Processors*) generalizes the same problem to
``k`` core types.  This module defines both views:

* :class:`CoreType` — the paper's two named types, kept as the canonical
  ``k = 2`` case (the enum doubles as the type *index*: ``BIG = 0``,
  ``LITTLE = 1``);
* :class:`Resources` — an ordered per-type core budget.  The two-argument
  constructor ``Resources(b, l)`` is preserved verbatim; ``k``-type budgets
  are built with :meth:`Resources.from_counts`.

Type-index convention
---------------------
Core types are identified by non-negative integers ordered from the most
*performant* (index 0, "big-like") to the most *efficient* (index
``k - 1``, "little-like").  :class:`CoreType` members are ``IntEnum``
values, so every index-based API accepts them unchanged — ``k = 2`` code
keeps passing ``CoreType.BIG``/``CoreType.LITTLE`` and behaves bitwise
identically.  :func:`core_types` yields the sanctioned iteration order:
enum members at ``k = 2`` (so identity checks and renders are unchanged),
plain indices otherwise.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from .errors import InvalidParameterError, InvalidPlatformError

__all__ = [
    "CoreType",
    "CoreIndex",
    "Resources",
    "INFINITY",
    "core_types",
    "type_symbol",
    "type_name",
    "format_usage",
]

#: Sentinel weight/period for infeasible configurations (Eq. (1), r = 0 case).
INFINITY: float = math.inf

#: A core-type designator: a :class:`CoreType` member or a plain type index.
CoreIndex = int


class CoreType(enum.IntEnum):
    """The two kinds of resources of the paper's platform (the ``k = 2`` case).

    ``BIG`` cores are high-performance cores (assumed to have the highest
    power consumption); ``LITTLE`` cores are high-efficiency cores.  The
    integer values are stable and used as array indices by the vectorized
    code paths; on a ``k``-type platform they are simply the first two
    type indices.
    """

    BIG = 0
    LITTLE = 1

    @property
    def other(self) -> "CoreType":
        """Return the opposite core type.

        Two-type compatibility shim: shipped code iterates
        :func:`core_types` instead (lint rule REP111 guards the idiom).
        """
        return CoreType.LITTLE if self is CoreType.BIG else CoreType.BIG

    @property
    def symbol(self) -> str:
        """One-letter symbol used in rendered schedules (``B`` / ``L``)."""
        return "B" if self is CoreType.BIG else "L"

    @classmethod
    def parse(cls, value: "CoreType | str | int") -> "CoreType":
        """Coerce ``value`` into a :class:`CoreType`.

        Accepts existing enum members, the integers 0/1, and the strings
        ``"big"``/``"little"`` or ``"B"``/``"L"`` (case-insensitive).

        Raises:
            InvalidParameterError: if the value cannot be interpreted.
        """
        if isinstance(value, cls):
            return value
        if isinstance(value, int) and not isinstance(value, bool):
            if value not in (0, 1):
                raise InvalidParameterError(
                    f"cannot interpret {value!r} as a CoreType"
                )
            return cls(value)
        if isinstance(value, str):
            v = value.strip().lower()
            if v in ("b", "big", "p", "performance"):
                return cls.BIG
            if v in ("l", "little", "e", "efficiency", "efficient"):
                return cls.LITTLE
        raise InvalidParameterError(f"cannot interpret {value!r} as a CoreType")


def core_types(ktype: int) -> tuple[CoreIndex, ...]:
    """The sanctioned iteration order over a platform's core types.

    Returns the :class:`CoreType` members for a two-type platform — keeping
    identity checks, renders, and pickled values bitwise identical to the
    historical code — and plain type indices ``0..k-1`` otherwise.

    Raises:
        InvalidPlatformError: for ``ktype < 1``.
    """
    if ktype < 1:
        raise InvalidPlatformError(f"a platform needs >= 1 core type: {ktype}")
    if ktype == 2:
        return (CoreType.BIG, CoreType.LITTLE)
    return tuple(range(ktype))


def type_symbol(core_type: CoreIndex) -> str:
    """Short symbol of a core type for rendered schedules.

    ``B``/``L`` for the two canonical types (identical to
    :attr:`CoreType.symbol`), ``T<i>`` for the additional types of a
    ``k > 2`` platform.
    """
    index = int(core_type)
    if index == 0:
        return "B"
    if index == 1:
        return "L"
    return f"T{index}"


def type_name(core_type: CoreIndex) -> str:
    """Spelled-out name of a core type (``big``/``little``/``type<i>``)."""
    index = int(core_type)
    if index == 0:
        return "big"
    if index == 1:
        return "little"
    return f"type{index}"


def format_usage(counts: Sequence[int]) -> str:
    """Render per-type core counts, e.g. ``(3B, 2L)`` or ``(3B, 2L, 1T2)``."""
    return (
        "("
        + ", ".join(f"{c}{type_symbol(v)}" for v, c in enumerate(counts))
        + ")"
    )


@dataclass(frozen=True, init=False)
class Resources:
    """An ordered per-type core budget.

    The canonical two-type form is the paper's ``R = (b, l)``: *b* big cores
    and *l* little cores, built with the positional constructor
    ``Resources(b, l)`` exactly as before.  A ``k``-type budget is built with
    :meth:`from_counts`; type indices follow the performant-to-efficient
    convention of this module.

    Instances are immutable; arithmetic helpers return new budgets.  A budget
    may be empty (all counts zero) — it then represents an exhausted pool of
    cores inside a partially-built schedule; the scheduling entry points
    reject empty *platform* budgets explicitly.

    Attributes:
        counts: number of cores available per type index.
    """

    counts: tuple[int, ...]

    def __init__(self, big: int, little: int) -> None:
        object.__setattr__(self, "counts", (int(big), int(little)))
        self._validate()

    def _validate(self) -> None:
        if any(c < 0 for c in self.counts):
            raise InvalidPlatformError(f"negative core counts are invalid: {self}")
        if not self.counts:
            raise InvalidPlatformError("a budget needs at least one core type")

    @classmethod
    def from_counts(cls, counts: Iterable[int]) -> "Resources":
        """Build a ``k``-type budget from per-type core counts.

        ``Resources.from_counts((b, l))`` equals ``Resources(b, l)``; longer
        sequences open the ``k > 2`` scenario space.
        """
        self = object.__new__(cls)
        object.__setattr__(self, "counts", tuple(int(c) for c in counts))
        self._validate()
        return self

    # -- two-type accessors (the sanctioned k = 2 shim) ----------------------

    @property
    def big(self) -> int:
        """Number of big cores (type 0; ``b`` in the paper)."""
        return self.counts[0]

    @property
    def little(self) -> int:
        """Number of little cores (type 1; ``l`` in the paper).

        Raises:
            InvalidPlatformError: on a single-type budget.
        """
        if len(self.counts) < 2:
            raise InvalidPlatformError(
                f"budget {self} has no little-core (type 1) pool"
            )
        return self.counts[1]

    # -- generic accessors ----------------------------------------------------

    @property
    def ktype(self) -> int:
        """Number of core types ``k`` of this budget."""
        return len(self.counts)

    @property
    def total(self) -> int:
        """Total number of cores over every type."""
        return sum(self.counts)

    def types(self) -> tuple[CoreIndex, ...]:
        """Iteration order over this budget's core types (see :func:`core_types`)."""
        return core_types(self.ktype)

    def usable_types(self) -> tuple[CoreIndex, ...]:
        """The core types with at least one core available."""
        return tuple(v for v in self.types() if self.counts[int(v)] > 0)

    def count(self, core_type: CoreIndex) -> int:
        """Number of cores of the given type."""
        return self.counts[int(core_type)]

    def minus(self, core_type: CoreIndex, amount: int) -> "Resources":
        """Return a budget with ``amount`` cores of ``core_type`` removed."""
        index = int(core_type)
        return Resources.from_counts(
            c - amount if v == index else c for v, c in enumerate(self.counts)
        )

    def is_exhausted(self) -> bool:
        """True when no cores remain."""
        return self.total == 0

    def fits(self, *used: int) -> bool:
        """Check Eq. (3): the per-type usage fits inside this budget.

        Accepts one count per type (``fits(used_big, used_little)`` for the
        two-type case, or ``fits(*usage)`` generally).  Missing trailing
        counts are treated as zero.
        """
        if len(used) > len(self.counts):
            return False
        return all(u <= c for u, c in zip(used, self.counts))

    def __iter__(self) -> Iterator[int]:
        return iter(self.counts)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return format_usage(self.counts)
