"""Pipeline stage model.

A *stage* is a contiguous interval of tasks ``[tau_start, tau_end]`` mapped
onto ``cores`` cores of a single ``core_type`` (interval mapping).  A stage is
*replicable* when every task inside is stateless; only replicable stages
benefit from more than one core (Eq. (1)).
"""

from __future__ import annotations

from dataclasses import dataclass

from .chain_stats import ChainProfile, profile_of
from .errors import InvalidChainError
from .types import INFINITY, CoreIndex, type_name, type_symbol

__all__ = ["Stage"]


@dataclass(frozen=True, slots=True)
class Stage:
    """One pipeline stage of a solution.

    Attributes:
        start: 0-based index of the first task (inclusive).
        end: 0-based index of the last task (inclusive).
        cores: number of cores ``r`` dedicated to the stage.
        core_type: type ``v`` of those cores — a :class:`CoreType` member on
            the paper's two-type platform, a plain type index on a ``k``-type
            one.
    """

    start: int
    end: int
    cores: int
    core_type: CoreIndex

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise InvalidChainError(
                f"invalid stage interval [{self.start}, {self.end}]"
            )
        if self.cores < 1:
            raise InvalidChainError(
                f"a stage needs at least one core, got {self.cores}"
            )

    @property
    def num_tasks(self) -> int:
        """Number of tasks in the stage."""
        return self.end - self.start + 1

    def weight(self, chain: "ChainProfile | object") -> float:
        """Stage weight ``w(s, r, v)`` per Eq. (1) for the given chain."""
        profile = profile_of(chain)
        return profile.stage_weight(self.start, self.end, self.cores, self.core_type)

    def latency(self, chain: "ChainProfile | object") -> float:
        """Single-frame latency of the stage: the 1-core interval weight.

        The paper warns that for ``r > 1`` the stage *weight* (period
        contribution) differs from its *latency*: each replica still takes the
        full interval time per frame; replication only increases throughput.
        """
        profile = profile_of(chain)
        return profile.interval_weight(self.start, self.end, self.core_type)

    def is_replicable(self, chain: "ChainProfile | object") -> bool:
        """True when the stage contains no sequential task."""
        return profile_of(chain).is_replicable(self.start, self.end)

    def effective_cores(self, chain: "ChainProfile | object") -> int:
        """Cores that actually contribute: ``cores`` if replicable else 1."""
        return self.cores if self.is_replicable(chain) else 1

    def with_cores(self, cores: int) -> "Stage":
        """Copy of this stage with a different core count."""
        return Stage(self.start, self.end, cores, self.core_type)

    def render(self) -> str:
        """Paper-style compact form ``(n_tasks, r_v)``, e.g. ``(5, 1B)``."""
        return f"({self.num_tasks},{self.cores}{type_symbol(self.core_type)})"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Stage[{self.start}..{self.end}] on {self.cores} "
            f"{type_name(self.core_type)} core(s)"
        )


def stage_weight_or_inf(
    profile: ChainProfile, start: int, end: int, cores: int, core_type: CoreIndex
) -> float:
    """Stage weight allowing ``cores < 1`` (returns infinity, Eq. (1))."""
    if cores < 1:
        return INFINITY
    return profile.stage_weight(start, end, cores, core_type)


__all__.append("stage_weight_or_inf")
