"""Task and task-chain models.

The workflow scheduled by the paper is a linear chain of ``n`` tasks
``T = {tau_1, ..., tau_n}`` where ``tau_i`` can only execute after
``tau_{i-1}``.  Tasks are partitioned into *replicable* (stateless) tasks and
*sequential* (stateful) tasks; sequential tasks cannot be replicated because
duplicating their internal state produces wrong results.

Each task ``tau_i`` carries one computation weight (latency) per core type:
``w_i^B`` on big cores and ``w_i^L`` on little cores.  On a ``k``-type
platform (see :mod:`repro.core.types`) a task additionally carries one
weight per extra type index ``2..k-1``; the two-type constructors and the
fingerprint byte stream are unchanged for ``k = 2`` chains.

Indexing convention
-------------------
The paper uses 1-based task indices.  The public Python API is 0-based
throughout: a chain of ``n`` tasks has task indices ``0..n-1`` and a stage is
a half-open pair is *not* used — stages are inclusive ``[start, end]`` index
pairs, matching the paper's ``[tau_c, tau_e]`` notation.
"""

from __future__ import annotations

import hashlib
import math
import struct
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from .errors import InvalidChainError
from .types import CoreIndex, core_types

__all__ = ["Task", "TaskChain"]


@dataclass(frozen=True, slots=True)
class Task:
    """A single task of the chain.

    Attributes:
        name: human-readable identifier (purely informational).
        weight_big: computation weight (latency) on a big core, ``w^B > 0``.
        weight_little: computation weight on a little core, ``w^L > 0``.
        replicable: True for stateless tasks (members of ``T_rep``), False
            for stateful/sequential tasks (members of ``T_seq``).
        extra_weights: weights on the extra core types ``2..k-1`` of a
            ``k > 2`` platform, in type-index order; empty for the paper's
            two-type chains.
    """

    name: str
    weight_big: float
    weight_little: float
    replicable: bool
    extra_weights: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        labeled = (
            ("big", self.weight_big),
            ("little", self.weight_little),
            *((f"type{v + 2}", w) for v, w in enumerate(self.extra_weights)),
        )
        for label, w in labeled:
            if not math.isfinite(w) or w <= 0:
                raise InvalidChainError(
                    f"task {self.name!r}: weight on {label} cores must be a "
                    f"finite positive number, got {w!r}"
                )

    @property
    def ktype(self) -> int:
        """Number of core types this task carries a weight for."""
        return 2 + len(self.extra_weights)

    def weight(self, core_type: CoreIndex) -> float:
        """Weight of this task on the given core type."""
        index = int(core_type)
        if index == 0:
            return self.weight_big
        if index == 1:
            return self.weight_little
        return self.extra_weights[index - 2]

    @property
    def sequential(self) -> bool:
        """True for stateful tasks (the complement of :attr:`replicable`)."""
        return not self.replicable


@dataclass(frozen=True)
class TaskChain:
    """An ordered, immutable chain of tasks.

    Construct directly from a sequence of :class:`Task` objects, or use the
    :meth:`from_weights` convenience constructor.

    Attributes:
        tasks: the tasks in chain order.
        name: optional label for reports.
    """

    tasks: tuple[Task, ...]
    name: str = field(default="chain", compare=False)

    def __init__(self, tasks: Iterable[Task], name: str = "chain") -> None:
        tasks = tuple(tasks)
        if not tasks:
            raise InvalidChainError("a task chain must contain at least one task")
        if len({t.ktype for t in tasks}) > 1:
            raise InvalidChainError(
                "all tasks of a chain must carry weights for the same number "
                f"of core types; got {sorted({t.ktype for t in tasks})}"
            )
        object.__setattr__(self, "tasks", tasks)
        object.__setattr__(self, "name", name)

    @classmethod
    def from_weights(
        cls,
        weights_big: Sequence[float],
        weights_little: Sequence[float],
        replicable: Sequence[bool],
        name: str = "chain",
    ) -> "TaskChain":
        """Build a chain from parallel sequences of per-type weights.

        Args:
            weights_big: ``w_i^B`` for each task.
            weights_little: ``w_i^L`` for each task.
            replicable: replicability flag for each task.
            name: optional chain label.

        Raises:
            InvalidChainError: if the sequences have mismatched lengths or
                contain non-positive weights.
        """
        if not (len(weights_big) == len(weights_little) == len(replicable)):
            raise InvalidChainError(
                "weights_big, weights_little and replicable must have the "
                f"same length; got {len(weights_big)}, {len(weights_little)},"
                f" {len(replicable)}"
            )
        tasks = tuple(
            Task(
                name=f"tau_{i + 1}",
                weight_big=float(wb),
                weight_little=float(wl),
                replicable=bool(r),
            )
            for i, (wb, wl, r) in enumerate(
                zip(weights_big, weights_little, replicable)
            )
        )
        return cls(tasks, name=name)

    @classmethod
    def from_weight_matrix(
        cls,
        weight_matrix: Sequence[Sequence[float]],
        replicable: Sequence[bool],
        name: str = "chain",
    ) -> "TaskChain":
        """Build a ``k``-type chain from a per-type weight matrix.

        Args:
            weight_matrix: one row per core type (``k`` rows, performant to
                efficient), each holding the ``n`` per-task weights.  A
                two-row matrix is exactly :meth:`from_weights`.
            replicable: replicability flag for each task.
            name: optional chain label.

        Raises:
            InvalidChainError: on ragged rows, fewer than two rows, or a
                length mismatch with ``replicable``.
        """
        rows = [tuple(float(w) for w in row) for row in weight_matrix]
        if len(rows) < 2:
            raise InvalidChainError(
                f"a weight matrix needs >= 2 core-type rows, got {len(rows)}"
            )
        if len({len(row) for row in rows}) > 1 or len(rows[0]) != len(replicable):
            raise InvalidChainError(
                "weight matrix rows and replicable must all have the same "
                f"length; got rows {[len(r) for r in rows]} and "
                f"{len(replicable)} flags"
            )
        tasks = tuple(
            Task(
                name=f"tau_{i + 1}",
                weight_big=rows[0][i],
                weight_little=rows[1][i],
                replicable=bool(replicable[i]),
                extra_weights=tuple(row[i] for row in rows[2:]),
            )
            for i in range(len(rows[0]))
        )
        return cls(tasks, name=name)

    @classmethod
    def homogeneous(
        cls,
        weights: Sequence[float],
        replicable: Sequence[bool],
        slowdown: float = 1.0,
        name: str = "chain",
    ) -> "TaskChain":
        """Build a chain whose little-core weights are a uniform slowdown.

        Args:
            weights: big-core weights.
            replicable: replicability flags.
            slowdown: ``w^L = slowdown * w^B`` for every task.
            name: optional chain label.
        """
        if slowdown <= 0:
            raise InvalidChainError(f"slowdown must be positive, got {slowdown}")
        little = [w * slowdown for w in weights]
        return cls.from_weights(weights, little, replicable, name=name)

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self.tasks)

    def __getitem__(self, index: int) -> Task:
        return self.tasks[index]

    # -- derived quantities --------------------------------------------------

    @property
    def n(self) -> int:
        """Number of tasks in the chain (``n`` in the paper)."""
        return len(self.tasks)

    @property
    def ktype(self) -> int:
        """Number of core types this chain carries weights for (``k >= 2``)."""
        return self.tasks[0].ktype

    def types(self) -> tuple[CoreIndex, ...]:
        """Iteration order over this chain's core types (see :func:`core_types`)."""
        return core_types(self.ktype)

    @property
    def fingerprint(self) -> str:
        """Stable content hash of the chain's scheduling-relevant data.

        Hashes the per-task ``(w^B, w^L, replicable)`` triples — nothing
        else.  Two chains with equal weight tables and replicability flags
        share a fingerprint regardless of task or chain *names*; any
        perturbation of a weight or a flag changes it.  Schedules depend on
        exactly this data, so the fingerprint is a sound memoization key for
        ``(chain, resources, strategy) -> outcome`` caches
        (see :mod:`repro.engine.memo`).

        The value is a 32-character hex digest (128-bit BLAKE2b), computed
        once per chain and cached.  For a ``k > 2`` chain the digest also
        covers the platform type signature and every extra-type weight — a
        suffix appended *after* the two-type byte stream, so two-type
        fingerprints are byte-for-byte those of the historical code.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is None:
            digest = hashlib.blake2b(digest_size=16)
            digest.update(struct.pack("<q", len(self.tasks)))
            for task in self.tasks:
                digest.update(
                    struct.pack(
                        "<dd?", task.weight_big, task.weight_little, task.replicable
                    )
                )
            if self.ktype > 2:
                digest.update(b"ktype")
                digest.update(struct.pack("<q", self.ktype))
                for task in self.tasks:
                    digest.update(
                        struct.pack(f"<{len(task.extra_weights)}d", *task.extra_weights)
                    )
            cached = digest.hexdigest()
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    def weights(self, core_type: CoreIndex) -> list[float]:
        """Per-task weights on the given core type, in chain order."""
        return [t.weight(core_type) for t in self.tasks]

    def total_weight(self, core_type: CoreIndex) -> float:
        """Sum of all task weights on the given core type."""
        return sum(t.weight(core_type) for t in self.tasks)

    @property
    def replicable_indices(self) -> list[int]:
        """Indices of the stateless tasks (``T_rep``)."""
        return [i for i, t in enumerate(self.tasks) if t.replicable]

    @property
    def sequential_indices(self) -> list[int]:
        """Indices of the stateful tasks (``T_seq``)."""
        return [i for i, t in enumerate(self.tasks) if t.sequential]

    @property
    def stateless_ratio(self) -> float:
        """Fraction of replicable tasks (the paper's *SR* parameter)."""
        return len(self.replicable_indices) / len(self.tasks)

    def is_fully_replicable(self) -> bool:
        """True when the chain has no sequential task."""
        return all(t.replicable for t in self.tasks)

    def subchain(self, start: int, end: int, name: str | None = None) -> "TaskChain":
        """Return the inclusive sub-chain ``[start, end]`` as a new chain."""
        if not (0 <= start <= end < len(self.tasks)):
            raise InvalidChainError(
                f"invalid subchain bounds [{start}, {end}] for n={len(self.tasks)}"
            )
        return TaskChain(
            self.tasks[start : end + 1],
            name=name or f"{self.name}[{start}:{end}]",
        )

    def describe(self) -> str:
        """Multi-line human-readable description of the chain."""
        lines = [f"TaskChain {self.name!r} with {self.n} tasks:"]
        for i, t in enumerate(self.tasks):
            kind = "rep" if t.replicable else "seq"
            lines.append(
                f"  [{i:>3}] {t.name:<28} {kind}  "
                f"w_B={t.weight_big:<10.4g} w_L={t.weight_little:<10.4g}"
            )
        return "\n".join(lines)
