"""HeRAD — Heterogeneous Resource Allocation using Dynamic programming.

Production implementation of the paper's optimal strategy (Section V,
Algos. 7-11).  It computes, for every prefix of ``j`` tasks and every core
budget ``(b, l)``, the minimum achievable period ``P*(j, b, l)`` of Eq. (4):

    P*(j, b, l) = min over stage starts i and core counts u of
                  max(P*(i-1, b-u, l), w([tau_i, tau_j], u, B))   (big stage)
                  max(P*(i-1, b, l-u), w([tau_i, tau_j], u, L))   (little stage)

with the secondary objective resolved per cell by the paper's
``CompareCells`` (Algo. 10) rule.  A key implementation insight (proved in
``tests/core/test_herad_equivalence.py`` and DESIGN.md §5): the
``CompareCells`` fold is order-insensitive and equivalent to taking the
lexicographic minimum of the key ``(period, big cores used, little cores
used)``.  That makes the per-cell reduction expressible with vectorized
NumPy min/argmin passes, turning the hot ``O(n^2 b l (b+l))`` loop nest into
``O(n (b+l))`` NumPy kernel calls.

The literal pseudocode transcription lives in
:mod:`repro.core.herad_reference`; both produce identical periods and core
usages (the extracted stage lists may differ among equivalent ties).

Complexity matches the paper: ``O(n^2 b l (b+l))`` time, ``O(n b l)`` space.
"""

from __future__ import annotations

import math

import numpy as np

from ..obs.context import counter_add
from .binary_search import ScheduleOutcome
from .bounds import period_bounds
from .chain_stats import ChainProfile, profile_of
from .errors import InvalidPlatformError
from .merge import merge_replicable_stages
from .solution import Solution
from .stage import Stage
from .task import TaskChain
from .types import CoreType, Resources

__all__ = ["herad", "herad_solution"]

_INT_SENTINEL = np.iinfo(np.int32).max


class _Tables:
    """The HeRAD solution matrix as a structure of NumPy arrays.

    Axis order is ``(plane, big budget, little budget)`` where plane ``j``
    describes optimal schedules of the first ``j`` tasks.
    """

    __slots__ = ("period", "acc_b", "acc_l", "prev_b", "prev_l", "vtype", "start")

    def __init__(self, n: int, big: int, little: int) -> None:
        shape = (n + 1, big + 1, little + 1)
        self.period = np.full(shape, np.inf, dtype=np.float64)
        self.period[0] = 0.0  # P*(0, ., .) = 0
        self.acc_b = np.zeros(shape, dtype=np.int32)
        self.acc_l = np.zeros(shape, dtype=np.int32)
        self.prev_b = np.zeros(shape, dtype=np.int32)
        self.prev_l = np.zeros(shape, dtype=np.int32)
        self.vtype = np.full(shape, int(CoreType.LITTLE), dtype=np.int8)
        self.start = np.zeros(shape, dtype=np.int32)


def _reduce_candidates(
    cand_period: np.ndarray, cand_acc_b: np.ndarray, cand_acc_l: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Reduce candidate tensors over axis 0 by the lexicographic key
    ``(period, acc_b, acc_l)``.

    Returns the winning ``(period, acc_b, acc_l, index)`` planes.
    """
    p_min = cand_period.min(axis=0)
    # Exact DP tie-break: p_min comes from the very array it is compared to,
    # so equal values are bitwise-identical by construction.
    mask = cand_period == p_min  # lint: ignore[float-equality]
    b_masked = np.where(mask, cand_acc_b, _INT_SENTINEL)
    b_min = b_masked.min(axis=0)
    mask &= cand_acc_b == b_min
    l_masked = np.where(mask, cand_acc_l, _INT_SENTINEL)
    l_min = l_masked.min(axis=0)
    mask &= cand_acc_l == l_min
    winner = mask.argmax(axis=0)
    return p_min, b_min, l_min, winner


def _update_plane(
    cur: dict[str, np.ndarray],
    region: tuple[slice, slice],
    new_period: np.ndarray,
    new_acc_b: np.ndarray,
    new_acc_l: np.ndarray,
    new_fields: dict[str, np.ndarray],
) -> None:
    """Key-compare update of the working plane on ``region``.

    Replaces a cell when the new key ``(period, acc_b, acc_l)`` is strictly
    lexicographically smaller (equal keys keep the incumbent — the competing
    solutions are equivalent for both objectives).
    """
    cur_p = cur["period"][region]
    cur_b = cur["acc_b"][region]
    cur_l = cur["acc_l"][region]
    # Lexicographic DP key: both planes hold values produced by the identical
    # max/divide pipeline, so equal keys really are bitwise-equal; isclose
    # here would merge distinct optima.
    better = (new_period < cur_p) | (
        (new_period == cur_p)  # lint: ignore[float-equality]
        & ((new_acc_b < cur_b) | ((new_acc_b == cur_b) & (new_acc_l < cur_l)))
    )
    if not better.any():
        return
    np.copyto(cur_p, new_period, where=better)
    np.copyto(cur_b, new_acc_b, where=better)
    np.copyto(cur_l, new_acc_l, where=better)
    for name, value in new_fields.items():
        np.copyto(cur[name][region], value, where=better)


#: Plane size (cells) below which the scalar sweep beats the vectorized one.
_SWEEP_SCALAR_CUTOFF = 30


def _neighbor_sweep_small(
    cur: dict[str, np.ndarray], big: int, little: int
) -> None:
    """Scalar ascending sweep — fastest for tiny ``(b, l)`` planes.

    Each cell compares against already-final lower neighbors, so the result
    is the lexicographic key minimum over each cell's lower-left quadrant.
    """
    p = cur["period"]
    ab = cur["acc_b"]
    al = cur["acc_l"]
    fields = [cur[name] for name in ("prev_b", "prev_l", "vtype", "start")]
    for bb in range(big + 1):
        for ll in range(little + 1):
            key = (p[bb, ll], ab[bb, ll], al[bb, ll])
            src: tuple[int, int] | None = None
            if ll > 0:
                nk = (p[bb, ll - 1], ab[bb, ll - 1], al[bb, ll - 1])
                if nk < key:
                    key, src = nk, (bb, ll - 1)
            if bb > 0:
                nk = (p[bb - 1, ll], ab[bb - 1, ll], al[bb - 1, ll])
                if nk < key:
                    key, src = nk, (bb - 1, ll)
            if src is not None:
                p[bb, ll], ab[bb, ll], al[bb, ll] = key
                for f in fields:
                    f[bb, ll] = f[src]


def _neighbor_sweep(cur: dict[str, np.ndarray], big: int, little: int) -> None:
    """Propagate solutions needing one core fewer (Algo. 9, lines 2-3).

    Each cell must end up holding the lexicographic key minimum over its
    lower-left quadrant (budgets ``(b', l') <= (b, l)``), with the winning
    cell's companion fields carried along.  Instead of the naive
    ``O(b * l)`` scalar double loop, run two vectorized lexicographic
    prefix-minimum passes — one per axis, each a Hillis-Steele doubling
    scan (``O(log)`` whole-plane steps) — tracking the flat *source* index
    of each running minimum, then gather the winners' rows once at the end.
    Prefix minima compose across the two axes because the lexicographic
    minimum is associative and commutative; strict comparisons keep the
    incumbent cell on ties, exactly like the scalar sweep.

    The two integer tie-breakers ``(acc_b, acc_l)`` are packed into one
    ``int64`` (order-preserving — both are non-negative and fit in 32
    bits), so each step is a single ``(period, combo)`` lexicographic test.
    Tiny planes fall back to the scalar sweep, which has lower constant
    overhead (see ``benchmarks/bench_engine.py``).
    """
    if (big + 1) * (little + 1) <= _SWEEP_SCALAR_CUTOFF:
        _neighbor_sweep_small(cur, big, little)
        return

    kp = cur["period"].copy()
    combo = (cur["acc_b"].astype(np.int64) << 32) | cur["acc_l"].astype(np.int64)
    own = np.arange(kp.size, dtype=np.intp).reshape(kp.shape)
    src = own.copy()

    for axis, size in ((1, little), (0, big)):
        step = 1
        while step <= size:
            if axis == 1:
                prev_p = kp[:, :-step].copy()
                prev_c = combo[:, :-step].copy()
                prev_s = src[:, :-step].copy()
                cur_p, cur_c, cur_s = kp[:, step:], combo[:, step:], src[:, step:]
            else:
                prev_p = kp[:-step].copy()
                prev_c = combo[:-step].copy()
                prev_s = src[:-step].copy()
                cur_p, cur_c, cur_s = kp[step:], combo[step:], src[step:]
            better = (prev_p < cur_p) | ((prev_p == cur_p) & (prev_c < cur_c))
            if better.any():
                np.copyto(cur_p, prev_p, where=better)
                np.copyto(cur_c, prev_c, where=better)
                np.copyto(cur_s, prev_s, where=better)
            step <<= 1

    changed = src != own
    if not changed.any():
        return
    for plane in cur.values():
        winners = plane.ravel()[src]
        np.copyto(plane, winners, where=changed)


def _fill_tables(profile: ChainProfile, big: int, little: int) -> _Tables:
    """Run the DP over all planes and return the filled solution matrix."""
    n = profile.n
    tables = _Tables(n, big, little)
    caps = {CoreType.BIG: big, CoreType.LITTLE: little}

    bb_grid = np.arange(big + 1, dtype=np.int32)[:, None]
    ll_grid = np.arange(little + 1, dtype=np.int32)[None, :]

    # The working plane: one buffer per field, allocated once and reset per
    # prefix length ``j`` (the previous hot-loop body rebuilt all seven
    # arrays ``n`` times per solve).
    shape = (big + 1, little + 1)
    cur = {
        "period": np.empty(shape, dtype=np.float64),
        "acc_b": np.empty(shape, dtype=np.int32),
        "acc_l": np.empty(shape, dtype=np.int32),
        "prev_b": np.empty(shape, dtype=np.int32),
        "prev_l": np.empty(shape, dtype=np.int32),
        "vtype": np.empty(shape, dtype=np.int8),
        "start": np.empty(shape, dtype=np.int32),
    }

    # Everything below except ``starts``/``stage_w`` is independent of the
    # prefix length ``j`` — precompute per ``(core_type, u)`` so the hot
    # loop allocates nothing but the candidate tensors.  ``_update_plane``
    # broadcasts, so the half-open grids can be passed unexpanded.
    group: dict[tuple[CoreType, int], tuple] = {}
    for u in range(1, big + 1):
        pred = (slice(0, big + 1 - u), slice(None))
        region = (slice(u, big + 1), slice(None))
        fields = {
            "prev_b": bb_grid[u:] - u,
            "prev_l": ll_grid,
            "vtype": np.int8(int(CoreType.BIG)),
        }
        group[CoreType.BIG, u] = (pred, region, fields, u, 0)
    for u in range(1, little + 1):
        pred = (slice(None), slice(0, little + 1 - u))
        region = (slice(None), slice(u, little + 1))
        fields = {
            "prev_b": bb_grid,
            "prev_l": ll_grid[:, u:] - u,
            "vtype": np.int8(int(CoreType.LITTLE)),
        }
        group[CoreType.LITTLE, u] = (pred, region, fields, 0, u)

    for j in range(1, n + 1):
        end = j - 1
        cur["period"].fill(np.inf)
        cur["acc_b"].fill(0)
        cur["acc_l"].fill(0)
        cur["prev_b"].fill(0)
        cur["prev_l"].fill(0)
        cur["vtype"].fill(int(CoreType.LITTLE))
        cur["start"].fill(0)

        rep_idx = np.flatnonzero(profile.replicable_to(end)).astype(np.int64)
        all_idx = np.arange(j, dtype=np.int64)

        for core_type in (CoreType.BIG, CoreType.LITTLE):
            cap = caps[core_type]
            if cap == 0:
                continue
            weights = profile.interval_weights_vector(end, core_type)

            for u in range(1, cap + 1):
                if u == 1:
                    starts = all_idx
                    stage_w = weights
                else:
                    # Sequential stages gain nothing from extra cores
                    # (Section V optimization): only replicable starts.
                    if rep_idx.size == 0:
                        break
                    starts = rep_idx
                    stage_w = weights[rep_idx] / u

                pred_grid, region, fields, add_b, add_l = group[core_type, u]
                pred = (starts, *pred_grid)

                cand_p = np.maximum(
                    tables.period[pred], stage_w[:, None, None]
                )
                cand_b = tables.acc_b[pred]
                cand_l = tables.acc_l[pred]
                if add_b:
                    cand_b = cand_b + np.int32(add_b)
                if add_l:
                    cand_l = cand_l + np.int32(add_l)

                p_min, b_min, l_min, winner = _reduce_candidates(
                    cand_p, cand_b, cand_l
                )
                new_fields = dict(fields)
                new_fields["start"] = starts[winner].astype(np.int32)
                _update_plane(
                    cur, region, p_min, b_min, l_min, new_fields
                )

        _neighbor_sweep(cur, big, little)
        for name, plane in cur.items():
            getattr(tables, name)[j] = plane

    return tables


def _extract(tables: _Tables, profile: ChainProfile, big: int, little: int) -> Solution:
    """Paper's ``ExtractSolution`` (Algo. 11) on the array tables."""
    end = profile.n - 1
    r_b, r_l = big, little
    stages: list[Stage] = []

    while end >= 0:
        j = end + 1
        if not math.isfinite(tables.period[j, r_b, r_l]):
            return Solution.empty()
        start = int(tables.start[j, r_b, r_l])
        used_b = int(tables.acc_b[j, r_b, r_l])
        used_l = int(tables.acc_l[j, r_b, r_l])
        p_b = int(tables.prev_b[j, r_b, r_l])
        p_l = int(tables.prev_l[j, r_b, r_l])
        if start > 0:
            used_b -= int(tables.acc_b[start, p_b, p_l])
            used_l -= int(tables.acc_l[start, p_b, p_l])
        vtype = CoreType(int(tables.vtype[j, r_b, r_l]))
        cores = used_b if vtype is CoreType.BIG else used_l
        stages.append(Stage(start, end, cores, vtype))
        end = start - 1
        r_b, r_l = p_b, p_l

    stages.reverse()
    return Solution(stages)


def herad_solution(
    chain: "TaskChain | ChainProfile",
    resources: Resources,
    *,
    merge: bool = True,
) -> Solution:
    """Compute HeRAD's optimal schedule and return the solution only.

    Args:
        chain: the task chain (or a precomputed profile).
        resources: the platform budget ``R = (b, l)``.
        merge: apply the paper's extra step merging consecutive replicable
            stages mapped to the same core type (period-neutral, shorter
            pipelines).

    Raises:
        InvalidPlatformError: for an empty budget.
    """
    profile = profile_of(chain)
    if resources.ktype != 2:
        raise InvalidPlatformError(
            "HeRAD's DP is specialized to two core types; use the k-type "
            f"reference solver for a {resources.ktype}-type budget"
        )
    if resources.total <= 0:
        raise InvalidPlatformError("HeRAD needs at least one core")
    # Observability hook: DP table volume is HeRAD's cost driver
    # (O(n * b * l) cells); no-op unless an obs context is ambient.
    counter_add("herad.calls")
    counter_add(
        "herad.dp_cells",
        (profile.n + 1) * (resources.big + 1) * (resources.little + 1),
    )
    tables = _fill_tables(profile, resources.big, resources.little)
    solution = _extract(tables, profile, resources.big, resources.little)
    if merge and not solution.is_empty:
        solution = merge_replicable_stages(solution, profile)
    return solution


def herad(
    chain: "TaskChain | ChainProfile",
    resources: Resources,
    *,
    merge: bool = True,
) -> ScheduleOutcome:
    """Schedule a chain optimally with HeRAD (Algo. 7).

    Returns a :class:`~repro.core.binary_search.ScheduleOutcome` for
    interface parity with the greedy strategies; HeRAD performs no binary
    search, so ``iterations`` is 0 and ``bounds`` reports the analytic
    period bracket.
    """
    profile = profile_of(chain)
    solution = herad_solution(profile, resources, merge=merge)
    return ScheduleOutcome(
        solution=solution,
        period=solution.period(profile),
        iterations=0,
        bounds=period_bounds(profile, resources),
        probes=(),
    )
