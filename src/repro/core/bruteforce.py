"""Exhaustive optimal scheduler for small instances — an independent oracle.

The test suite validates HeRAD against this module.  It shares *no* code
with the dynamic program: it enumerates every contiguous partition of the
chain (``2^(n-1)`` of them), every per-stage core-type assignment, and for
each structure derives the optimal core allocation analytically (a
sequential stage uses exactly one core; a replicable stage of single-core
weight ``W`` needs ``ceil(W / P)`` cores to meet a period ``P``).  The
candidate periods form a finite set — every value ``W_stage(v) / r`` — so
the true optimum is found exactly.

Intended for ``n <= ~12`` and small budgets; guarded with an explicit limit.
"""

from __future__ import annotations

import math
from itertools import product
from typing import Iterator

from .chain_stats import ChainProfile, profile_of
from .errors import InvalidPlatformError, SchedulingError
from .solution import Solution
from .stage import Stage
from .task import TaskChain
from .types import CoreIndex, Resources

__all__ = ["brute_force_optimal", "brute_force_period"]

_MAX_TASKS = 14


def _partitions(n: int) -> "Iterator[list[tuple[int, int]]]":
    """Yield every partition of ``0..n-1`` into contiguous intervals."""
    for mask in range(1 << (n - 1)):
        cuts = [i + 1 for i in range(n - 1) if mask >> i & 1]
        bounds = [0, *cuts, n]
        yield [(bounds[k], bounds[k + 1] - 1) for k in range(len(bounds) - 1)]


def _structure_outcome(
    profile: ChainProfile,
    intervals: list[tuple[int, int]],
    types: "tuple[CoreIndex, ...]",
    resources: Resources,
) -> "tuple[float, tuple[int, ...], tuple[int, ...]] | None":
    """Best (period, per-type usage, per-stage cores) for a fixed partition
    and type assignment, or None when infeasible."""
    weights = [
        profile.interval_weight(s, e, v) for (s, e), v in zip(intervals, types)
    ]
    replicable = [profile.is_replicable(s, e) for (s, e) in intervals]
    caps = [resources.count(v) for v in types]

    # Candidate periods: every achievable stage weight.
    candidates: set[float] = set()
    for w, rep, cap in zip(weights, replicable, caps):
        if rep:
            candidates.update(w / r for r in range(1, max(cap, 1) + 1))
        else:
            candidates.add(w)

    best: "tuple[float, tuple[int, ...], tuple[int, ...]] | None" = None
    for period in sorted(candidates):
        cores: list[int] = []
        used = [0] * resources.ktype
        feasible = True
        for w, rep, v in zip(weights, replicable, types):
            if rep:
                need = max(1, math.ceil(w / period))
            else:
                if w > period:
                    feasible = False
                    break
                need = 1
            cores.append(need)
            used[int(v)] += need
        if not feasible:
            continue
        if not resources.fits(*used):
            continue
        if best is None or (period, *used) < (best[0], *best[1]):
            best = (period, tuple(used), tuple(cores))
        break  # candidates are sorted: the first feasible period is minimal
    return best


def brute_force_optimal(
    chain: "TaskChain | ChainProfile", resources: Resources
) -> Solution:
    """Return a globally optimal schedule by exhaustive enumeration.

    Minimizes the period; among period-optimal schedules, returns one with
    lexicographically minimal per-type usage (``(big, little)`` at ``k = 2``,
    performant-to-efficient generally).

    Raises:
        SchedulingError: when the chain is larger than the safety limit.
        InvalidPlatformError: when the budget is empty.
    """
    profile = profile_of(chain)
    if profile.n > _MAX_TASKS:
        raise SchedulingError(
            f"brute force is limited to {_MAX_TASKS} tasks (got {profile.n})"
        )
    if resources.total <= 0:
        raise InvalidPlatformError("brute force needs at least one core")

    best_key: "tuple[float, ...] | None" = None
    best_solution: Solution | None = None

    usable = resources.types()
    for intervals in _partitions(profile.n):
        for types in product(usable, repeat=len(intervals)):
            outcome = _structure_outcome(profile, intervals, types, resources)
            if outcome is None:
                continue
            period, used, cores = outcome
            key = (period, *used)
            if best_key is None or key < best_key:
                best_key = key
                best_solution = Solution(
                    Stage(s, e, r, v)
                    for (s, e), r, v in zip(intervals, cores, types)
                )

    if best_solution is None:
        return Solution.empty()
    return best_solution


def brute_force_period(
    chain: "TaskChain | ChainProfile", resources: Resources
) -> float:
    """The optimal period for the instance, by exhaustive enumeration."""
    profile = profile_of(chain)
    solution = brute_force_optimal(profile, resources)
    return solution.period(profile)
