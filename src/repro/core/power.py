"""Power models for evaluating schedules (paper future work, Section VII).

The paper's secondary objective is a *proxy* for power: prefer little cores.
Its conclusion lists "use direct power measurements instead of assumptions
about the architectures" as future work.  This module provides that next
step for users who have such measurements:

* :class:`PowerModel` — static per-busy-core power draw per core type, with
  an optional idle draw for provisioned-but-waiting replicas;
* :func:`solution_power` — the model's estimate for a schedule;
* :func:`pareto_front` — the period/power Pareto frontier over a set of
  candidate schedules (e.g. one per budget), making the throughput-vs-power
  tradeoff explicit.

These evaluations are deliberately decoupled from the scheduling strategies
(which implement the paper's proxy objective); they let users *select among*
schedules with real power numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from .chain_stats import ChainProfile, profile_of
from .errors import InvalidParameterError
from .solution import Solution
from .task import TaskChain
from .types import CoreIndex

__all__ = ["PowerModel", "solution_power", "pareto_front", "PowerReport"]


@dataclass(frozen=True, slots=True)
class PowerModel:
    """Static power draw per core (arbitrary units, e.g. watts).

    Attributes:
        big_active: draw of a big core while processing.
        little_active: draw of a little core while processing.
        big_idle: draw of a big core provisioned to a stage but idle (the
            fraction of time a non-bottleneck stage's replicas wait).
        little_idle: draw of an idle provisioned little core.
        extra_active: active draws of the extra core types ``2..k-1`` of a
            ``k > 2`` platform, in type-index order.
        extra_idle: idle draws of those extra core types.
    """

    big_active: float = 3.0
    little_active: float = 1.0
    big_idle: float = 0.3
    little_idle: float = 0.1
    extra_active: tuple[float, ...] = ()
    extra_idle: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if len(self.extra_active) != len(self.extra_idle):
            raise InvalidParameterError(
                "extra_active and extra_idle must cover the same core types; "
                f"got {len(self.extra_active)} and {len(self.extra_idle)}"
            )
        labeled = (
            ("big_active", self.big_active),
            ("little_active", self.little_active),
            ("big_idle", self.big_idle),
            ("little_idle", self.little_idle),
            *(
                (f"extra_active[{i}]", v)
                for i, v in enumerate(self.extra_active)
            ),
            *((f"extra_idle[{i}]", v) for i, v in enumerate(self.extra_idle)),
        )
        for label, v in labeled:
            if v < 0:
                raise InvalidParameterError(
                    f"{label} must be non-negative, got {v}"
                )

    @property
    def ktype(self) -> int:
        """Number of core types this model covers."""
        return 2 + len(self.extra_active)

    def active(self, core_type: CoreIndex) -> float:
        """Active draw for one core of ``core_type``."""
        index = int(core_type)
        if index == 0:
            return self.big_active
        if index == 1:
            return self.little_active
        try:
            return self.extra_active[index - 2]
        except IndexError:
            raise InvalidParameterError(
                f"power model covers {self.ktype} core types, not type {index}"
            ) from None

    def idle(self, core_type: CoreIndex) -> float:
        """Idle draw for one provisioned core of ``core_type``."""
        index = int(core_type)
        if index == 0:
            return self.big_idle
        if index == 1:
            return self.little_idle
        try:
            return self.extra_idle[index - 2]
        except IndexError:
            raise InvalidParameterError(
                f"power model covers {self.ktype} core types, not type {index}"
            ) from None


@dataclass(frozen=True, slots=True)
class PowerReport:
    """Power estimate of one schedule.

    Attributes:
        period: the schedule's period.
        power: estimated average power draw.
        busy_fraction: average utilization of the provisioned cores.
    """

    period: float
    power: float
    busy_fraction: float


def solution_power(
    solution: Solution,
    chain: "TaskChain | ChainProfile",
    model: PowerModel | None = None,
) -> PowerReport:
    """Estimate the average power draw of a schedule at steady state.

    Each stage's replicas are busy for ``stage weight / period`` of the time
    (the bottleneck stage is busy 100 %); idle time draws the idle power.

    Args:
        solution: a non-empty schedule.
        chain: the scheduled chain (or profile).
        model: power model; defaults to a 3:1 big:little active draw.

    Raises:
        InvalidParameterError: for an empty solution.
    """
    if solution.is_empty:
        raise InvalidParameterError(
            "cannot estimate the power of an empty solution"
        )
    profile = profile_of(chain)
    m = model if model is not None else PowerModel()
    period = solution.period(profile)

    power = 0.0
    busy_weighted = 0.0
    total_cores = 0
    for stage in solution:
        utilization = stage.weight(profile) / period
        active = m.active(stage.core_type)
        idle = m.idle(stage.core_type)
        power += stage.cores * (
            utilization * active + (1.0 - utilization) * idle
        )
        busy_weighted += stage.cores * utilization
        total_cores += stage.cores
    return PowerReport(
        period=period,
        power=power,
        busy_fraction=busy_weighted / total_cores,
    )


def pareto_front(
    candidates: Iterable[tuple[str, Solution]],
    chain: "TaskChain | ChainProfile",
    model: PowerModel | None = None,
) -> list[tuple[str, PowerReport]]:
    """Period/power Pareto frontier over candidate schedules.

    Args:
        candidates: ``(label, solution)`` pairs (e.g. schedules computed for
            different budgets).
        chain: the scheduled chain.
        model: power model.

    Returns:
        The non-dominated candidates, sorted by increasing period.  A
        candidate dominates another when it is no worse in both period and
        power and strictly better in one.
    """
    profile = profile_of(chain)
    reports = [
        (label, solution_power(solution, profile, model))
        for label, solution in candidates
    ]
    front: list[tuple[str, PowerReport]] = []
    for label, report in reports:
        dominated = any(
            (o.period <= report.period and o.power <= report.power)
            and (o.period < report.period or o.power < report.power)
            for _, o in reports
        )
        if not dominated:
            front.append((label, report))
    front.sort(key=lambda item: (item[1].period, item[1].power))
    return front
