"""Precomputed chain statistics used by every scheduling strategy.

The paper notes (Section IV) that efficient implementations precompute the
sum of weights of any interval with prefix sums, and the replicability of any
interval.  :class:`ChainProfile` bundles those precomputations:

* ``interval_weight(s, e, v)`` — the single-core weight ``w([tau_s, tau_e], 1, v)``
  in O(1) via prefix sums;
* ``is_replicable(s, e)`` — whether the interval contains a sequential task,
  in O(1) via a "next sequential task" index array (this improves on the
  paper's O(n^2) table while computing the same predicate);
* interval stage weights ``w(s, e, r, v)`` implementing Eq. (1).

All indices are 0-based and intervals are inclusive, matching
:mod:`repro.core.task`.
"""

from __future__ import annotations

import math

import numpy as np

from .errors import InvalidChainError, InvalidParameterError
from .task import TaskChain
from .types import INFINITY, CoreIndex, core_types

__all__ = ["ChainProfile"]


class ChainProfile:
    """Immutable precomputation bundle for one :class:`TaskChain`.

    Attributes:
        chain: the profiled chain.
        n: number of tasks.
        prefix: ``prefix[v][i]`` is the sum of the first ``i`` weights on core
            type ``v`` (so interval sums are two lookups).
        next_sequential: ``next_sequential[s]`` is the smallest index
            ``j >= s`` whose task is sequential, or ``n`` if none exists.
    """

    __slots__ = (
        "chain",
        "n",
        "prefix",
        "next_sequential",
        "_weights",
        "_replicable",
        "_max_weight",
        "_max_seq_weight",
        "_total",
    )

    def __init__(self, chain: TaskChain) -> None:
        self.chain = chain
        self.n = chain.n

        weight_vectors = []
        prefixes = []
        for v in chain.types():
            w = np.asarray(chain.weights(v), dtype=np.float64)
            p = np.zeros(self.n + 1, dtype=np.float64)
            np.cumsum(w, out=p[1:])
            weight_vectors.append(w)
            prefixes.append(p)
        self._weights = tuple(weight_vectors)
        self.prefix = tuple(prefixes)

        rep = np.asarray([t.replicable for t in chain.tasks], dtype=bool)
        self._replicable = rep

        # next_sequential[s]: first index >= s holding a sequential task.
        nxt = np.full(self.n + 1, self.n, dtype=np.int64)
        for i in range(self.n - 1, -1, -1):
            nxt[i] = i if not rep[i] else nxt[i + 1]
        self.next_sequential = nxt

        self._max_weight = tuple(float(w.max()) for w in self._weights)
        seq_mask = ~rep
        if seq_mask.any():
            self._max_seq_weight = tuple(
                float(w[seq_mask].max()) for w in self._weights
            )
        else:
            self._max_seq_weight = tuple(0.0 for _ in self._weights)
        self._total = tuple(float(p[-1]) for p in self.prefix)

    # -- basic accessors ----------------------------------------------------

    @property
    def ktype(self) -> int:
        """Number of core types the profiled chain carries weights for."""
        return len(self._weights)

    def types(self) -> tuple[CoreIndex, ...]:
        """Iteration order over the chain's core types (see :func:`core_types`)."""
        return core_types(self.ktype)

    def weights(self, core_type: CoreIndex) -> np.ndarray:
        """Per-task weight vector on ``core_type`` (read-only view)."""
        return self._weights[int(core_type)]

    def weight_of(self, index: int, core_type: CoreIndex) -> float:
        """Weight of a single task on ``core_type``."""
        return float(self._weights[int(core_type)][index])

    def total_weight(self, core_type: CoreIndex) -> float:
        """Sum of all weights on ``core_type``."""
        return self._total[int(core_type)]

    @property
    def fingerprint(self) -> str:
        """The profiled chain's stable content hash (see
        :attr:`repro.core.task.TaskChain.fingerprint`)."""
        return self.chain.fingerprint

    def max_weight(self, core_type: CoreIndex) -> float:
        """Largest single-task weight on ``core_type`` (``w_max``)."""
        return self._max_weight[int(core_type)]

    def max_sequential_weight(self, core_type: CoreIndex) -> float:
        """Largest sequential-task weight on ``core_type`` (0 if none)."""
        return self._max_seq_weight[int(core_type)]

    @property
    def replicable_mask(self) -> np.ndarray:
        """Boolean mask of replicable tasks (read-only view)."""
        return self._replicable

    # -- interval queries -----------------------------------------------------

    def _check_interval(self, start: int, end: int) -> None:
        if not (0 <= start <= end < self.n):
            raise InvalidChainError(
                f"invalid interval [{start}, {end}] for a chain of {self.n} tasks"
            )

    def interval_weight(self, start: int, end: int, core_type: CoreIndex) -> float:
        """Single-core weight of the interval, ``w([tau_s, tau_e], 1, v)``."""
        self._check_interval(start, end)
        p = self.prefix[int(core_type)]
        return float(p[end + 1] - p[start])

    def is_replicable(self, start: int, end: int) -> bool:
        """Paper's ``IsRep``: the interval contains no sequential task."""
        self._check_interval(start, end)
        return int(self.next_sequential[start]) > end

    def final_replicable_task(self, start: int, end: int) -> int:
        """Paper's ``FinalRepTask``: largest ``i >= end`` with ``[start, i]``
        replicable.

        Requires ``[start, end]`` to be replicable (as in Algo. 2 where it is
        guarded by ``IsRep``).
        """
        self._check_interval(start, end)
        nxt = int(self.next_sequential[start])
        if nxt <= end:
            raise InvalidChainError(
                f"interval [{start}, {end}] is not replicable; FinalRepTask "
                "is undefined"
            )
        return min(nxt - 1, self.n - 1)

    def stage_weight(
        self, start: int, end: int, cores: int, core_type: CoreIndex
    ) -> float:
        """Stage weight ``w(s, r, v)`` of Eq. (1).

        Returns the interval sum for stages containing a sequential task, the
        interval sum divided by ``cores`` for replicable stages, and
        ``INFINITY`` when ``cores < 1``.
        """
        if cores < 1:
            return INFINITY
        w = self.interval_weight(start, end, core_type)
        if self.is_replicable(start, end):
            return w / cores
        return w

    def required_cores(
        self, start: int, end: int, core_type: CoreIndex, period: float
    ) -> int:
        """Paper's ``RequiredCores``: ``ceil(w([tau_s, tau_e], 1, v) / P)``.

        Note the formula intentionally follows the paper even for intervals
        containing sequential tasks (callers detect the infeasibility through
        stage-weight validation).
        """
        if period <= 0 or not math.isfinite(period):
            raise InvalidParameterError(
                f"target period must be positive and finite: {period}"
            )
        w = self.interval_weight(start, end, core_type)
        return max(1, math.ceil(w / period))

    def max_packing(
        self, start: int, cores: int, core_type: CoreIndex, period: float
    ) -> int:
        """Paper's ``MaxPacking``: the largest end index ``e >= start`` such
        that ``w([tau_start, tau_e], cores, v) <= period`` — and at least
        ``start`` even when no packing fits (forced single-task stage).

        Implemented in O(log n) with a binary search on the prefix sums:
        stage weight is monotone non-decreasing in the end index because the
        interval sum grows and the replicable divisor can only be lost (a
        replicable prefix divided by ``cores`` never exceeds the same
        interval's sequential weight).
        """
        self._check_interval(start, start)
        if cores < 1:
            # Weight is infinite for 0 cores: nothing fits, forced stage.
            return start
        p = self.prefix[int(core_type)]
        base = p[start]
        nxt = int(self.next_sequential[start])

        best = start
        # Replicable region: end in [start, nxt-1]; weight = sum / cores.
        hi_rep = min(nxt - 1, self.n - 1)
        if hi_rep >= start:
            limit = base + period * cores
            # Find the last e with p[e+1] <= limit within the region.
            e = int(np.searchsorted(p, limit, side="right")) - 2
            e = min(e, hi_rep)
            if e >= start:
                best = max(best, e)
        # Sequential region: end in [nxt, n-1]; weight = sum (no division).
        if nxt <= self.n - 1:
            limit = base + period
            e = int(np.searchsorted(p, limit, side="right")) - 2
            e = min(e, self.n - 1)
            if e >= nxt:
                best = max(best, e)
        return best

    # -- convenience ----------------------------------------------------------

    def interval_weights_vector(
        self, end: int, core_type: CoreIndex
    ) -> np.ndarray:
        """Vector of ``w([tau_i, tau_end], 1, v)`` for ``i`` in ``0..end``.

        Used by the vectorized HeRAD implementation.
        """
        self._check_interval(0, end)
        p = self.prefix[int(core_type)]
        return p[end + 1] - p[: end + 1]

    def replicable_to(self, end: int) -> np.ndarray:
        """Boolean vector ``rep[i] = is_replicable(i, end)`` for ``i <= end``."""
        self._check_interval(0, end)
        return self.next_sequential[: end + 1] > end


def profile_of(chain: "TaskChain | ChainProfile") -> ChainProfile:
    """Return a :class:`ChainProfile`, profiling ``chain`` if necessary."""
    if isinstance(chain, ChainProfile):
        return chain
    if not isinstance(chain, TaskChain):
        raise InvalidChainError(
            f"expected a TaskChain or ChainProfile, got {type(chain).__name__}"
        )
    return ChainProfile(chain)


__all__.append("profile_of")
