"""Runtime solution-certificate auditor.

An *independent* re-derivation of everything the paper's evaluation trusts
about a schedule: stage weights (Eq. (1)), the period (Eq. (2)), resource
validity (Eq. (3)), and the core-usage accounting behind the secondary
objective — plus an analytic optimality bracket for HeRAD outputs.

Independence is the point: this module deliberately does **not** reuse the
prefix-sum machinery of :mod:`repro.core.chain_stats` or the evaluation
methods of :mod:`repro.core.solution`.  Every quantity is recomputed from
the raw :class:`~repro.core.task.Task` data with plain Python loops and
``math.fsum``, so a bug in the optimized evaluation paths cannot certify
its own output.  Comparisons against solver *claims* use
``math.isclose`` — the re-derivation accumulates sums in a different order
than the prefix-sum evaluators, so results may differ by ULPs (exactly the
failure mode the ``float-equality`` lint rule guards against).

Usage::

    report = audit_solution(outcome.solution, chain, resources,
                            claimed_period=outcome.period)
    assert report.ok, report.render()

or let :func:`certify_solution` raise a
:class:`~repro.core.errors.CertificationError`.  The campaign engine runs
this auditor on every fresh solve when ``--certify`` is passed to the CLI
or ``certify=True`` to :func:`repro.experiments.common.run_campaign`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from .errors import CertificationError, InvalidChainError, InvalidPlatformError
from .solution import Solution
from .task import Task, TaskChain
from .types import CoreIndex, Resources, format_usage, type_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .binary_search import ScheduleOutcome
    from .chain_stats import ChainProfile

__all__ = [
    "CertificateViolation",
    "CertificateReport",
    "audit_solution",
    "certify_solution",
    "certify_outcome",
    "optimality_bracket",
]

#: Relative tolerance for cross-checking claims against the re-derivation.
#: Claims come from prefix-sum arithmetic, the audit from ``math.fsum`` —
#: identical real values, different rounding; 1e-9 is ~1e6 ULPs of slack on
#: doubles while catching any corruption of practical magnitude.
DEFAULT_REL_TOL: float = 1e-9


@dataclass(frozen=True, slots=True)
class CertificateViolation:
    """One failed certificate.

    Attributes:
        code: stable machine-readable violation class (e.g. ``budget``).
        message: human explanation with the offending numbers.
    """

    code: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.code}] {self.message}"


@dataclass(frozen=True)
class CertificateReport:
    """Outcome of one audit.

    Attributes:
        violations: every failed certificate (empty when the solution holds).
        period: the independently re-derived period ``P(S)``.
        usage: re-derived per-type core usage (``(big, little)`` at ``k = 2``).
        lower_bound: analytic optimal-period lower bound (only when the
            optimality certificate was requested).
        upper_bound: analytic feasible-period upper bound (ditto).
    """

    violations: tuple[CertificateViolation, ...]
    period: float
    usage: tuple[int, ...]
    lower_bound: "float | None" = None
    upper_bound: "float | None" = None

    @property
    def big_used(self) -> int:
        """Re-derived big-core (type 0) usage."""
        return self.usage[0]

    @property
    def little_used(self) -> int:
        """Re-derived little-core (type 1) usage."""
        return self.usage[1] if len(self.usage) > 1 else 0

    @property
    def ok(self) -> bool:
        """True when every certificate holds."""
        return not self.violations

    def render(self) -> str:
        """Multi-line human report (used in CertificationError messages)."""
        status = "CERTIFIED" if self.ok else "REJECTED"
        lines = [
            f"{status}: period={self.period:.12g} "
            f"usage={format_usage(self.usage)}"
        ]
        if self.lower_bound is not None and self.upper_bound is not None:
            lines.append(
                f"  optimality bracket: [{self.lower_bound:.12g}, "
                f"{self.upper_bound:.12g}]"
            )
        lines.extend(f"  violation {v}" for v in self.violations)
        return "\n".join(lines)


def _chain_of(chain: "TaskChain | ChainProfile") -> TaskChain:
    """Unwrap to the raw task data without importing chain_stats."""
    if isinstance(chain, TaskChain):
        return chain
    inner = getattr(chain, "chain", None)
    if isinstance(inner, TaskChain):
        return inner
    raise InvalidChainError(
        f"cannot audit against a {type(chain).__name__}; "
        "expected a TaskChain or ChainProfile"
    )


def _task_weight(task: Task, core_type: CoreIndex) -> float:
    """Direct field access (no Task.weight helper: stay independent)."""
    index = int(core_type)
    if index == 0:
        return task.weight_big
    if index == 1:
        return task.weight_little
    return task.extra_weights[index - 2]


def _close(a: float, b: float, rel_tol: float) -> bool:
    """isclose that also treats two infinities of the same sign as equal."""
    if math.isinf(a) or math.isinf(b):
        return a == b
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=0.0)


def optimality_bracket(
    chain: "TaskChain | ChainProfile", resources: Resources
) -> "tuple[float, float]":
    """Independent ``[lower, upper]`` bracket for the optimal period.

    Lower bound: the best conceivable period — either perfect load balance
    of every task at its fastest usable speed over all cores, or the
    heaviest sequential task at its fastest usable speed (replication
    cannot help it).  Upper bound: the classic chains-on-chains guarantee
    of a greedy single-type packing, minimized over usable core types.

    This mirrors :func:`repro.core.bounds.period_bounds` *by construction,
    not by call* — the re-derivation below shares no code with it.

    Raises:
        InvalidPlatformError: for an empty budget.
    """
    tasks = _chain_of(chain).tasks
    usable = [v for v in range(resources.ktype) if resources.count(v) > 0]
    if not usable:
        raise InvalidPlatformError("cannot bracket the period without cores")

    fastest = [min(_task_weight(t, v) for v in usable) for t in tasks]
    balance = math.fsum(fastest) / resources.total
    heaviest_seq = max(
        (w for t, w in zip(tasks, fastest) if not t.replicable), default=0.0
    )
    lower = max(balance, heaviest_seq)

    upper = min(
        math.fsum(_task_weight(t, v) for t in tasks) / resources.count(v)
        + max(_task_weight(t, v) for t in tasks)
        for v in usable
    )
    return lower, max(upper, lower)


def audit_solution(
    solution: Solution,
    chain: "TaskChain | ChainProfile",
    resources: Resources,
    *,
    claimed_period: "float | None" = None,
    claimed_big: "int | None" = None,
    claimed_little: "int | None" = None,
    claimed_usage: "Sequence[int] | None" = None,
    target_period: "float | None" = None,
    optimal: bool = False,
    rel_tol: float = DEFAULT_REL_TOL,
) -> CertificateReport:
    """Re-derive every validity certificate of a schedule from raw data.

    Args:
        solution: the schedule under audit.
        chain: the scheduled chain (or its profile; only the raw task data
            is used).
        resources: the platform budget ``R = (b, l)`` or a ``k``-type one.
        claimed_period: the solver's reported period, cross-checked against
            the re-derived one.
        claimed_big: the solver's reported big-core usage.
        claimed_little: the solver's reported little-core usage.
        claimed_usage: the solver's full per-type usage claim (the ``k``-type
            form of ``claimed_big``/``claimed_little``; give one or the
            other, not both).
        target_period: optional target ``P`` the solution must meet
            (Algo. 1's per-probe validity).
        optimal: additionally certify the period against the analytic
            optimality bracket (for HeRAD outputs).
        rel_tol: tolerance for float cross-checks.

    Returns:
        A :class:`CertificateReport`; inspect ``.ok`` / ``.violations``.
    """
    tasks = _chain_of(chain).tasks
    n = len(tasks)
    violations: list[CertificateViolation] = []

    def violate(code: str, message: str) -> None:
        violations.append(CertificateViolation(code, message))

    ktype = resources.ktype
    stages = tuple(solution.stages)
    if not stages:
        violate("empty", "the solution has no stages")
        return CertificateReport(
            violations=tuple(violations),
            period=math.inf,
            usage=(0,) * ktype,
        )

    # -- structure: bounds, contiguity, coverage ---------------------------
    if stages[0].start != 0:
        violate(
            "coverage",
            f"first stage starts at task {stages[0].start}, not 0",
        )
    if stages[-1].end != n - 1:
        violate(
            "coverage",
            f"last stage ends at task {stages[-1].end}, chain has {n} tasks",
        )
    previous_end = None
    for k, stage in enumerate(stages):
        if not (0 <= stage.start <= stage.end < n):
            violate(
                "stage-bounds",
                f"stage {k} interval [{stage.start}, {stage.end}] is outside "
                f"the chain (n={n})",
            )
        if previous_end is not None and stage.start != previous_end + 1:
            violate(
                "contiguity",
                f"stage {k} starts at {stage.start}, expected "
                f"{previous_end + 1}",
            )
        previous_end = stage.end

    # -- per-stage weight (Eq. (1)) and usage accounting -------------------
    period = 0.0
    used = [0] * ktype
    for k, stage in enumerate(stages):
        lo, hi = max(stage.start, 0), min(stage.end, n - 1)
        members = tasks[lo : hi + 1]
        if stage.cores < 1:
            violate("stage-cores", f"stage {k} uses {stage.cores} cores")
            continue
        index = int(stage.core_type)
        if index >= ktype:
            violate(
                "stage-type",
                f"stage {k} runs on core type {index}, the budget only has "
                f"{ktype} types",
            )
            continue
        replicable = all(t.replicable for t in members)
        interval = math.fsum(_task_weight(t, stage.core_type) for t in members)
        if replicable:
            weight = interval / stage.cores
        else:
            weight = interval
            if stage.cores > 1:
                violate(
                    "wasted-cores",
                    f"stage {k} holds a sequential task yet reserves "
                    f"{stage.cores} cores (Eq. (1): extra replicas of a "
                    "stateful stage do no work)",
                )
        period = max(period, weight)
        used[index] += stage.cores

    # -- budget (Eq. (3)) ---------------------------------------------------
    for v in range(ktype):
        if used[v] > resources.count(v):
            violate(
                "budget",
                f"{used[v]} {type_name(v)} cores used, budget is "
                f"{resources.count(v)}",
            )

    # -- claims vs re-derivation -------------------------------------------
    if claimed_period is not None and not _close(claimed_period, period, rel_tol):
        violate(
            "period-mismatch",
            f"solver claims period {claimed_period!r}, audit derives "
            f"{period!r}",
        )
    claims: list[tuple[int, int]] = []
    if claimed_big is not None:
        claims.append((0, claimed_big))
    if claimed_little is not None:
        claims.append((1, claimed_little))
    if claimed_usage is not None:
        claims.extend(enumerate(claimed_usage))
    for v, claim in claims:
        actual = used[v] if v < ktype else 0
        if claim != actual:
            violate(
                "usage-mismatch",
                f"solver claims {claim} {type_name(v)} cores, audit counts "
                f"{actual}",
            )
    if target_period is not None and period > target_period and not _close(
        period, target_period, rel_tol
    ):
        violate(
            "target-period",
            f"period {period!r} exceeds the target {target_period!r}",
        )

    # -- optimality bracket (HeRAD) -----------------------------------------
    lower = upper = None
    if optimal:
        lower, upper = optimality_bracket(chain, resources)
        if period < lower and not _close(period, lower, rel_tol):
            violate(
                "optimality-lower-bound",
                f"claimed-optimal period {period!r} beats the analytic "
                f"lower bound {lower!r} — the evaluation is corrupt",
            )
        if period > upper and not _close(period, upper, rel_tol):
            violate(
                "optimality-upper-bound",
                f"claimed-optimal period {period!r} exceeds the greedy "
                f"feasibility bound {upper!r} — not an optimum",
            )

    return CertificateReport(
        violations=tuple(violations),
        period=period,
        usage=tuple(used),
        lower_bound=lower,
        upper_bound=upper,
    )


def certify_solution(
    solution: Solution,
    chain: "TaskChain | ChainProfile",
    resources: Resources,
    *,
    claimed_period: "float | None" = None,
    claimed_big: "int | None" = None,
    claimed_little: "int | None" = None,
    claimed_usage: "Sequence[int] | None" = None,
    target_period: "float | None" = None,
    optimal: bool = False,
    rel_tol: float = DEFAULT_REL_TOL,
    context: "str | None" = None,
) -> CertificateReport:
    """Audit and raise on failure.

    Raises:
        CertificationError: when any certificate fails; the message carries
            the full report (and ``context``, e.g. the strategy name).
    """
    report = audit_solution(
        solution,
        chain,
        resources,
        claimed_period=claimed_period,
        claimed_big=claimed_big,
        claimed_little=claimed_little,
        claimed_usage=claimed_usage,
        target_period=target_period,
        optimal=optimal,
        rel_tol=rel_tol,
    )
    if not report.ok:
        prefix = f"{context}: " if context else ""
        raise CertificationError(f"{prefix}{report.render()}")
    return report


def certify_outcome(
    outcome: "ScheduleOutcome",
    chain: "TaskChain | ChainProfile",
    resources: Resources,
    *,
    optimal: bool = False,
    context: "str | None" = None,
) -> CertificateReport:
    """Certify a :class:`~repro.core.binary_search.ScheduleOutcome`.

    Cross-checks the outcome's claimed period and the library's core-usage
    accounting against the independent re-derivation.

    Raises:
        CertificationError: when any certificate fails.
    """
    usage = outcome.solution.core_usage(resources.ktype)
    return certify_solution(
        outcome.solution,
        chain,
        resources,
        claimed_period=outcome.period,
        claimed_usage=usage.counts,
        optimal=optimal,
        context=context,
    )


def audit_many(
    outcomes: "Iterable[tuple[str, ScheduleOutcome]]",
    chain: "TaskChain | ChainProfile",
    resources: Resources,
    optimal_strategies: "frozenset[str] | set[str]" = frozenset({"herad"}),
) -> "dict[str, CertificateReport]":
    """Certify several strategies' outcomes on one instance.

    Raises:
        CertificationError: on the first failing strategy.
    """
    return {
        name: certify_outcome(
            outcome,
            chain,
            resources,
            optimal=name in optimal_strategies,
            context=name,
        )
        for name, outcome in outcomes
    }


__all__.append("audit_many")
__all__.append("DEFAULT_REL_TOL")
