"""OTAC baseline — optimal scheduling on *homogeneous* resources.

OTAC (Orhan et al., 2023) solves the partially-replicable task-chain problem
optimally when all cores are identical, by wrapping a greedy maximal packing
(the same ``ComputeStage`` refined procedure reused by FERTAC/2CATAC) in the
binary-search ``Schedule`` driver.  The paper evaluates two instantiations on
heterogeneous platforms as baselines:

* **OTAC (B)** — schedule using only the big cores;
* **OTAC (L)** — schedule using only the little cores.

Both ignore the other half of the machine, which is exactly the gap the
heterogeneous strategies (FERTAC, 2CATAC, HeRAD) close.
"""

from __future__ import annotations

from .binary_search import ScheduleOutcome, schedule_by_binary_search
from .chain_stats import ChainProfile
from .errors import InvalidPlatformError
from .packing import compute_stage, stage_fits
from .solution import Solution
from .stage import Stage
from .task import TaskChain
from .types import CoreIndex, CoreType, Resources

__all__ = ["otac_compute_solution", "otac", "otac_big", "otac_little"]


def otac_compute_solution(
    profile: ChainProfile,
    resources: Resources,
    period: float,
    core_type: CoreIndex,
) -> Solution:
    """Greedy single-type ``ComputeSolution``: OTAC's packing pass.

    Builds stages left to right on ``core_type`` cores only; any other cores
    in ``resources`` are ignored.
    """
    last = profile.n - 1
    remaining = resources.count(core_type)
    stages: list[Stage] = []

    start = 0
    while True:
        plan = compute_stage(profile, start, remaining, core_type, period)
        if not stage_fits(profile, start, plan, remaining, core_type, period):
            return Solution.empty()
        stages.append(Stage(start, plan.end, plan.cores, core_type))
        if plan.end == last:
            return Solution(stages)
        remaining -= plan.cores
        start = plan.end + 1


def otac(
    chain: "TaskChain | ChainProfile",
    cores: int,
    core_type: CoreIndex,
    *,
    epsilon: float | None = None,
) -> ScheduleOutcome:
    """Schedule a chain with OTAC on ``cores`` homogeneous cores.

    Args:
        chain: the task chain (or a precomputed profile).
        cores: number of identical cores available.
        core_type: which weight column of the chain those cores use.
        epsilon: binary-search tolerance, defaulting to ``1 / cores``.

    Returns:
        The :class:`~repro.core.binary_search.ScheduleOutcome`.

    Raises:
        InvalidPlatformError: when ``cores <= 0``.
    """
    if cores <= 0:
        raise InvalidPlatformError(f"OTAC needs at least one core, got {cores}")
    if core_type == CoreType.BIG:
        resources = Resources(big=cores, little=0)
    elif core_type == CoreType.LITTLE:
        resources = Resources(big=0, little=cores)
    else:
        # k-type platform: a single-type budget at the requested index.
        index = int(core_type)
        resources = Resources.from_counts(
            cores if v == index else 0 for v in range(index + 1)
        )

    def builder(
        profile: ChainProfile, res: Resources, period: float
    ) -> Solution:
        return otac_compute_solution(profile, res, period, core_type)

    return schedule_by_binary_search(chain, resources, builder, epsilon=epsilon)


def otac_big(
    chain: "TaskChain | ChainProfile",
    resources: Resources,
    *,
    epsilon: float | None = None,
) -> ScheduleOutcome:
    """The paper's **OTAC (B)** baseline: use only the big cores of ``resources``."""
    return otac(chain, resources.big, CoreType.BIG, epsilon=epsilon)


def otac_little(
    chain: "TaskChain | ChainProfile",
    resources: Resources,
    *,
    epsilon: float | None = None,
) -> ScheduleOutcome:
    """The paper's **OTAC (L)** baseline: use only the little cores of ``resources``."""
    return otac(chain, resources.little, CoreType.LITTLE, epsilon=epsilon)
