"""Uniform access to every scheduling strategy by name.

The evaluation campaigns (Table I, Figs. 1-5) iterate over the same five
strategies; this registry gives them one call signature:

    >>> outcome = get_strategy("fertac")(chain, Resources(10, 10))

Names are case-insensitive; the paper's display names (``OTAC (B)``) and the
plain identifiers (``otac_b``) are both accepted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from .binary_search import ScheduleOutcome
from .chain_stats import ChainProfile
from .errors import InvalidPlatformError, UnknownStrategyError
from .fertac import fertac
from .herad import herad
from .kernels import herad_batch, twocatac_batch, twocatac_memo_batch
from .otac import otac_big, otac_little
from .reference import ktype_reference
from .task import TaskChain
from .twocatac import twocatac
from .types import Resources

__all__ = [
    "StrategyFn",
    "BatchStrategyFn",
    "StrategyInfo",
    "STRATEGIES",
    "PAPER_ORDER",
    "get_strategy",
    "strategy_names",
    "run_strategies",
    "solve_batch",
]

StrategyFn = Callable[["TaskChain | ChainProfile", Resources], ScheduleOutcome]

#: A batch kernel: solves many profiled chains at one budget in a single
#: vectorized call, returning outcomes in batch order.  Must be bitwise
#: identical to mapping the strategy's scalar ``func`` over the batch.
BatchStrategyFn = Callable[
    [Sequence[ChainProfile], Resources], "list[ScheduleOutcome]"
]

#: Instances handed to a batch kernel per call.  Larger batches amortize
#: numpy dispatch further but grow the DP working set past cache; ~50 is the
#: empirical sweet spot for the paper-scale scenario (20 tasks, (10B,10L)).
_BATCH_SPAN: int = 50


@dataclass(frozen=True, slots=True)
class StrategyInfo:
    """Registry entry for one scheduling strategy.

    ``two_type_only`` marks strategies whose implementation is specialized
    to the paper's two core types (they raise ``InvalidPlatformError`` on a
    ``k != 2`` budget); every other strategy accepts any ``k``-type budget.

    ``batch_func`` is the strategy's vectorized batch kernel
    (:mod:`repro.core.kernels`), or ``None`` when only the scalar python
    implementation exists; :func:`solve_batch` is the entry point that
    handles the fallback rules.
    """

    name: str
    display_name: str
    func: StrategyFn
    optimal: bool
    heterogeneous: bool
    description: str
    two_type_only: bool = False
    batch_func: "BatchStrategyFn | None" = None


def _twocatac_memo(
    chain: "TaskChain | ChainProfile", resources: Resources
) -> ScheduleOutcome:  # pragma: no cover - thin wrapper
    return twocatac(chain, resources, memoize=True)


def _norep(
    chain: "TaskChain | ChainProfile", resources: Resources
) -> ScheduleOutcome:  # pragma: no cover - thin wrapper
    from .norep import norep_optimal

    return norep_optimal(chain, resources)


STRATEGIES: dict[str, StrategyInfo] = {
    info.name: info
    for info in (
        StrategyInfo(
            name="herad",
            display_name="HeRAD",
            func=herad,
            optimal=True,
            heterogeneous=True,
            description=(
                "Optimal dynamic programming over task prefixes and core "
                "budgets (Eq. (4), Algos. 7-11)."
            ),
            two_type_only=True,
            batch_func=herad_batch,
        ),
        StrategyInfo(
            name="2catac",
            display_name="2CATAC",
            func=twocatac,
            optimal=False,
            heterogeneous=True,
            description=(
                "Two-choice greedy: builds each stage with both core types "
                "and explores both branches (Algos. 5-6)."
            ),
            batch_func=twocatac_batch,
        ),
        StrategyInfo(
            name="2catac_memo",
            display_name="2CATAC (memo)",
            func=_twocatac_memo,
            optimal=False,
            heterogeneous=True,
            description=(
                "2CATAC with subproblem memoization — identical schedules, "
                "polynomial state space (library extension)."
            ),
            batch_func=twocatac_memo_batch,
        ),
        StrategyInfo(
            name="norep",
            display_name="NoRep DP",
            func=_norep,
            optimal=False,
            heterogeneous=True,
            description=(
                "Optimal interval mapping *without replication* (library "
                "extension): isolates how much replication buys."
            ),
            two_type_only=True,
        ),
        StrategyInfo(
            name="fertac",
            display_name="FERTAC",
            func=fertac,
            optimal=False,
            heterogeneous=True,
            description=(
                "Little-cores-first greedy with fallback to big cores "
                "(Algo. 4)."
            ),
        ),
        StrategyInfo(
            name="ktype_ref",
            display_name="k-type ref",
            func=ktype_reference,
            optimal=False,
            heterogeneous=True,
            description=(
                "Exhaustive per-stage type assignment + binary search: the "
                "epsilon-optimal reference on any k-type budget (library "
                "extension; exponential-ish, small instances only)."
            ),
        ),
        StrategyInfo(
            name="otac_b",
            display_name="OTAC (B)",
            func=otac_big,
            optimal=False,
            heterogeneous=False,
            description="Homogeneous-optimal OTAC restricted to big cores.",
        ),
        StrategyInfo(
            name="otac_l",
            display_name="OTAC (L)",
            func=otac_little,
            optimal=False,
            heterogeneous=False,
            description="Homogeneous-optimal OTAC restricted to little cores.",
        ),
    )
}

#: The strategies, in the order the paper's tables list them.
PAPER_ORDER: tuple[str, ...] = ("herad", "2catac", "fertac", "otac_b", "otac_l")

_ALIASES = {
    "twocatac": "2catac",
    "reference": "ktype_ref",
    "ktype-ref": "ktype_ref",
    "2-catac": "2catac",
    "otac(b)": "otac_b",
    "otac (b)": "otac_b",
    "otac-b": "otac_b",
    "otac(l)": "otac_l",
    "otac (l)": "otac_l",
    "otac-l": "otac_l",
}


def get_strategy(name: str) -> StrategyFn:
    """Look up a strategy function by (case-insensitive) name.

    Raises:
        KeyError: for unknown names, with the available names in the message.
    """
    return get_info(name).func


def get_info(name: str) -> StrategyInfo:
    """Look up a strategy's registry entry by (case-insensitive) name."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    try:
        return STRATEGIES[key]
    except KeyError:
        raise UnknownStrategyError(
            f"unknown strategy {name!r}; available: {sorted(STRATEGIES)}"
        ) from None


def strategy_names(paper_only: bool = True) -> tuple[str, ...]:
    """Names of the registered strategies.

    Args:
        paper_only: restrict to the five strategies evaluated in the paper
            (excludes library extensions such as the memoized 2CATAC).
    """
    if paper_only:
        return PAPER_ORDER
    return tuple(STRATEGIES)


def run_strategies(
    chain: "TaskChain | ChainProfile",
    resources: Resources,
    names: Iterable[str] | None = None,
) -> dict[str, ScheduleOutcome]:
    """Run several strategies on one instance.

    Args:
        chain: the task chain (or a precomputed profile).
        resources: the platform budget.
        names: strategy names; defaults to the paper's five.

    Returns:
        Mapping of canonical strategy name to its outcome.
    """
    selected = tuple(names) if names is not None else PAPER_ORDER
    return {
        get_info(name).name: get_info(name).func(chain, resources)
        for name in selected
    }


def solve_batch(
    chains: "Sequence[TaskChain | ChainProfile]",
    resources: Resources,
    strategy: str,
) -> list[ScheduleOutcome]:
    """Solve a whole batch of chains with one strategy at one budget.

    The vectorized entry point of the ``--kernel batch`` tier: strategies
    with a ``batch_func`` solve the batch in :data:`_BATCH_SPAN`-sized
    sub-batches through their numpy kernel; everything else maps the scalar
    python implementation over the batch.  Outcomes are returned in batch
    order and are **bitwise identical** to ``[func(c, resources) for c in
    chains]`` — the pure-python solvers remain the differential oracle.

    Fallback rules (DESIGN.md §12): when a kernel rejects a sub-batch with
    :class:`~repro.core.errors.InvalidPlatformError` — a ``k != 2`` budget,
    a chain profiled without little-core weights, or an instance outside the
    packed-key bit lanes — that sub-batch is re-solved per instance with the
    scalar python strategy, which either handles the case or raises exactly
    the error the solo campaign would.
    """
    info = get_info(strategy)
    profiles = [
        chain if isinstance(chain, ChainProfile) else ChainProfile(chain)
        for chain in chains
    ]
    if info.batch_func is None:
        return [info.func(profile, resources) for profile in profiles]
    outcomes: list[ScheduleOutcome] = []
    for base in range(0, len(profiles), _BATCH_SPAN):
        sub = profiles[base : base + _BATCH_SPAN]
        try:
            outcomes.extend(info.batch_func(sub, resources))
        except InvalidPlatformError:
            outcomes.extend(info.func(profile, resources) for profile in sub)
    return outcomes


__all__.append("get_info")
