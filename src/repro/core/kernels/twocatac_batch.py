"""Batch-vectorized 2CATAC: a k=2 state-space DP replacing the recursion.

The solo builder (:func:`repro.core.twocatac.twocatac_compute_solution`)
explores, for one chain and one target period, a branch tree whose nodes are
``(start task, remaining big, remaining little)`` states — at a fixed target
the subproblem below a node depends only on that state (that is exactly why
the memoized variant returns identical solutions).  This kernel evaluates
the same state space *bottom-up* for every active instance of a batch at
once:

1. **Stage plans.**  ``ComputeStage`` (Algo. 2) is precomputed for every
   ``(instance, start, available)`` triple of each core type as whole-array
   formulas — ``MaxPacking`` becomes a vectorized count of prefix entries
   under the limit (identical to the solo ``searchsorted`` with its
   per-instance clipping), ``RequiredCores`` a gathered ceil-divide, and the
   not-enough-cores / give-up-one-core branches ``np.where`` selections in
   the solo branch order.
2. **State sweep.**  Planes ``(instance, remaining_b, remaining_l)`` are
   filled from the last start backwards.  Each state's two typed candidates
   gather their successor state's feasibility and usage via fancy indexing,
   and ``ChooseBestSolution`` (Algo. 6) is applied elementwise: the paper's
   mass comparisons are plain integer comparisons at k=2.  Only the winning
   *decision* (stage type) is stored per state; usages propagate so later
   comparisons see exactly the totals the recursion would compare.
3. **Backtrack.**  For each feasible instance the chosen stages are walked
   out of the decision planes (a handful of scalar reads), and the achieved
   period is recomputed in python from the stage list — so the value fed
   back into the bisection bracket is bit-for-bit the one the solo driver
   computes.

Padded rows (``start >= n_i``) produce finite garbage that no real state
reads: a real stage either ends at the instance's own last task (final — no
successor read) or strictly before it (successor is a real state).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..binary_search import ScheduleOutcome
from ..chain_stats import ChainProfile
from ..errors import InvalidPlatformError
from ..solution import Solution
from ..stage import Stage
from ..twocatac import twocatac_compute_solution
from ..types import CoreType, Resources
from .pack import ChainPack
from .search import batched_binary_search

__all__ = ["twocatac_batch", "twocatac_memo_batch"]


class _Plans:
    """``ComputeStage`` resolved for every (instance, start, available).

    Arrays are ``(A, n, cap + 1)`` where the trailing axis is the number of
    cores of this plan's type still available.  ``fits`` is the result of
    ``stage_fits`` on the plan; ``final`` marks plans covering the chain's
    (per-instance) last task.
    """

    __slots__ = ("end", "cores", "fits", "final")

    def __init__(
        self,
        end: np.ndarray,
        cores: np.ndarray,
        fits: np.ndarray,
        final: np.ndarray,
    ) -> None:
        self.end = end
        self.cores = cores
        self.fits = fits
        self.final = final


def _stage_plans(
    prefix: np.ndarray,
    nxt: np.ndarray,
    last: np.ndarray,
    targets: np.ndarray,
    cap: int,
) -> _Plans:
    """Vectorized ``ComputeStage`` for one core type over the active batch.

    Args:
        prefix: the type's weight prefix rows, ``(A, n + 1)``.
        nxt: next-sequential-task values for starts ``0..n-1``, ``(A, n)``.
        last: per-instance last task indices, ``(A,)``.
        targets: per-instance target periods (all positive), ``(A,)``.
        cap: the platform's core count of this type.
    """
    count, n1 = prefix.shape
    n = n1 - 1
    rows = np.arange(count, dtype=np.intp)[:, None]
    rows3 = rows[:, :, None]
    s_grid = np.arange(n, dtype=np.int64)[None, :, None]
    base = prefix[:, :n, None]
    nxt3 = nxt[:, :, None]
    last3 = last[:, None, None]
    targets2 = targets[:, None]
    targets3 = targets[:, None, None]
    hi_rep = np.minimum(nxt3 - 1, last3)

    def max_packing(cores: np.ndarray) -> np.ndarray:
        """Solo ``MaxPacking`` with the searchsorted expressed as a count.

        ``count(p <= limit) - 2`` equals ``searchsorted(p, limit, "right")
        - 2`` exactly; padded prefix entries can only inflate a count that
        the per-instance ``hi_rep``/``last`` clipping caps identically.
        """
        valid = cores >= 1
        limit_rep = base + targets3 * cores
        cnt = (prefix[:, None, None, :] <= limit_rep[..., None]).sum(axis=-1)
        e_rep = np.minimum(cnt - 2, hi_rep)
        take_rep = valid & (hi_rep >= s_grid) & (e_rep >= s_grid)
        best = np.where(take_rep, e_rep, s_grid)
        limit_seq = base + targets3
        cnt = (prefix[:, None, None, :] <= limit_seq[..., None]).sum(axis=-1)
        e_seq = np.minimum(cnt - 2, last3)
        take_seq = valid & (nxt3 <= last3) & (e_seq >= nxt3)
        return np.where(take_seq, np.maximum(best, e_seq), best)

    def required(start_p: np.ndarray, end: np.ndarray) -> np.ndarray:
        """Solo ``RequiredCores``: ``max(1, ceil(w / P))`` (exact: the
        division is the same IEEE op and the quotients are far below 2^53,
        so ``np.ceil`` + integer cast equals ``math.ceil``)."""
        w = prefix[rows, end + 1] - start_p
        return np.maximum(1, np.ceil(w / targets2)).astype(np.int64)

    one = np.ones((1, 1, 1), dtype=np.int64)
    start_p = prefix[:, :n]
    lastm = last[:, None]

    # Lines 1-2: single-core packing and its core requirement.
    end0 = max_packing(one)[..., 0]
    cores0 = required(start_p, end0)

    # Lines 3-4: replicable non-final stages extend to FinalRepTask.
    extend = (end0 != lastm) & (nxt > end0)
    end1 = np.minimum(nxt - 1, lastm)
    cores1 = required(start_p, end1)

    # Lines 8-12: the give-up-one-core shrink (evaluated for every start,
    # selected only where the solo guard holds).
    shrinkable = extend & (end1 != lastm) & (cores1 >= 2)
    shorter = max_packing((cores1 - 1)[:, :, None])[..., 0]
    w_short = prefix[rows, shorter + 1] - start_p
    sw_short = np.where(
        nxt > shorter, w_short / np.maximum(cores1 - 1, 1), w_short
    )
    # required_cores(shorter + 1, end1 + 1): the gather index is clipped for
    # rows where the guard is false (garbage in, masked out).
    ride_end = np.minimum(end1 + 1, n - 1)
    w_ride = prefix[rows, ride_end + 1] - prefix[rows, shorter + 1]
    ride_cores = np.maximum(1, np.ceil(w_ride / targets2)).astype(np.int64)
    shrink_ok = shrinkable & (sw_short <= targets2) & (ride_cores == 1)

    # Assemble the per-available plan, in the solo branch order: extend,
    # then not-enough-cores (lines 5-7), else the shrink.
    avail = np.arange(cap + 1, dtype=np.int64)[None, None, :]
    mp_avail = max_packing(avail)
    base_end = np.where(extend, end1, end0)[:, :, None]
    base_cores = np.where(extend, cores1, cores0)[:, :, None]
    not_enough = extend[:, :, None] & (cores1[:, :, None] > avail)
    shrink = shrink_ok[:, :, None] & ~not_enough
    end_plan = np.where(
        not_enough, mp_avail, np.where(shrink, shorter[:, :, None], base_end)
    )
    cores_plan = np.where(
        not_enough, avail, np.where(shrink, (cores1 - 1)[:, :, None], base_cores)
    )

    # stage_fits: cores in [1, available] and stage weight within target.
    w_plan = prefix[rows3, end_plan + 1] - base
    sw_plan = np.where(
        nxt3 > end_plan, w_plan / np.maximum(cores_plan, 1), w_plan
    )
    fits = (
        (cores_plan >= 1) & (cores_plan <= avail) & (sw_plan <= targets3)
    )
    final = end_plan == last3
    return _Plans(end=end_plan, cores=cores_plan, fits=fits, final=final)


def _probe_batch(
    pack: ChainPack,
    resources: Resources,
    active: np.ndarray,
    targets: np.ndarray,
) -> list[Solution | None]:
    """One lockstep bisection round: solve every active instance's
    ``ComputeSolution`` at its own target period."""
    big, little = resources.big, resources.little
    n = pack.n
    count = int(active.size)
    nxt = pack.next_seq[active][:, :n]
    last = pack.last[active]
    plans = {
        CoreType.BIG: _stage_plans(
            pack.prefix[0][active], nxt, last, targets, big
        ),
        CoreType.LITTLE: _stage_plans(
            pack.prefix[1][active], nxt, last, targets, little
        ),
    }

    # State planes over (instance, remaining big, remaining little); plane
    # ``s`` answers "can tasks s..end be scheduled, and at what usage".
    feas = np.zeros((count, n + 1, big + 1, little + 1), dtype=bool)
    used_b = np.zeros((count, n + 1, big + 1, little + 1), dtype=np.int64)
    used_l = np.zeros((count, n + 1, big + 1, little + 1), dtype=np.int64)
    decision = np.full((count, n, big + 1, little + 1), -1, dtype=np.int8)
    rb = np.arange(big + 1, dtype=np.int64)
    rl = np.arange(little + 1, dtype=np.int64)
    rows = np.arange(count, dtype=np.intp)[:, None, None]

    pb, pl = plans[CoreType.BIG], plans[CoreType.LITTLE]
    for s in range(n - 1, -1, -1):
        # Big-stage candidate: the plan is indexed by the remaining big
        # budget (axis 1 of the state plane).
        e_b, c_b = pb.end[:, s, :], pb.cores[:, s, :]
        fin_b = pb.final[:, s, :][:, :, None]
        succ = (
            rows,
            (e_b + 1)[:, :, None],
            np.clip(rb[None, :] - c_b, 0, big)[:, :, None],
            rl[None, None, :],
        )
        cand_b = pb.fits[:, s, :][:, :, None] & (fin_b | feas[succ])
        ub_b = c_b[:, :, None] + np.where(fin_b, 0, used_b[succ])
        ul_b = np.where(fin_b, 0, used_l[succ])

        # Little-stage candidate: plan indexed by the remaining little
        # budget (axis 2).
        e_l, c_l = pl.end[:, s, :], pl.cores[:, s, :]
        fin_l = pl.final[:, s, :][:, None, :]
        succ = (
            rows,
            (e_l + 1)[:, None, :],
            rb[None, :, None],
            np.clip(rl[None, :] - c_l, 0, little)[:, None, :],
        )
        cand_l = pl.fits[:, s, :][:, None, :] & (fin_l | feas[succ])
        ub_l = np.where(fin_l, 0, used_b[succ])
        ul_l = c_l[:, None, :] + np.where(fin_l, 0, used_l[succ])

        # ChooseBestSolution (Algo. 6) elementwise; at k=2 the performance /
        # efficiency masses are exactly the (big, little) usage counts.
        both = cand_b & cand_l
        big_wins = (ul_b > ul_l) & (ub_b < ub_l)
        little_wins = (ul_b < ul_l) & (ub_b > ub_l)
        prefer_big = big_wins | (
            ~big_wins & ~little_wins & ((ub_b + ul_b) < (ub_l + ul_l))
        )
        choose_big = np.where(both, prefer_big, cand_b)
        feas[:, s] = cand_b | cand_l
        used_b[:, s] = np.where(choose_big, ub_b, ub_l)
        used_l[:, s] = np.where(choose_big, ul_b, ul_l)
        decision[:, s] = np.where(
            cand_b | cand_l, np.where(choose_big, 0, 1), -1
        )

    solutions: list[Solution | None] = []
    for row in range(count):
        if not feas[row, 0, big, little]:
            solutions.append(None)
            continue
        stages: list[Stage] = []
        s, rem_b, rem_l = 0, big, little
        last_row = int(last[row])
        while True:
            if int(decision[row, s, rem_b, rem_l]) == int(CoreType.BIG):
                end = int(pb.end[row, s, rem_b])
                cores = int(pb.cores[row, s, rem_b])
                rem_b -= cores
                core_type = CoreType.BIG
            else:
                end = int(pl.end[row, s, rem_l])
                cores = int(pl.cores[row, s, rem_l])
                rem_l -= cores
                core_type = CoreType.LITTLE
            stages.append(Stage(s, end, cores, core_type))
            if end == last_row:
                break
            s = end + 1
        solutions.append(Solution(stages))
    return solutions


def _twocatac_batch(
    profiles: Sequence[ChainProfile], resources: Resources, memoize: bool
) -> list[ScheduleOutcome]:
    if resources.ktype != 2:
        raise InvalidPlatformError(
            "the 2CATAC batch kernel is specialized to two core types; "
            f"got a {resources.ktype}-type budget"
        )
    pack = ChainPack(profiles)

    def probe(active: np.ndarray, targets: np.ndarray) -> list[Solution | None]:
        return _probe_batch(pack, resources, active, targets)

    def scalar_builder(
        profile: ChainProfile, res: Resources, period: float
    ) -> Solution:
        return twocatac_compute_solution(profile, res, period, memoize=memoize)

    return batched_binary_search(pack, resources, probe, scalar_builder)


def twocatac_batch(
    profiles: Sequence[ChainProfile], resources: Resources
) -> list[ScheduleOutcome]:
    """Batched 2CATAC — bitwise identical to ``twocatac`` per instance."""
    return _twocatac_batch(profiles, resources, False)


def twocatac_memo_batch(
    profiles: Sequence[ChainProfile], resources: Resources
) -> list[ScheduleOutcome]:
    """Batched memoized 2CATAC (the state DP *is* the memoized recursion)."""
    return _twocatac_batch(profiles, resources, True)
