"""Batch-vectorized HeRAD: one DP sweep schedules a whole work unit.

This is :mod:`repro.core.herad` with a leading batch axis.  The solo solver
already expresses each prefix length ``j`` as a handful of whole-plane numpy
operations; at ``n = 20, R = (10, 10)`` that is still ~3 200 small kernel
calls per chain, and a 200-chain campaign pays that dispatch overhead 200
times.  Here the same sweep carries *every* chain of the batch at once:
tables gain a batch axis ``(B, n + 1, b + 1, l + 1)``, candidate tensors
become ``(B, starts, region)``, and the lexicographic reduction / neighbor
sweep operate per batch row independently.

Bitwise equivalence with the solo solver (replayed against the 1260-cell
``tests/data/k2_oracle.json`` fixture and differentially tested in
``tests/core/test_kernels.py``) rests on these arguments:

* **Packed DP key.**  The solo cell key ``(period, acc_b, acc_l)`` with
  first-index tie-break becomes ``(period, acc_b << 48 | acc_l << 16 |
  start)``: the packing is order-isomorphic (each component is non-negative
  and fits its bit lane — guarded at entry), so one float min plus one
  integer min reproduce the solo three-stage masked reduction *and* its
  winner index exactly.  Tables store the combo with the start lane zeroed.
* **Masked invalid starts.**  For ``u >= 2`` the solo solver enumerates one
  instance's replicable starts; the batch kernel gathers the batch-*union*
  of replicable starts and masks the rest of each row to an infinite stage
  weight.  An infinite-period candidate always carries a positive
  accumulator while an untouched cell holds ``(inf, 0)``, so the strict
  lexicographic update can never fire on one — masked candidates are exact
  no-ops.
* **Padding.**  Planes ``j > n_i`` of a shorter chain hold finite garbage
  that nothing reads: plane ``j`` consumes only planes ``< j``, and
  extraction for instance ``i`` starts at plane ``n_i``, which was computed
  entirely from real data.

The batch neighbor sweep always uses the doubling-scan formulation (the solo
code switches to a scalar sweep under 30 cells purely for speed); the two
sweeps computing identical planes is a tested invariant
(``tests/core/test_herad_sweep.py``).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ...obs.context import counter_add
from ..binary_search import ScheduleOutcome
from ..bounds import period_bounds
from ..chain_stats import ChainProfile
from ..errors import InvalidPlatformError
from ..merge import merge_replicable_stages
from ..solution import Solution
from ..stage import Stage
from ..types import CoreType, Resources
from .pack import ChainPack

__all__ = ["herad_batch"]

_KEY_SENTINEL = np.iinfo(np.int64).max
#: Bit lanes of the packed key: ``acc_b << 48 | acc_l << 16 | start``.
_ACC_B_SHIFT = 48
_ACC_L_SHIFT = 16
_START_MASK = np.int64((1 << 16) - 1)
_ACC_L_MASK = np.int64((1 << 32) - 1)
#: Budget / chain-length bounds under which the packed key is exact.
_MAX_BUDGET = 1 << 15
_MAX_TASKS = 1 << 16


class _BatchTables:
    """The HeRAD solution matrices for a whole batch.

    Axis order is ``(instance, plane, big budget, little budget)``.  The
    ``combo`` plane packs both accumulators (start lane zero); the solo
    ``acc_b``/``acc_l`` planes are its two upper lanes.
    """

    __slots__ = ("period", "combo", "prev_b", "prev_l", "vtype", "start")

    def __init__(self, size: int, n: int, big: int, little: int) -> None:
        shape = (size, n + 1, big + 1, little + 1)
        self.period = np.full(shape, np.inf, dtype=np.float64)
        self.period[:, 0] = 0.0  # P*(0, ., .) = 0
        self.combo = np.zeros(shape, dtype=np.int64)
        self.prev_b = np.zeros(shape, dtype=np.int32)
        self.prev_l = np.zeros(shape, dtype=np.int32)
        self.vtype = np.full(shape, int(CoreType.LITTLE), dtype=np.int8)
        self.start = np.zeros(shape, dtype=np.int32)


def _update_plane(
    cur: dict[str, np.ndarray],
    region: tuple[slice, slice],
    new_period: np.ndarray,
    new_key: np.ndarray,
    fields: dict[str, np.ndarray],
) -> None:
    """Strict lexicographic key-compare update on ``region`` of every row.

    ``new_key`` still carries the winner's start in its low lane; the combo
    stored on update has it stripped, and the start is delivered through its
    own plane — exactly the solo field layout.
    """
    sel = (slice(None), *region)
    cur_p = cur["period"][sel]
    cur_c = cur["combo"][sel]
    # Lexicographic DP key: both planes hold values produced by the identical
    # max/divide pipeline, so equal values really are bitwise-equal; isclose
    # here would merge distinct optima.  Comparing the un-stripped key is
    # exact: stored combos are multiples of 2^16 and the start lane is
    # non-negative, so ``new_key < cur_c`` holds iff the stripped combo is
    # *strictly* smaller — the start lane can never flip a tie.
    better = (new_period < cur_p) | (
        (new_period == cur_p)  # lint: ignore[float-equality]
        & (new_key < cur_c)
    )
    if not better.any():
        return
    np.copyto(cur_p, new_period, where=better)
    np.copyto(cur_c, new_key & ~_START_MASK, where=better)
    np.copyto(
        cur["start"][sel], (new_key & _START_MASK).astype(np.int32),
        where=better,
    )
    for name, value in fields.items():
        np.copyto(cur[name][sel], value, where=better)


def _neighbor_sweep(
    cur: dict[str, np.ndarray], big: int, little: int
) -> None:
    """The doubling-scan neighbor sweep of Algo. 9 over every batch row.

    Identical to :func:`repro.core.herad._neighbor_sweep` (whose docstring
    proves the prefix-minimum composition), with the batch axis riding along
    and the accumulators already packed.
    """
    kp = cur["period"].copy()
    kc = cur["combo"].copy()
    size_b = kp.shape[0]
    plane_cells = kp.shape[1] * kp.shape[2]
    own = np.arange(plane_cells, dtype=np.intp).reshape(kp.shape[1:])
    src = np.broadcast_to(own, kp.shape).copy()

    for axis, size in ((2, little), (1, big)):
        step = 1
        while step <= size:
            if axis == 2:
                prev_p = kp[:, :, :-step].copy()
                prev_c = kc[:, :, :-step].copy()
                prev_s = src[:, :, :-step].copy()
                views = (kp[:, :, step:], kc[:, :, step:], src[:, :, step:])
            else:
                prev_p = kp[:, :-step].copy()
                prev_c = kc[:, :-step].copy()
                prev_s = src[:, :-step].copy()
                views = (kp[:, step:], kc[:, step:], src[:, step:])
            cur_p, cur_c, cur_s = views
            # Same strict (period, combo) comparison as the solo sweep.
            better = (prev_p < cur_p) | (
                (prev_p == cur_p)  # lint: ignore[float-equality]
                & (prev_c < cur_c)
            )
            if better.any():
                np.copyto(cur_p, prev_p, where=better)
                np.copyto(cur_c, prev_c, where=better)
                np.copyto(cur_s, prev_s, where=better)
            step <<= 1

    changed = src != own
    if not changed.any():
        return
    rows = np.arange(size_b, dtype=np.intp)[:, None, None]
    for plane in cur.values():
        winners = plane.reshape(size_b, plane_cells)[rows, src]
        np.copyto(plane, winners, where=changed)


def _fill_tables(pack: ChainPack, big: int, little: int) -> _BatchTables:
    """Run the DP over all planes for every instance of the batch."""
    n = pack.n
    tables = _BatchTables(pack.size, n, big, little)
    caps = {CoreType.BIG: big, CoreType.LITTLE: little}

    bb_grid = np.arange(big + 1, dtype=np.int32)[:, None]
    ll_grid = np.arange(little + 1, dtype=np.int32)[None, :]

    shape = (pack.size, big + 1, little + 1)
    cur = {
        "period": np.empty(shape, dtype=np.float64),
        "combo": np.empty(shape, dtype=np.int64),
        "prev_b": np.empty(shape, dtype=np.int32),
        "prev_l": np.empty(shape, dtype=np.int32),
        "vtype": np.empty(shape, dtype=np.int8),
        "start": np.empty(shape, dtype=np.int32),
    }

    # Per-(core type, u) geometry, independent of the prefix length ``j``
    # (mirrors the solo precomputation).  ``add`` is the packed accumulator
    # increment of a ``u``-core stage of that type.
    group: dict[tuple[CoreType, int], tuple] = {}
    for u in range(1, big + 1):
        pred = (slice(0, big + 1 - u), slice(None))
        region = (slice(u, big + 1), slice(None))
        fields = {
            "prev_b": bb_grid[u:] - u,
            "prev_l": ll_grid,
            "vtype": np.int8(int(CoreType.BIG)),
        }
        group[CoreType.BIG, u] = (pred, region, fields, np.int64(u) << _ACC_B_SHIFT)
    for u in range(1, little + 1):
        pred = (slice(None), slice(0, little + 1 - u))
        region = (slice(None), slice(u, little + 1))
        fields = {
            "prev_b": bb_grid,
            "prev_l": ll_grid[:, u:] - u,
            "vtype": np.int8(int(CoreType.LITTLE)),
        }
        group[CoreType.LITTLE, u] = (pred, region, fields, np.int64(u) << _ACC_L_SHIFT)

    for j in range(1, n + 1):
        end = j - 1
        cur["period"].fill(np.inf)
        cur["combo"].fill(0)
        cur["prev_b"].fill(0)
        cur["prev_l"].fill(0)
        cur["vtype"].fill(int(CoreType.LITTLE))
        cur["start"].fill(0)

        # rep[i, s]: interval [s, end] of instance i is replicable (padded
        # rows yield garbage that the inf-mask argument neutralizes).  For
        # u >= 2 only the batch-union of replicable starts is gathered —
        # the complement would be all-masked rows, pure wasted work.
        rep = pack.next_seq[:, :j] > end
        rep_union = np.flatnonzero(rep.any(axis=0)).astype(np.int64)
        all_starts = np.arange(j, dtype=np.int64)[None, :, None, None]
        # Gather the replicable-start predecessor block once per plane; the
        # per-u pred regions below are plain slice views into it.
        if rep_union.size:
            rep_period = tables.period[:, rep_union]
            rep_combo = tables.combo[:, rep_union]

        for core_type in (CoreType.BIG, CoreType.LITTLE):
            cap = caps[core_type]
            if cap == 0:
                continue
            # weights[i, s] = w([tau_s, tau_end], 1, v) of instance i.
            prefix = pack.prefix[int(core_type)]
            weights = prefix[:, j : j + 1] - prefix[:, :j]
            rep_w = weights[:, rep_union]
            rep_mask = rep[:, rep_union]
            rep_starts = rep_union[None, :, None, None]

            for u in range(1, cap + 1):
                pred_grid, region, fields, add = group[core_type, u]
                if u == 1:
                    stage_w = weights
                    pred = (slice(None), slice(0, j), *pred_grid)
                    cand_p = np.maximum(
                        tables.period[pred], stage_w[:, :, None, None]
                    )
                    cand_k = tables.combo[pred] + (all_starts + add)
                else:
                    # Sequential stages gain nothing from extra cores
                    # (Section V optimization): only replicable starts can
                    # host a u-core stage; instances for which a gathered
                    # union start is sequential are masked to inf, which
                    # the strict key update ignores.
                    if rep_union.size == 0:
                        break
                    stage_w = np.where(rep_mask, rep_w / u, np.inf)
                    cand_p = np.maximum(
                        rep_period[:, :, *pred_grid],
                        stage_w[:, :, None, None],
                    )
                    cand_k = rep_combo[:, :, *pred_grid] + (rep_starts + add)

                p_min = cand_p.min(axis=1)
                # Exact DP tie-break: p_min comes from the very array it is
                # compared to, so equal values are bitwise-identical by
                # construction; the packed-key min over the period-tied
                # candidates then resolves ties by (acc_b, acc_l, start) —
                # the solo order.
                mask = cand_p == p_min[:, None]  # lint: ignore[float-equality]
                key_min = np.min(
                    cand_k, axis=1, where=mask, initial=_KEY_SENTINEL
                )
                _update_plane(cur, region, p_min, key_min, fields)

        _neighbor_sweep(cur, big, little)
        for name, plane in cur.items():
            getattr(tables, name)[:, j] = plane

    return tables


def _extract(
    tables: _BatchTables,
    row: int,
    profile: ChainProfile,
    big: int,
    little: int,
) -> Solution:
    """Solo ``ExtractSolution`` (Algo. 11) on one batch row."""
    end = profile.n - 1
    r_b, r_l = big, little
    stages: list[Stage] = []

    while end >= 0:
        j = end + 1
        if not math.isfinite(tables.period[row, j, r_b, r_l]):
            return Solution.empty()
        start = int(tables.start[row, j, r_b, r_l])
        combo = int(tables.combo[row, j, r_b, r_l])
        used_b = combo >> _ACC_B_SHIFT
        used_l = (combo >> _ACC_L_SHIFT) & int(_ACC_L_MASK)
        p_b = int(tables.prev_b[row, j, r_b, r_l])
        p_l = int(tables.prev_l[row, j, r_b, r_l])
        if start > 0:
            prev_combo = int(tables.combo[row, start, p_b, p_l])
            used_b -= prev_combo >> _ACC_B_SHIFT
            used_l -= (prev_combo >> _ACC_L_SHIFT) & int(_ACC_L_MASK)
        vtype = CoreType(int(tables.vtype[row, j, r_b, r_l]))
        cores = used_b if vtype is CoreType.BIG else used_l
        stages.append(Stage(start, end, cores, vtype))
        end = start - 1
        r_b, r_l = p_b, p_l

    stages.reverse()
    return Solution(stages)


def herad_batch(
    profiles: Sequence[ChainProfile], resources: Resources
) -> list[ScheduleOutcome]:
    """Solve a batch of chains optimally with the vectorized HeRAD DP.

    Returns one :class:`~repro.core.binary_search.ScheduleOutcome` per
    profile, bitwise identical to ``herad(profile, resources)``.

    Raises:
        InvalidPlatformError: on a non-two-type or empty budget, or one too
            large for the packed-key bit lanes (callers such as
            :func:`repro.core.registry.solve_batch` fall back to the
            per-instance python solver, which handles all of these).
    """
    if resources.ktype != 2:
        raise InvalidPlatformError(
            "HeRAD's DP is specialized to two core types; use the k-type "
            f"reference solver for a {resources.ktype}-type budget"
        )
    if resources.total <= 0:
        raise InvalidPlatformError("HeRAD needs at least one core")
    pack = ChainPack(profiles)
    big, little = resources.big, resources.little
    if big >= _MAX_BUDGET or little >= _MAX_BUDGET or pack.n >= _MAX_TASKS:
        raise InvalidPlatformError(
            "instance exceeds the batch kernel's packed-key lanes "
            f"(budget < {_MAX_BUDGET} per type, chains < {_MAX_TASKS} tasks); "
            "use the per-instance python solver"
        )
    for profile in pack.profiles:
        counter_add("herad.calls")
        counter_add(
            "herad.dp_cells", (profile.n + 1) * (big + 1) * (little + 1)
        )

    tables = _fill_tables(pack, big, little)

    outcomes: list[ScheduleOutcome] = []
    for row, profile in enumerate(pack.profiles):
        solution = _extract(tables, row, profile, big, little)
        if not solution.is_empty:
            solution = merge_replicable_stages(solution, profile)
        outcomes.append(
            ScheduleOutcome(
                solution=solution,
                period=solution.period(profile),
                iterations=0,
                bounds=period_bounds(profile, resources),
                probes=(),
            )
        )
    return outcomes
