"""Packing a batch of chain profiles into padded ndarray planes.

The batch kernels amortize numpy dispatch overhead by carrying *every*
instance of a work unit through each array operation at once.  To do that,
per-chain vectors of different lengths are packed into rectangular planes
with a leading batch axis:

* ``prefix[v]`` — per-type weight prefix sums, shape ``(B, n + 1)`` where
  ``n`` is the longest chain's task count.  Rows of shorter chains are
  padded by **repeating the final prefix value**, which keeps every row
  non-decreasing (binary-search style ``count(p <= limit)`` packing stays
  correct: padding can only inflate a count that per-instance clipping with
  ``ns``/``last`` caps anyway).
* ``next_seq`` — the "next sequential task" index vectors, shape
  ``(B, n + 1)``, padded with the instance's own ``n`` (i.e. "no sequential
  task at or after a padded position").
* ``ns`` / ``last`` — the per-instance task counts and last task indices
  that every kernel uses to clip padded garbage out of its results.

The convention downstream (DESIGN.md §12): values computed for padded cells
are *garbage but finite* — kernels must never read them into a real
instance's result, and never let them produce an index error, a NaN, or a
runtime warning.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..chain_stats import ChainProfile
from ..errors import InvalidChainError, InvalidPlatformError

__all__ = ["ChainPack", "pack_profiles"]


class ChainPack:
    """A batch of :class:`ChainProfile` s packed into padded planes.

    Attributes:
        profiles: the packed profiles, in batch order.
        size: the batch size ``B``.
        n: the padded task-count ``max_i n_i``.
        ns: per-instance task counts, shape ``(B,)``, ``int64``.
        last: per-instance last task indices ``ns - 1``, shape ``(B,)``.
        prefix: two weight-prefix planes (big, little), each ``(B, n + 1)``.
        next_seq: next-sequential-task planes, ``(B, n + 1)``, ``int64``.
    """

    __slots__ = ("profiles", "size", "n", "ns", "last", "prefix", "next_seq")

    def __init__(self, profiles: Sequence[ChainProfile]) -> None:
        if not profiles:
            raise InvalidChainError("cannot pack an empty batch of profiles")
        for profile in profiles:
            if profile.ktype < 2:
                raise InvalidPlatformError(
                    "the k=2 batch kernels need big and little weights; a "
                    f"profiled chain carries only {profile.ktype} type(s)"
                )
        self.profiles: tuple[ChainProfile, ...] = tuple(profiles)
        self.size: int = len(self.profiles)
        self.ns: np.ndarray = np.array(
            [p.n for p in self.profiles], dtype=np.int64
        )
        self.last: np.ndarray = self.ns - 1
        self.n: int = int(self.ns.max())

        planes = []
        for v in (0, 1):
            plane = np.empty((self.size, self.n + 1), dtype=np.float64)
            for i, profile in enumerate(self.profiles):
                row = profile.prefix[v]
                plane[i, : row.size] = row
                plane[i, row.size :] = row[-1]
            planes.append(plane)
        self.prefix: tuple[np.ndarray, np.ndarray] = (planes[0], planes[1])

        nxt = np.empty((self.size, self.n + 1), dtype=np.int64)
        for i, profile in enumerate(self.profiles):
            row = profile.next_sequential
            nxt[i, : row.size] = row
            nxt[i, row.size :] = profile.n
        self.next_seq: np.ndarray = nxt


def pack_profiles(profiles: Sequence[ChainProfile]) -> ChainPack:
    """Pack a non-empty batch of profiles for the k=2 batch kernels.

    Raises:
        InvalidChainError: on an empty batch.
        InvalidPlatformError: when a profile lacks little-core weights.
    """
    return ChainPack(profiles)
