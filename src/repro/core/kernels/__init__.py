"""Batch-vectorized solver kernels (the ``--kernel batch`` tier).

One kernel call solves *many* chains: profiles are packed into padded
ndarray planes (:mod:`.pack`), HeRAD's DP sweeps the whole batch per plane
(:mod:`.herad_batch`), and 2CATAC runs a lockstep batched bisection over a
vectorized state DP (:mod:`.search`, :mod:`.twocatac_batch`).

The kernels are specialized to the paper's two-type platform and promise
**bitwise-identical** outcomes to the pure-python solvers, which remain the
differential oracle (replayed over the full ``tests/data/k2_oracle.json``
fixture through this tier).  Entry is through
:func:`repro.core.registry.solve_batch`, which falls back per instance to
the python solvers for k != 2 budgets, single-type chain profiles, or any
:class:`~repro.core.errors.InvalidPlatformError` a kernel raises.
See DESIGN.md §12 for the packing layout and fallback rules.
"""

from __future__ import annotations

from .herad_batch import herad_batch
from .pack import ChainPack, pack_profiles
from .search import batched_binary_search
from .twocatac_batch import twocatac_batch, twocatac_memo_batch

__all__ = [
    "ChainPack",
    "pack_profiles",
    "batched_binary_search",
    "herad_batch",
    "twocatac_batch",
    "twocatac_memo_batch",
]
