"""Lockstep batched ``Schedule`` driver (Algo. 1 over a whole batch).

:func:`repro.core.binary_search.schedule_by_binary_search` runs one
bisection per chain; here every instance of a :class:`ChainPack` steps its
bracket in lockstep rounds.  Each round gathers the still-open instances
(``upper - lower >= eps``), computes all their midpoints at once, and asks a
*batched* probe for all their candidate solutions in one vectorized call;
converged instances are masked out and simply stop being probed.

Per-instance state — bracket, best solution, probe log, iteration count —
evolves independently, so instance ``i``'s sequence of probes is exactly the
sequence the solo driver would produce, bitwise: the midpoint arithmetic,
the bracket updates (upper tightens to the *achieved* period), the epsilon,
and the 200-iteration cap are all identical.  The rare empty-best fallback
(degenerate brackets, greedy builders defeated at the upper bound) probes
per instance through the strategy's scalar python builder, which *is* the
solo code path.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ...obs.context import counter_add
from ..binary_search import ScheduleOutcome
from ..bounds import period_bounds, search_epsilon
from ..chain_stats import ChainProfile
from ..errors import InvalidPlatformError
from ..solution import Solution
from ..types import Resources
from .pack import ChainPack

__all__ = ["BatchProbeFn", "batched_binary_search"]

#: Batched ``ComputeSolution``: given the active batch rows and one target
#: period per row, return one candidate per row — ``None`` for "no valid
#: schedule at this target".  The contract mirroring the solo driver: a
#: solution must be returned exactly when the scalar builder's candidate
#: would pass ``is_valid(profile, resources, target)``, and it must be that
#: same solution.
BatchProbeFn = Callable[[np.ndarray, np.ndarray], "Sequence[Solution | None]"]

#: Scalar ``ComputeSolution`` used for the empty-best fallback probes.
ScalarBuilderFn = Callable[[ChainProfile, Resources, float], Solution]


def batched_binary_search(
    pack: ChainPack,
    resources: Resources,
    probe: BatchProbeFn,
    scalar_builder: ScalarBuilderFn,
    *,
    max_iterations: int = 200,
) -> list[ScheduleOutcome]:
    """Run the paper's ``Schedule`` for every instance of ``pack`` at once.

    Returns one :class:`~repro.core.binary_search.ScheduleOutcome` per
    packed profile, in batch order, bitwise identical to running
    ``schedule_by_binary_search`` per instance with the corresponding
    scalar builder.

    Raises:
        InvalidPlatformError: when the budget has no cores.
    """
    if resources.total <= 0:
        raise InvalidPlatformError("scheduling requires at least one core")

    bounds = [period_bounds(p, resources) for p in pack.profiles]
    eps = search_epsilon(resources)
    size = pack.size
    lower = np.array([b.lower for b in bounds], dtype=np.float64)
    upper = np.array([b.upper for b in bounds], dtype=np.float64)
    best: list[Solution] = [Solution.empty() for _ in range(size)]
    best_period: list[float] = [float("inf")] * size
    probes: list[list[tuple[float, bool]]] = [[] for _ in range(size)]
    iterations = [0] * size

    for _ in range(max_iterations):
        active = np.flatnonzero(upper - lower >= eps)
        if active.size == 0:
            break
        targets = (upper[active] + lower[active]) / 2.0
        candidates = probe(active, targets)
        for pos, row in enumerate(active.tolist()):
            iterations[row] += 1
            target = float(targets[pos])
            candidate = candidates[pos]
            if candidate is not None:
                best[row] = candidate
                achieved = candidate.period(pack.profiles[row])
                best_period[row] = achieved
                # The achieved period can only shrink from here (line 10).
                upper[row] = achieved
            else:
                lower[row] = target
            probes[row].append((target, candidate is not None))

    outcomes: list[ScheduleOutcome] = []
    for row, profile in enumerate(pack.profiles):
        solution = best[row]
        period = best_period[row]
        if solution.is_empty:
            # Same fallback ladder as the solo driver: the upper bound, then
            # the always-feasible whole-chain-on-one-core period.
            fallbacks = [bounds[row].upper]
            usable = resources.usable_types()
            fallbacks.append(min(profile.total_weight(v) for v in usable))
            for target in fallbacks:
                candidate = scalar_builder(profile, resources, target)
                feasible = candidate.is_valid(profile, resources, target)
                probes[row].append((target, feasible))
                if feasible:
                    solution = candidate
                    period = candidate.period(profile)
                    break
        counter_add("binary_search.calls")
        counter_add("binary_search.iterations", iterations[row])
        outcomes.append(
            ScheduleOutcome(
                solution=solution,
                period=period,
                iterations=iterations[row],
                bounds=bounds[row],
                probes=tuple(probes[row]),
            )
        )
    return outcomes
