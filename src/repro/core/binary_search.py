"""The binary-search ``Schedule`` driver (Algo. 1).

Both greedy heuristics (FERTAC, 2CATAC) and the homogeneous OTAC baseline
share the same outer loop: bracket the optimal period (see
:mod:`repro.core.bounds`), then binary-search a target period ``P_mid``,
asking a strategy-specific ``ComputeSolution`` whether a schedule meeting
``P_mid`` exists.  Valid solutions tighten the upper bound to their *actual*
period; failures raise the lower bound to ``P_mid``.  The search stops when
the bracket is narrower than ``epsilon = 1 / (b + l)``.

The driver is strategy-agnostic: pass any callable with the
:class:`ComputeSolutionFn` signature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from ..obs.context import counter_add
from .bounds import PeriodBounds, period_bounds, search_epsilon
from .chain_stats import ChainProfile, profile_of
from .errors import InvalidParameterError, InvalidPlatformError
from .solution import Solution
from .task import TaskChain
from .types import Resources

__all__ = [
    "ComputeSolutionFn",
    "ScheduleOutcome",
    "schedule_by_binary_search",
]


class ComputeSolutionFn(Protocol):
    """Strategy-specific solution builder for one target period.

    Must return a (possibly partial or empty) :class:`Solution`; the driver
    validates it against the full chain, the budget, and the target period.
    """

    def __call__(
        self, profile: ChainProfile, resources: Resources, period: float
    ) -> Solution: ...


@dataclass(frozen=True)
class ScheduleOutcome:
    """Result of a ``Schedule`` run.

    Attributes:
        solution: the best valid solution found (empty if none).
        period: its achieved period ``P(S)`` (``inf`` if none).
        iterations: number of binary-search probes performed.
        bounds: the initial period bracket.
        probes: the sequence of ``(P_mid, feasible)`` probe outcomes, useful
            for debugging and for the convergence tests.
    """

    solution: Solution
    period: float
    iterations: int
    bounds: PeriodBounds
    probes: tuple[tuple[float, bool], ...] = field(default=(), repr=False)

    @property
    def feasible(self) -> bool:
        """True when a valid schedule was found."""
        return not self.solution.is_empty


def schedule_by_binary_search(
    chain: "TaskChain | ChainProfile",
    resources: Resources,
    compute_solution: ComputeSolutionFn,
    *,
    epsilon: float | None = None,
    max_iterations: int = 200,
) -> ScheduleOutcome:
    """Run the paper's ``Schedule`` (Algo. 1) with a pluggable builder.

    Args:
        chain: the task chain (or a precomputed profile).
        resources: the platform budget ``R = (b, l)``.
        compute_solution: strategy-specific ``ComputeSolution``.
        epsilon: binary-search tolerance; defaults to ``1 / (b + l)``.
        max_iterations: hard safety cap on probes (the theoretical count is
            ``O(log(w_max * (b + l)))``, far below the default cap).

    Returns:
        A :class:`ScheduleOutcome`; its solution is empty only if no probe
        produced a valid schedule (which cannot happen for the paper's
        strategies when the budget is non-empty, since a single-stage
        whole-chain schedule is always found at the upper bound).

    Raises:
        InvalidPlatformError: when the budget has no cores.
    """
    profile = profile_of(chain)
    if resources.total <= 0:
        raise InvalidPlatformError("scheduling requires at least one core")

    bounds = period_bounds(profile, resources)
    eps = search_epsilon(resources) if epsilon is None else float(epsilon)
    if eps <= 0:
        raise InvalidParameterError(f"epsilon must be positive, got {eps}")

    best = Solution.empty()
    best_period = float("inf")
    lower, upper = bounds.lower, bounds.upper
    probes: list[tuple[float, bool]] = []

    iterations = 0
    while upper - lower >= eps and iterations < max_iterations:
        iterations += 1
        target = (upper + lower) / 2.0
        candidate = compute_solution(profile, resources, target)
        feasible = candidate.is_valid(profile, resources, target)
        if feasible:
            best = candidate
            best_period = candidate.period(profile)
            # The achieved period can only shrink from here (line 10).
            upper = best_period
        else:
            lower = target
        probes.append((target, feasible))

    if best.is_empty:
        # The bracket can start degenerate (upper - lower < eps) for
        # single-task chains, and adversarial weight tables may defeat the
        # theoretical feasibility of the upper bound for a *greedy* builder.
        # Probe the upper bound, then the always-feasible whole-chain-on-one-
        # core period, so callers always get a valid schedule.
        fallbacks = [bounds.upper]
        usable = resources.usable_types()
        fallbacks.append(min(profile.total_weight(v) for v in usable))
        for target in fallbacks:
            candidate = compute_solution(profile, resources, target)
            feasible = candidate.is_valid(profile, resources, target)
            probes.append((target, feasible))
            if feasible:
                best = candidate
                best_period = candidate.period(profile)
                break

    # Observability hook: no-ops unless an obs context is ambient, and
    # records *about* the finished search — never feeds back into it.
    counter_add("binary_search.calls")
    counter_add("binary_search.iterations", iterations)

    return ScheduleOutcome(
        solution=best,
        period=best_period,
        iterations=iterations,
        bounds=bounds,
        probes=tuple(probes),
    )
