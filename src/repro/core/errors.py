"""Exception hierarchy for the scheduling core.

All library-specific failures derive from :class:`SchedulingError` so callers
can catch one type.  Input validation failures raise the more specific
subclasses below (which also derive from :class:`ValueError` — or
:class:`KeyError` for lookups — so that sloppy callers using
``except ValueError`` / ``except KeyError`` still work).

The ``error-hierarchy`` lint rule (REP103, :mod:`repro.lint.rules`) enforces
that core modules raise only these types.
"""

from __future__ import annotations

__all__ = [
    "SchedulingError",
    "InvalidChainError",
    "InvalidPlatformError",
    "InvalidParameterError",
    "InfeasibleScheduleError",
    "UnknownStrategyError",
    "CertificationError",
]


class SchedulingError(Exception):
    """Base class for all scheduling-related errors."""


class InvalidChainError(SchedulingError, ValueError):
    """The task chain description is malformed (empty, negative weights...)."""


class InvalidPlatformError(SchedulingError, ValueError):
    """The platform description is malformed (no cores, negative counts...)."""


class InvalidParameterError(SchedulingError, ValueError):
    """A scalar argument is out of its domain (non-positive period,
    non-positive epsilon, negative power draw...)."""


class InfeasibleScheduleError(SchedulingError):
    """No valid schedule exists for the requested chain/platform/period.

    This should not happen for the strategies of the paper when at least one
    core is available (a whole-chain single stage on one core is always a
    fallback), so seeing this exception generally indicates an internal
    inconsistency or an explicitly constrained call (e.g. a fixed target
    period that is too small).
    """


class UnknownStrategyError(SchedulingError, KeyError):
    """A strategy name is not in the registry (see ``repro.core.registry``)."""


class CertificationError(SchedulingError):
    """A solution failed its independent certificate audit.

    Raised by :mod:`repro.core.certify` when the re-derived stage weights,
    period, validity, or core accounting of a solution contradict what the
    solver claimed — i.e. the solver (or the surrounding pipeline) is wrong,
    not the input.  The exception message lists every violated certificate.
    """
