"""Exception hierarchy for the scheduling core.

All library-specific failures derive from :class:`SchedulingError` so callers
can catch one type.  Input validation failures raise the more specific
subclasses below (which also derive from :class:`ValueError` so that sloppy
callers using ``except ValueError`` still work).
"""

from __future__ import annotations

__all__ = [
    "SchedulingError",
    "InvalidChainError",
    "InvalidPlatformError",
    "InfeasibleScheduleError",
]


class SchedulingError(Exception):
    """Base class for all scheduling-related errors."""


class InvalidChainError(SchedulingError, ValueError):
    """The task chain description is malformed (empty, negative weights...)."""


class InvalidPlatformError(SchedulingError, ValueError):
    """The platform description is malformed (no cores, negative counts...)."""


class InfeasibleScheduleError(SchedulingError):
    """No valid schedule exists for the requested chain/platform/period.

    This should not happen for the strategies of the paper when at least one
    core is available (a whole-chain single stage on one core is always a
    fallback), so seeing this exception generally indicates an internal
    inconsistency or an explicitly constrained call (e.g. a fixed target
    period that is too small).
    """
