"""Stage-merging post-pass.

HeRAD's extraction can produce consecutive replicable stages mapped to the
same core type.  The paper adds an extra step merging them: by the mediant
inequality, ``(W1 + W2) / (r1 + r2) <= max(W1 / r1, W2 / r2)``, so the merge
never increases the period while shortening the pipeline (fewer
synchronization points at runtime).  On homogeneous resources merging
consecutive replicated stages is *always* beneficial [Benoit & Robert 2010];
on two types of resources it only applies when the core types match, which
is why StreamPU needed the v1.6.0 extension connecting replicated stages of
different types.
"""

from __future__ import annotations

from .chain_stats import ChainProfile, profile_of
from .solution import Solution
from .stage import Stage
from .task import TaskChain

__all__ = ["merge_replicable_stages"]


def merge_replicable_stages(
    solution: Solution, chain: "TaskChain | ChainProfile"
) -> Solution:
    """Merge consecutive replicable stages that share a core type.

    Args:
        solution: the schedule to compact.
        chain: the scheduled chain (or its profile), needed to evaluate
            replicability.

    Returns:
        A new solution whose period is less than or equal to the input's.
    """
    profile = profile_of(chain)
    if solution.is_empty:
        return solution

    merged: list[Stage] = []
    for stage in solution:
        if (
            merged
            and int(merged[-1].core_type) == int(stage.core_type)
            and profile.is_replicable(merged[-1].start, stage.end)
        ):
            last = merged.pop()
            merged.append(
                Stage(
                    last.start,
                    stage.end,
                    last.cores + stage.cores,
                    stage.core_type,
                )
            )
        else:
            merged.append(stage)
    return Solution(merged)
