"""Warm-started incremental scheduling.

The online simulator (:mod:`repro.sim`) reschedules every active chain on
each platform or workload change.  Cold solves (a full binary-search run per
chain) are the expensive rung of its degradation ladder; this module
provides the cheap rung: *reuse the previous solution's stage partition and
replication structure* and merely re-fit the core assignment to the new
budget and weights.

:func:`warm_start` keeps the interval decomposition ``[start, end]`` of every
stage fixed and re-derives ``(cores, core_type)`` deterministically:

1. every stage is granted one core, preferring its previous core type and
   falling back to the cheapest type with remaining budget when the previous
   type is exhausted (or no longer exists on the shrunken platform);
2. surplus cores are water-filled onto the current *bottleneck* stage while
   it is replicable and its type has slack — the same greedy argument behind
   the paper's replication step, restricted to the frozen partition.

The result is a feasible :class:`~repro.core.binary_search.ScheduleOutcome`
(``iterations=0`` — no binary-search probes were spent) or ``None`` when the
frozen partition cannot fit the new budget at all (fewer cores than stages,
or the chain length changed); the caller is expected to fall through to a
full re-solve.  Warm-started outcomes carry fresh analytic
:func:`~repro.core.bounds.period_bounds`, so callers can reject any warm
period exceeding the proven feasibility upper bound of a cold solve and
degrade instead — that gate is what keeps the fast path honest.
"""

from __future__ import annotations

from .binary_search import ScheduleOutcome
from .bounds import period_bounds
from .chain_stats import ChainProfile, profile_of
from .solution import Solution
from .stage import Stage
from .task import TaskChain
from .types import Resources

__all__ = ["warm_start"]


def warm_start(
    previous: ScheduleOutcome,
    chain: "TaskChain | ChainProfile",
    resources: Resources,
) -> "ScheduleOutcome | None":
    """Re-fit a previous outcome's stage structure to a new instance.

    Args:
        previous: the outcome whose stage partition is reused.
        chain: the (possibly re-weighted) chain to schedule.
        resources: the new platform budget.

    Returns:
        A valid outcome sharing ``previous``'s interval partition, or
        ``None`` when the partition cannot fit (empty previous solution,
        changed chain length, empty budget, or fewer cores than stages).
    """
    profile = profile_of(chain)
    old = previous.solution
    if old.is_empty or not old.covers(profile) or resources.total <= 0:
        return None
    if len(old.stages) > resources.total:
        return None

    ktype = resources.ktype
    remaining = [resources.count(v) for v in range(ktype)]

    # Phase 1: one core per stage, previous type first, cheapest fallback.
    assigned: list[tuple[int, int, int]] = []  # (start, end, core_type)
    for stage in old.stages:
        previous_type = int(stage.core_type)
        if previous_type < ktype and remaining[previous_type] > 0:
            chosen = previous_type
        else:
            chosen = -1
            chosen_weight = float("inf")
            for v in range(ktype):
                if remaining[v] <= 0:
                    continue
                weight = profile.interval_weight(stage.start, stage.end, v)
                if weight < chosen_weight:
                    chosen, chosen_weight = v, weight
            if chosen < 0:
                return None
        remaining[chosen] -= 1
        assigned.append((stage.start, stage.end, chosen))

    # Phase 2: water-fill surplus cores onto the bottleneck stage while it
    # is replicable and its type has slack.  Each grant strictly consumes
    # one core, so the loop runs at most ``resources.total`` times.
    cores = [1] * len(assigned)
    while True:
        bottleneck = -1
        bottleneck_weight = -1.0
        for index, (start, end, core_type) in enumerate(assigned):
            weight = profile.stage_weight(start, end, cores[index], core_type)
            if weight > bottleneck_weight:
                bottleneck, bottleneck_weight = index, weight
        start, end, core_type = assigned[bottleneck]
        if remaining[core_type] <= 0 or not profile.is_replicable(start, end):
            break
        remaining[core_type] -= 1
        cores[bottleneck] += 1

    solution = Solution(
        Stage(start, end, cores[index], core_type)
        for index, (start, end, core_type) in enumerate(assigned)
    )
    if not solution.is_valid(profile, resources):
        return None
    return ScheduleOutcome(
        solution=solution,
        period=solution.period(profile),
        iterations=0,
        bounds=period_bounds(profile, resources),
        probes=(),
    )
