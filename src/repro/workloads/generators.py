"""Additional structured chain generators (beyond the paper's distribution).

These are used by the property-based tests and the ablation studies to probe
strategy behaviour on extreme shapes: fully-replicable chains (where the
homogeneous optimum is a single replicated stage), fully-sequential chains
(pure pipelining, the CCP regime), heavy-tailed weights (one dominant task),
and chains where little cores are *faster* than big ones (stress for the
generalized period bounds).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.errors import InvalidChainError
from ..core.task import Task, TaskChain

__all__ = [
    "fully_replicable_chain",
    "fully_sequential_chain",
    "alternating_chain",
    "heavy_tail_chain",
    "inverted_speed_chain",
    "uniform_chain",
]


def _build(
    weights_big: Sequence[float],
    weights_little: Sequence[float],
    replicable: Sequence[bool],
    name: str,
) -> TaskChain:
    return TaskChain(
        tuple(
            Task(f"tau_{i + 1}", float(wb), float(wl), bool(r))
            for i, (wb, wl, r) in enumerate(
                zip(weights_big, weights_little, replicable)
            )
        ),
        name=name,
    )


def uniform_chain(
    n: int, weight: float = 10.0, slowdown: float = 2.0, stateless_ratio: float = 1.0
) -> TaskChain:
    """A chain of identical tasks; the first ``round((1-SR)*n)`` are sequential."""
    if n < 1:
        raise InvalidChainError("n must be >= 1")
    num_seq = n - round(stateless_ratio * n)
    rep = [i >= num_seq for i in range(n)]
    return _build(
        [weight] * n, [weight * slowdown] * n, rep, name=f"uniform-{n}"
    )


def fully_replicable_chain(
    n: int, weight_big: float = 10.0, slowdown: float = 2.0
) -> TaskChain:
    """All tasks stateless: the homogeneous optimum is one replicated stage."""
    return uniform_chain(n, weight_big, slowdown, stateless_ratio=1.0)


def fully_sequential_chain(
    n: int, weight_big: float = 10.0, slowdown: float = 2.0
) -> TaskChain:
    """All tasks stateful: pure pipelined parallelism (the CCP regime)."""
    return uniform_chain(n, weight_big, slowdown, stateless_ratio=0.0)


def alternating_chain(n: int, slowdown: float = 3.0) -> TaskChain:
    """Alternating replicable/sequential tasks with ramping weights."""
    if n < 1:
        raise InvalidChainError("n must be >= 1")
    wb = [float(1 + (i % 7)) for i in range(n)]
    wl = [w * slowdown for w in wb]
    rep = [i % 2 == 0 for i in range(n)]
    return _build(wb, wl, rep, name=f"alternating-{n}")


def heavy_tail_chain(
    n: int, heavy_index: int | None = None, factor: float = 50.0
) -> TaskChain:
    """One replicable task dominates the chain (like DVB-S2's BCH decoder)."""
    if n < 1:
        raise InvalidChainError("n must be >= 1")
    idx = (n - 1) if heavy_index is None else heavy_index
    if not (0 <= idx < n):
        raise InvalidChainError(f"heavy_index {idx} out of range for n={n}")
    wb = [1.0] * n
    wb[idx] = factor
    wl = [w * 2.0 for w in wb]
    rep = [True] * n
    if n > 1:
        rep[0] = False  # keep one sequential task, like real SDR sources
    return _build(wb, wl, rep, name=f"heavy-tail-{n}")


def inverted_speed_chain(n: int, seed: int = 7) -> TaskChain:
    """Little cores are *faster* than big ones for every task.

    Violates the paper's footnote-1 assumption on purpose; used to test the
    generalized period bounds.
    """
    if n < 1:
        raise InvalidChainError("n must be >= 1")
    rng = np.random.default_rng(seed)
    wl = rng.integers(1, 50, size=n).astype(float)
    wb = np.ceil(wl * rng.uniform(1.5, 4.0, size=n))
    rep = rng.random(n) < 0.5
    if not rep.any():
        rep[n // 2] = True
    return _build(wb, wl, rep.tolist(), name=f"inverted-{n}")
