"""Synthetic task-chain generators — the paper's simulation workload.

Section VI-A-1: *"1000 task chains of 20 tasks were generated.  Task weights
were randomly set in the integer interval [1, 100] uniformly for big cores
with a slowdown in the interval [1, 5] for little cores (rounded using the
ceiling function).  The stateless ratio (SR) of each chain was set equal to
{0.2, 0.5, 0.8} for different scenarios."*

:func:`random_chain` reproduces exactly that distribution;
:func:`chain_batch` produces seeded campaigns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..core.errors import InvalidChainError
from ..core.task import Task, TaskChain

__all__ = [
    "GeneratorConfig",
    "random_chain",
    "chain_batch",
    "random_ktype_chain",
    "ktype_chain_batch",
    "DEFAULT_CONFIG",
]


@dataclass(frozen=True, slots=True)
class GeneratorConfig:
    """Parameters of the random-chain distribution.

    Attributes:
        num_tasks: chain length ``n`` (paper: 20).
        weight_low: inclusive lower bound of the big-core integer weights.
        weight_high: inclusive upper bound of the big-core integer weights.
        slowdown_low: lower bound of the uniform little-core slowdown.
        slowdown_high: upper bound of the uniform little-core slowdown.
        stateless_ratio: fraction ``SR`` of replicable tasks; the generator
            places exactly ``round(SR * n)`` replicable tasks at uniformly
            random positions.
    """

    num_tasks: int = 20
    weight_low: int = 1
    weight_high: int = 100
    slowdown_low: float = 1.0
    slowdown_high: float = 5.0
    stateless_ratio: float = 0.5

    def __post_init__(self) -> None:
        if self.num_tasks < 1:
            raise InvalidChainError("num_tasks must be >= 1")
        if not (1 <= self.weight_low <= self.weight_high):
            raise InvalidChainError(
                f"invalid weight interval [{self.weight_low}, {self.weight_high}]"
            )
        if not (1.0 <= self.slowdown_low <= self.slowdown_high):
            raise InvalidChainError(
                f"invalid slowdown interval "
                f"[{self.slowdown_low}, {self.slowdown_high}]"
            )
        if not (0.0 <= self.stateless_ratio <= 1.0):
            raise InvalidChainError(
                f"stateless_ratio must be in [0, 1], got {self.stateless_ratio}"
            )

    @property
    def num_replicable(self) -> int:
        """Number of replicable tasks placed in each generated chain."""
        return round(self.stateless_ratio * self.num_tasks)


#: The paper's exact simulation distribution (SR must be set per scenario).
DEFAULT_CONFIG = GeneratorConfig()


def random_chain(
    rng: np.random.Generator,
    config: GeneratorConfig = DEFAULT_CONFIG,
    name: str | None = None,
) -> TaskChain:
    """Draw one task chain from the paper's distribution.

    Args:
        rng: NumPy random generator (pass a seeded one for reproducibility).
        config: distribution parameters.
        name: optional chain label.

    Returns:
        A :class:`TaskChain` with integer big-core weights, little-core
        weights ``ceil(w_B * slowdown)``, and exactly
        ``round(SR * n)`` replicable tasks.
    """
    n = config.num_tasks
    weights_big = rng.integers(
        config.weight_low, config.weight_high, size=n, endpoint=True
    ).astype(np.float64)
    slowdowns = rng.uniform(config.slowdown_low, config.slowdown_high, size=n)
    weights_little = np.ceil(weights_big * slowdowns)

    replicable = np.zeros(n, dtype=bool)
    chosen = rng.choice(n, size=config.num_replicable, replace=False)
    replicable[chosen] = True

    tasks = tuple(
        Task(
            name=f"tau_{i + 1}",
            weight_big=float(weights_big[i]),
            weight_little=float(weights_little[i]),
            replicable=bool(replicable[i]),
        )
        for i in range(n)
    )
    return TaskChain(tasks, name=name or f"synthetic-n{n}-sr{config.stateless_ratio}")


def random_ktype_chain(
    rng: np.random.Generator,
    config: GeneratorConfig = DEFAULT_CONFIG,
    ktype: int = 2,
    name: str | None = None,
) -> TaskChain:
    """Draw one task chain with ``ktype`` per-type weights.

    The natural k-type extension of the paper's distribution: integer
    weights for the most performant class, then one independent slowdown
    column per remaining class drawn from the same
    ``[slowdown_low, slowdown_high]`` interval and rounded with the ceiling
    function.  The random stream is consumed in exactly the order of
    :func:`random_chain` (performant weights, slowdown columns in class
    order, replicable positions), so at ``ktype == 2`` the drawn chain is
    bitwise identical to ``random_chain(rng, config, name)``.
    """
    if ktype < 2:
        raise InvalidChainError(f"ktype must be >= 2, got {ktype}")
    n = config.num_tasks
    weights_big = rng.integers(
        config.weight_low, config.weight_high, size=n, endpoint=True
    ).astype(np.float64)
    columns = [weights_big]
    for _ in range(ktype - 1):
        slowdowns = rng.uniform(
            config.slowdown_low, config.slowdown_high, size=n
        )
        columns.append(np.ceil(weights_big * slowdowns))

    replicable = np.zeros(n, dtype=bool)
    chosen = rng.choice(n, size=config.num_replicable, replace=False)
    replicable[chosen] = True

    tasks = tuple(
        Task(
            name=f"tau_{i + 1}",
            weight_big=float(columns[0][i]),
            weight_little=float(columns[1][i]),
            replicable=bool(replicable[i]),
            extra_weights=tuple(
                float(columns[v][i]) for v in range(2, ktype)
            ),
        )
        for i in range(n)
    )
    return TaskChain(
        tasks,
        name=name or f"synthetic-k{ktype}-n{n}-sr{config.stateless_ratio}",
    )


def ktype_chain_batch(
    count: int,
    config: GeneratorConfig = DEFAULT_CONFIG,
    ktype: int = 2,
    seed: int = 0,
) -> Iterator[TaskChain]:
    """Yield ``count`` k-type chains from a deterministic seeded stream.

    At ``ktype == 2`` each chain's weights match :func:`chain_batch` with the
    same ``(count, config, seed)`` (the chain names differ, so fingerprints —
    which hash content only — agree while labels advertise the class count).
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    rng = np.random.default_rng(seed)
    for index in range(count):
        yield random_ktype_chain(
            rng, config, ktype, name=f"chain-k{ktype}-{seed}-{index}"
        )


def chain_batch(
    count: int,
    config: GeneratorConfig = DEFAULT_CONFIG,
    seed: int = 0,
) -> Iterator[TaskChain]:
    """Yield ``count`` chains from a deterministic seeded stream.

    Args:
        count: number of chains (paper campaigns use 1000).
        config: distribution parameters.
        seed: base seed; chains are drawn from one generator sequentially,
            so ``(seed, config, count)`` fully determines the batch.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    rng = np.random.default_rng(seed)
    for index in range(count):
        yield random_chain(rng, config, name=f"chain-{seed}-{index}")
