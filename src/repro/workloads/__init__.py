"""Workload generation: the paper's synthetic distribution and extra shapes."""

from .generators import (
    alternating_chain,
    fully_replicable_chain,
    fully_sequential_chain,
    heavy_tail_chain,
    inverted_speed_chain,
    uniform_chain,
)
from .synthetic import (
    DEFAULT_CONFIG,
    GeneratorConfig,
    chain_batch,
    ktype_chain_batch,
    random_chain,
    random_ktype_chain,
)

__all__ = [
    "GeneratorConfig",
    "DEFAULT_CONFIG",
    "random_chain",
    "chain_batch",
    "random_ktype_chain",
    "ktype_chain_batch",
    "uniform_chain",
    "fully_replicable_chain",
    "fully_sequential_chain",
    "alternating_chain",
    "heavy_tail_chain",
    "inverted_speed_chain",
]
