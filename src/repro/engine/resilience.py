"""Failure recovery for campaign execution: retries, timeouts, quarantine.

The campaign protocol (Table I and the figure sweeps) is a long
embarrassingly-parallel run; without this module, one crashed worker, one
pathological instance that wedges a solver, or one unpicklable object aborts
the whole campaign and discards every finished result.  This module makes the
fan-out *resilient*:

* **Retry with deterministic backoff** — transient failures (a broken process
  pool, pickling/IPC errors, injected faults, a failed certificate audit that
  may stem from worker memory corruption) are retried up to
  :attr:`RetryPolicy.max_attempts` times per tier, with exponential backoff
  and *seeded* jitter (hash-derived, never ``random``: the engine's
  determinism lint forbids entropy in solver paths).
* **Soft deadlines** — on pooled tiers each dispatch round gets a deadline
  derived from :attr:`ResilienceConfig.timeout`; units still running are
  abandoned (their pool is shut down without waiting) and retried.  The
  serial tier cannot preempt a running solve — deadlines are a pooled-tier
  guarantee.
* **Graceful degradation** — a work unit that keeps failing on the process
  tier is re-run on the thread tier, and finally instance-by-instance on the
  serial tier, where failures are isolated to single ``(chain, strategy)``
  cells.
* **Quarantine** — an instance that still fails serially is recorded as a
  structured :class:`FailureRecord` and the campaign continues; its result
  cells keep the engine's sentinel values (``NaN`` period, ``-1`` cores).

Classification is the heart of the policy: :func:`is_transient` separates
environment failures (worth retrying) from deterministic solver errors
(retrying re-executes the same pure function on the same input — useless, so
they go straight to quarantine).  ``KeyboardInterrupt`` and other
``BaseException`` escalations are *never* absorbed: completed batches are
flushed first, then the interrupt propagates so journals keep every finished
chunk.

This module is the project's single sanctioned broad-catch site: lint rule
REP109 forbids bare ``except:`` / ``except BaseException`` everywhere else.
"""

from __future__ import annotations

import hashlib
import logging
import pickle
import time
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    TimeoutError as FuturesTimeoutError,
    wait,
)
from dataclasses import dataclass, field, replace
from typing import Generator, Iterator, Sequence

from ..core.chain_stats import ChainProfile
from ..core.errors import CertificationError, InvalidParameterError
from ..obs.context import activate
from .batch import UnitOutcome, UnitResult, WorkUnit, solve_instance, solve_unit
from .faults import InjectedFault
from .memo import InstanceResult
from .shm import ResultPlanes

_log = logging.getLogger(__name__)

__all__ = [
    "TIERS",
    "RetryPolicy",
    "ResilienceConfig",
    "FailureRecord",
    "ResilienceReport",
    "is_transient",
    "execute_with_resilience",
]

#: Degradation ladder, most parallel first.
TIERS: tuple[str, ...] = ("process", "thread", "serial")

#: Executor class per pooled tier (tests may patch in recording doubles).
_POOL_CLASSES: dict[str, type[Executor]] = {
    "process": ProcessPoolExecutor,
    "thread": ThreadPoolExecutor,
}

#: Failure types worth retrying: environment/IPC trouble, injected transients,
#: and certificate rejections (a corrupt *claim* may come from a sick worker —
#: re-deriving on a clean tier either recovers or quarantines with evidence).
_TRANSIENT_TYPES: tuple[type[BaseException], ...] = (
    BrokenExecutor,
    FuturesTimeoutError,
    TimeoutError,
    pickle.PicklingError,
    pickle.UnpicklingError,
    EOFError,
    ConnectionError,
    InjectedFault,
    CertificationError,
)


def is_transient(exc: BaseException) -> bool:
    """Whether a failure is worth retrying (vs a deterministic solver error).

    Deterministic errors — ``InvalidChainError``, ``InfeasibleScheduleError``,
    and friends — re-raise identically on every attempt because strategies are
    pure functions of their input, so they skip the retry budget entirely.
    """
    return isinstance(exc, _TRANSIENT_TYPES)


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Per-work-unit retry budget with deterministic exponential backoff.

    Attributes:
        max_attempts: attempts per tier (1 = no retries).
        base_delay: backoff before the first retry, in seconds; doubles per
            subsequent retry.
        max_delay: backoff ceiling, in seconds.
        jitter: fraction of each delay that is jittered (0 disables; 0.5
            keeps delays in ``[0.5 d, d)``).  Jitter is derived from
            ``seed`` and the retry token via SHA-256 — bitwise reproducible,
            no global RNG.
        seed: jitter seed.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise InvalidParameterError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise InvalidParameterError(
                "backoff delays must be >= 0, got "
                f"base={self.base_delay}, max={self.max_delay}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise InvalidParameterError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )

    def delay(self, retry: int, token: str = "") -> float:
        """Backoff before the ``retry``-th retry (0-based), in seconds."""
        raw = min(self.max_delay, self.base_delay * (2.0**retry))
        if raw <= 0 or self.jitter == 0:
            return raw
        digest = hashlib.sha256(
            f"{self.seed}:{token}:{retry}".encode()
        ).digest()
        unit = int.from_bytes(digest[:8], "big") / 2.0**64
        return raw * (1.0 - self.jitter + self.jitter * unit)


@dataclass(frozen=True, slots=True)
class ResilienceConfig:
    """Knobs of the recovery machinery.

    Attributes:
        retry: the per-tier retry budget and backoff schedule.
        timeout: soft deadline in seconds for one work unit on a pooled tier
            (``None`` disables).  Each dispatch round waits
            ``timeout * ceil(units / workers)`` so queued units are not
            charged for time spent waiting behind others.
        degrade: walk the process → thread → serial ladder before
            quarantining (``False`` jumps from the starting tier straight to
            the serial isolation pass).
    """

    retry: RetryPolicy = field(default=RetryPolicy())
    timeout: "float | None" = None
    degrade: bool = True

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise InvalidParameterError(
                f"timeout must be > 0 seconds, got {self.timeout}"
            )


@dataclass(frozen=True, slots=True)
class FailureRecord:
    """One quarantined ``(chain, strategy)`` instance.

    Attributes:
        index: the chain's row in its campaign arrays (those cells keep the
            sentinel values: ``NaN`` period, ``-1`` core counts).
        fingerprint: the chain's content fingerprint (replayable identity).
        strategy: canonical strategy name of the failed solve.
        error_type: class name of the final exception.
        message: its message.
        attempts: total solve attempts across every tier.
        tier: the tier the instance was quarantined on (always ``serial`` —
            quarantine is the ladder's last rung).
    """

    index: int
    fingerprint: str
    strategy: str
    error_type: str
    message: str
    attempts: int
    tier: str


@dataclass(slots=True)
class ResilienceReport:
    """Counters and quarantine records of one campaign execution.

    Attributes:
        retries: transient failures that were retried.
        timeouts: work-unit attempts abandoned at the soft deadline.
        degradations: tier switches taken with unfinished work.
        quarantined: instances that exhausted every recovery path.
        failures: one :class:`FailureRecord` per quarantined instance.
    """

    retries: int = 0
    timeouts: int = 0
    degradations: int = 0
    quarantined: int = 0
    failures: list[FailureRecord] = field(default_factory=list)


@dataclass(slots=True)
class _Tracked:
    """Mutable per-unit retry bookkeeping threaded through the ladder."""

    unit: WorkUnit
    attempts: int = 0
    deterministic: bool = False


def execute_with_resilience(
    units: "Sequence[WorkUnit]",
    jobs: int,
    config: ResilienceConfig,
    report: ResilienceReport,
    planes: "ResultPlanes | None" = None,
) -> Iterator[UnitOutcome]:
    """Run work units through the retry/degradation/quarantine ladder.

    Yields completed :class:`~repro.engine.batch.UnitOutcome` batches as
    they finish (order is arbitrary; rows are index-keyed, so assembly stays
    bitwise deterministic).  Quarantined instances appear in ``report`` and
    are simply absent from the yielded rows.

    ``planes`` is the campaign's shared-memory result transport, owned by
    the caller but *retired here* the moment execution degrades below the
    process tier: descriptors are stripped from the remaining units and the
    segments unlinked, so thread/serial reruns ship rows inline and a
    degraded campaign can never leak ``/dev/shm`` segments.  This is safe
    mid-stream because outcomes are harvested by the caller as they are
    yielded — by the time a pass ends, every plane-published outcome has
    already been read back.
    """
    tracked = [_Tracked(unit=unit) for unit in units]
    start = units[0].tier if units else "serial"
    if start not in TIERS:
        raise InvalidParameterError(f"unknown execution tier {start!r}")
    pooled = [t for t in TIERS[TIERS.index(start) :] if t != "serial"]
    if not config.degrade:
        pooled = pooled[:1]

    for tier in pooled:
        if tier != "process" and planes is not None:
            planes = _retire_planes(tracked, planes)
        runnable = [t for t in tracked if not t.deterministic]
        held = [t for t in tracked if t.deterministic]
        if not runnable:
            break
        leftovers = yield from _pooled_pass(tier, runnable, jobs, config, report)
        tracked = held + leftovers
        if tracked:
            report.degradations += 1
            _log.info(
                "degrading %d work unit(s) below the %s tier", len(tracked), tier
            )
    if tracked:
        if planes is not None:
            planes = _retire_planes(tracked, planes)
        yield from _serial_pass(tracked, config, report)


def _retire_planes(
    tracked: "list[_Tracked]", planes: ResultPlanes
) -> None:
    """Strip plane descriptors from units and unlink the segments.

    Called when execution leaves the process tier: thread and serial
    workers share the engine's address space, so inline rows cost nothing,
    and keeping segments alive across a degradation would leave them
    unreachable if the campaign later aborts.  Retried units republish
    nothing — their descriptors are gone — so the pickled-rows fallback in
    :func:`~repro.engine.batch.solve_unit` takes over transparently.
    """
    for t in tracked:
        if t.unit.planes is not None:
            t.unit = replace(t.unit, planes=None)
    planes.destroy()
    return None


def _pooled_pass(
    tier: str,
    tracked: "list[_Tracked]",
    jobs: int,
    config: ResilienceConfig,
    report: ResilienceReport,
) -> "Generator[UnitOutcome, None, list[_Tracked]]":
    """One tier of pooled attempts; returns the units that still fail."""
    pool_cls = _POOL_CLASSES[tier]
    policy = config.retry
    pending = list(tracked)
    for t in pending:
        t.unit = replace(t.unit, tier=tier)
    held: list[_Tracked] = []

    for attempt in range(policy.max_attempts):
        if not pending:
            break
        if attempt:
            time.sleep(policy.delay(attempt - 1, token=tier))
        workers = max(1, min(jobs, len(pending)))
        pool = pool_cls(max_workers=workers)
        clean = False
        retry_round: list[_Tracked] = []
        try:
            futures: list[tuple[Future[UnitOutcome], _Tracked]] = [
                (pool.submit(solve_unit, t.unit), t) for t in pending
            ]
            deadline = None
            if config.timeout is not None:
                rounds = -(-len(pending) // workers)
                deadline = config.timeout * rounds
            done, not_done = wait([f for f, _ in futures], timeout=deadline)

            # Flush every completed batch before touching any failure, so an
            # escalating BaseException (Ctrl-C in a worker) cannot discard
            # finished — and journal-committable — chunks.
            escalation: "BaseException | None" = None
            for future, t in futures:
                if future in not_done:
                    future.cancel()
                    t.attempts += 1
                    report.timeouts += 1
                    report.retries += 1
                    retry_round.append(t)
                    _log.debug(
                        "unit timed out on %s tier (attempt %d); retrying",
                        tier,
                        t.attempts,
                    )
                    continue
                exc = future.exception()
                if exc is None:
                    yield future.result()
                elif isinstance(exc, Exception):
                    t.attempts += 1
                    if is_transient(exc):
                        report.retries += 1
                        retry_round.append(t)
                        _log.debug(
                            "transient %s on %s tier (attempt %d); retrying",
                            type(exc).__name__,
                            tier,
                            t.attempts,
                        )
                    else:
                        t.deterministic = True
                        held.append(t)
                elif escalation is None:
                    escalation = exc
            if escalation is not None:
                raise escalation
            clean = not not_done
        finally:
            # A dirty round may hold hung or dead workers: don't block on
            # them, and cancel whatever never started.
            pool.shutdown(wait=clean, cancel_futures=not clean)
        pending = retry_round
    return held + pending


def _serial_pass(
    tracked: "list[_Tracked]",
    config: ResilienceConfig,
    report: ResilienceReport,
) -> Iterator[UnitOutcome]:
    """Last rung: solve instance-by-instance, quarantining what still fails.

    Observability mirrors :func:`~repro.engine.batch.solve_unit`: each unit
    gets its own local context (activated for the duration, so the ambient
    hooks inside the solvers record into it) and ships its payload home in
    the yielded outcome — the exact protocol of the pooled tiers, which is
    what makes counter aggregation tier-independent.
    """
    for t in tracked:
        unit = replace(t.unit, tier="serial")
        cfg = unit.obs
        if cfg is not None and cfg.enabled:
            context = cfg.create_context()
            with activate(context):
                with context.span(
                    "unit", "engine", tier="serial", instances=len(unit.pending)
                ):
                    rows = _solve_serially(unit, t, config, report)
            yield UnitOutcome(rows=rows, obs=context.payload())
        else:
            yield UnitOutcome(rows=_solve_serially(unit, t, config, report))


def _solve_serially(
    unit: WorkUnit,
    t: _Tracked,
    config: ResilienceConfig,
    report: ResilienceReport,
) -> UnitResult:
    """Solve one unit instance-by-instance with per-cell retry/quarantine."""
    policy = config.retry
    rows: UnitResult = []
    for item in unit.pending:
        profile = ChainProfile(item.chain)
        results: dict[str, InstanceResult] = {}
        for name in item.strategies:
            solved: "InstanceResult | None" = None
            failure: "Exception | None" = None
            attempts = 0
            for attempt in range(policy.max_attempts):
                if attempt:
                    time.sleep(
                        policy.delay(
                            attempt - 1, token=f"serial:{item.index}:{name}"
                        )
                    )
                attempts += 1
                try:
                    solved = solve_instance(
                        profile,
                        unit.resources,
                        (name,),
                        certify=unit.certify,
                        faults=unit.faults,
                        tier="serial",
                    )[name]
                    break
                except Exception as exc:
                    failure = exc
                    if not is_transient(exc):
                        break
                    report.retries += 1
                    _log.debug(
                        "transient %s for chain %d / %s on serial tier "
                        "(attempt %d); retrying",
                        type(exc).__name__,
                        item.index,
                        name,
                        attempts,
                    )
            if solved is not None:
                results[name] = solved
            else:
                assert failure is not None
                report.quarantined += 1
                report.failures.append(
                    FailureRecord(
                        index=item.index,
                        fingerprint=profile.fingerprint,
                        strategy=name,
                        error_type=type(failure).__name__,
                        message=str(failure),
                        attempts=t.attempts + attempts,
                        tier="serial",
                    )
                )
                _log.warning(
                    "quarantined chain %d / %s after %d attempt(s): %s: %s",
                    item.index,
                    name,
                    t.attempts + attempts,
                    type(failure).__name__,
                    failure,
                )
        rows.append((item.index, results))
    return rows
