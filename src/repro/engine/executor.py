"""The campaign execution engine: pluggable fan-out + memoized solves.

The paper's evaluation protocol is embarrassingly parallel — every
``(chain, budget, strategy)`` instance is independent — yet the original
driver solved them in one Python loop.  :class:`CampaignEngine` fans the
instances out over an execution *backend*:

* ``serial`` — in-process loop (also the ``jobs=1`` fast path: zero
  executor overhead);
* ``thread`` — ``ThreadPoolExecutor``; useful when solves release the GIL
  or for IO-adjacent workloads, cheap to spin up;
* ``process`` — ``ProcessPoolExecutor`` with chunked work units; the tier
  that actually scales CPU-bound pure-Python solves across cores.

Backends receive :class:`~repro.engine.batch.WorkUnit` chunks and return
index-keyed rows, so assembly is order-independent and the engine's output
is **bitwise identical for every backend and every job count** — a
regression-tested guarantee (``tests/engine/test_engine.py``).

A :class:`~repro.engine.memo.MemoCache` sits in front of the fan-out:
instances whose ``(chain fingerprint, budget, strategy)`` key was already
solved are replayed from cache without touching the backend.  The default
process-wide engine shares one cache, which makes figure drivers that
re-run the Table I campaign (Fig. 1, ablations, ``repro all``) nearly free
after the first pass.

Two optional layers harden long campaigns (DESIGN.md §9):

* **Resilience** (``resilience=``): transient failures — broken process
  pools, pickling/IPC errors, soft-deadline timeouts, injected faults — are
  retried with deterministic backoff, degraded down the
  process → thread → serial ladder, and instances that still fail are
  *quarantined* as :class:`~repro.engine.resilience.FailureRecord` rows
  (their array cells keep NaN/-1 sentinels) instead of aborting the run.
* **Checkpointing** (``journal=``): every solved instance is appended to a
  crash-safe JSONL journal (fsync'd per work unit); re-running with the same
  journal replays finished instances through the memo cache and solves only
  the remainder, bitwise identically.
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import replace
from pathlib import Path
from typing import Iterable, Iterator, NamedTuple, Sequence

import numpy as np

from ..core.chain_stats import ChainProfile, profile_of
from ..core.errors import InvalidParameterError
from ..core.registry import get_info
from ..core.task import TaskChain
from ..core.types import Resources
from ..obs.clock import monotonic
from ..obs.context import NULL_OBSERVABILITY, Observability, ObsConfig, activate
from .batch import (
    PendingInstance,
    UnitOutcome,
    WorkUnit,
    solve_unit,
    units_from_groups,
)
from .checkpoint import CheckpointJournal
from .faults import FaultPlan
from .memo import InstanceResult, MemoCache, MemoKey, make_key
from .plan import DEFAULT_UNIT_WALL_S, AdaptiveCostModel, plan_units
from .resilience import (
    FailureRecord,
    ResilienceConfig,
    ResilienceReport,
    execute_with_resilience,
)
from .shm import ResultPlanes

__all__ = [
    "BACKENDS",
    "KERNELS",
    "resolve_jobs",
    "StrategyArrays",
    "CampaignEngine",
    "default_engine",
    "reset_default_engine",
]

#: Recognized backend names (``auto`` picks serial for 1 job, else process).
BACKENDS: tuple[str, ...] = ("auto", "serial", "thread", "process")

#: Recognized solver kernels: ``python`` solves cell by cell through the
#: scalar strategy functions; ``batch`` groups each work unit by strategy
#: and solves the groups through the vectorized kernels
#: (:mod:`repro.core.kernels`) — bitwise-identical results, amortized
#: dispatch.
KERNELS: tuple[str, ...] = ("python", "batch")


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: ``None`` means all available cores."""
    if jobs is None:
        return os.cpu_count() or 1
    if jobs < 1:
        raise InvalidParameterError(f"jobs must be >= 1, got {jobs}")
    return jobs


class StrategyArrays(NamedTuple):
    """Per-strategy campaign outcome columns (one row per chain)."""

    periods: np.ndarray
    big_used: np.ndarray
    little_used: np.ndarray


def _pool_factory(backend: str, jobs: int) -> "type[Executor] | None":
    """Map a backend name + job count to an executor class (None = serial)."""
    if backend not in BACKENDS:
        raise InvalidParameterError(
            f"unknown backend {backend!r}; available: {BACKENDS}"
        )
    if jobs <= 1 or backend == "serial":
        return None
    if backend == "thread":
        return ThreadPoolExecutor
    return ProcessPoolExecutor  # "process" and "auto" with jobs > 1


class CampaignEngine:
    """Executes campaigns of scheduling instances with fan-out + memoization.

    Args:
        jobs: default worker count (``None``: ``os.cpu_count()``).  Overridable
            per call.
        backend: one of :data:`BACKENDS`.
        memo: a shared :class:`MemoCache`, ``True`` for a private cache, or
            ``False``/``None`` to disable memoization.
        chunk_size: instances per work unit; default splits the pending work
            into ~4 units per worker, balancing dispatch overhead against
            load imbalance.
        resilience: a :class:`~repro.engine.resilience.ResilienceConfig`
            (or ``True`` for the defaults) enabling retries, soft deadlines,
            backend degradation, and quarantine.  ``None``/``False`` keeps
            the lean fail-fast path, where any solver exception aborts the
            campaign.
        journal: a :class:`~repro.engine.checkpoint.CheckpointJournal` (or a
            path) recording every solved instance; an existing journal is
            replayed through the memo cache before solving, which is how
            ``--resume`` works.  A journal implies an instance cache: if
            memoization was disabled, a private cache is created for replay.
        faults: a deterministic :class:`~repro.engine.faults.FaultPlan`
            armed on every work unit (tests and fault-injection smoke only).
        obs: observability surface.  Accepts a live
            :class:`~repro.obs.context.Observability`, an
            :class:`~repro.obs.context.ObsConfig`, ``True`` (tracing and
            metrics both on), or ``None``/``False`` for the default
            zero-overhead no-op implementation.  Spans and counters are
            recorded *about* the campaign, never consulted by it — results
            are bitwise identical with observability on or off (tested).
        kernel: one of :data:`KERNELS` — the solver tier work units run on.
            ``"batch"`` routes each unit through the vectorized kernels of
            :mod:`repro.core.kernels` (grouped by strategy, python fallback
            per instance where a kernel does not apply); results are
            bitwise identical to the default ``"python"`` tier (tested),
            only the throughput changes.
        worker_memo: arm the process-local worker memo shard
            (:data:`repro.engine.batch._WORKER_MEMO`): process-tier workers
            skip cells whose ``(fingerprint, budget, strategy)`` key they
            already solved this campaign, reporting shard traffic under the
            ``worker.<pid>.memo.*`` counters.  Results are bitwise identical
            (shard values are a pure function of the key), and shard hits
            replay their deterministic ``solve.count`` /
            ``solve.period.<strategy>`` observations exactly, so the merged
            ``solve.*`` counters keep the cross-tier parity guarantee —
            which is why the shard now defaults **on**.
        shared_results: allocate the campaign result arrays in
            :mod:`multiprocessing.shared_memory` for process-tier runs
            (:mod:`repro.engine.shm`): workers write solved cells in place
            and ship zero result bytes home.  Falls back to pickled rows
            automatically when shared memory is unavailable; results are
            bitwise identical either way.
        unit_wall: target estimated solve seconds per work unit for the
            cost-adaptive planner (:mod:`repro.engine.plan`; default
            :data:`~repro.engine.plan.DEFAULT_UNIT_WALL_S`).  An explicit
            ``chunk_size`` overrides the planner entirely.
    """

    def __init__(
        self,
        jobs: int | None = None,
        backend: str = "auto",
        memo: "MemoCache | bool | None" = True,
        chunk_size: int | None = None,
        resilience: "ResilienceConfig | bool | None" = None,
        journal: "CheckpointJournal | str | Path | None" = None,
        faults: "FaultPlan | None" = None,
        obs: "Observability | ObsConfig | bool | None" = None,
        kernel: str = "python",
        worker_memo: bool = True,
        shared_results: bool = True,
        unit_wall: "float | None" = None,
    ) -> None:
        if backend not in BACKENDS:
            raise InvalidParameterError(
                f"unknown backend {backend!r}; available: {BACKENDS}"
            )
        if kernel not in KERNELS:
            raise InvalidParameterError(
                f"unknown kernel {kernel!r}; available: {KERNELS}"
            )
        if chunk_size is not None and chunk_size < 1:
            raise InvalidParameterError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        if unit_wall is not None and unit_wall <= 0:
            raise InvalidParameterError(
                f"unit_wall must be > 0 seconds, got {unit_wall}"
            )
        self.jobs = resolve_jobs(jobs)
        self.backend = backend
        self.chunk_size = chunk_size
        self.kernel = kernel
        self.worker_memo = worker_memo
        self.shared_results = shared_results
        self.unit_wall = unit_wall if unit_wall is not None else DEFAULT_UNIT_WALL_S
        self._cost_model = AdaptiveCostModel()
        self._active_planes: "ResultPlanes | None" = None
        if memo is True:
            self.memo: MemoCache | None = MemoCache()
        elif memo is False or memo is None:
            self.memo = None
        else:
            self.memo = memo
        if resilience is True:
            self.resilience: ResilienceConfig | None = ResilienceConfig()
        elif resilience is False or resilience is None:
            self.resilience = None
        else:
            self.resilience = resilience
        if journal is None or isinstance(journal, CheckpointJournal):
            self.journal: CheckpointJournal | None = journal
        else:
            self.journal = CheckpointJournal(journal)
        if self.journal is not None and self.memo is None:
            self.memo = MemoCache()
        self.faults = faults
        if isinstance(obs, Observability):
            self.obs = obs
        elif isinstance(obs, ObsConfig):
            self.obs = Observability(obs)
        elif obs is True:
            self.obs = Observability(ObsConfig(trace=True, metrics=True))
        else:
            self.obs = NULL_OBSERVABILITY
        self._last_report: ResilienceReport | None = None
        self._all_failures: list[FailureRecord] = []

    # -- campaign execution --------------------------------------------------

    def solve_instances(
        self,
        chains: Sequence[TaskChain],
        resources: Resources,
        strategies: Iterable[str],
        jobs: int | None = None,
        certify: bool = False,
    ) -> dict[str, StrategyArrays]:
        """Solve every ``(chain, strategy)`` instance at one budget.

        Returns one :class:`StrategyArrays` per canonical strategy name, with
        row ``i`` holding chain ``i``'s outcome — independent of backend, job
        count, and cache state.

        With ``certify=True`` every solution is audited by the independent
        certificate checker (:mod:`repro.core.certify`) as it is produced.
        The memo cache stores only result scalars, not solutions, so a cache
        hit cannot be re-audited — certification therefore bypasses the cache
        (and journal replay, which flows through it) and solves every
        instance fresh (results still feed the cache).

        Cells are pre-filled with sentinels (``NaN`` period, ``-1`` cores) so
        an aborted or quarantining campaign can never hand callers
        uninitialized ``np.empty`` garbage: a cell either holds a solved
        result or is visibly unsolved.
        """
        chains = list(chains)
        names = [get_info(name).name for name in strategies]
        count = len(chains)
        arrays = {
            name: StrategyArrays(
                periods=np.full(count, np.nan),
                big_used=np.full(count, -1, dtype=np.int64),
                little_used=np.full(count, -1, dtype=np.int64),
            )
            for name in names
        }
        self._last_report = None
        with activate(self.obs.context()), self.obs.span(
            "campaign", "campaign", chains=count, strategies=len(names)
        ):
            if self.journal is not None and self.memo is not None and not certify:
                replayed = self.journal.replay_into_once(self.memo)
                if replayed:
                    self.obs.metrics.add("journal.replayed", replayed)

            if certify:
                pending = [
                    PendingInstance(index=i, chain=chain, strategies=tuple(names))
                    for i, chain in enumerate(chains)
                ]
            else:
                with self.obs.span("memo.fill", "memo"):
                    pending = self._fill_from_memo(chains, resources, names, arrays)
            if pending:
                effective_jobs = self.jobs if jobs is None else resolve_jobs(jobs)
                try:
                    for outcome in self._execute(
                        pending, resources, effective_jobs, certify=certify
                    ):
                        self.obs.absorb(outcome.obs)
                        solved: list[tuple[MemoKey, InstanceResult]] = []
                        for index, results in outcome.rows:
                            chain = chains[index]
                            for name, result in results.items():
                                self._store(arrays, index, name, result)
                                key = make_key(chain, resources, name)
                                solved.append((key, result))
                                if self.journal is not None:
                                    self.journal.record(key, result)
                        if self.memo is not None and solved:
                            # Bulk insert: one lock acquisition per work
                            # unit, same LRU/eviction behavior as per-key
                            # puts.
                            self.memo.put_many(solved)
                        if self.journal is not None:
                            with self.obs.span("journal.commit", "journal"):
                                self.journal.commit()
                finally:
                    # An interrupt mid-campaign must not lose finished
                    # chunks, and an abandoned campaign must never leak a
                    # shared-memory segment (destroy is idempotent: the
                    # normal path already tore the planes down).
                    self._destroy_planes()
                    if self.journal is not None:
                        self.journal.commit()
            if self.obs.metrics.enabled:
                # Cross-campaign planner feedback: the p50 of each
                # strategy's solve-latency sketch (tier-merged, DESIGN.md
                # §15) refines the cost model for the *next* plan.  Purely
                # advisory — results never depend on it.
                for name in names:
                    sketch = self.obs.metrics.sketch(f"solve.seconds.{name}")
                    if sketch is not None and sketch.count:
                        self._cost_model.feed_sketch(name, sketch.p50)
        return arrays

    @property
    def last_report(self) -> "ResilienceReport | None":
        """Recovery counters of the most recent resilient execution."""
        return self._last_report

    @property
    def failures(self) -> tuple[FailureRecord, ...]:
        """Every instance quarantined by this engine (across campaigns)."""
        return tuple(self._all_failures)

    def clear_failures(self) -> None:
        """Forget accumulated quarantine records (e.g. between experiments)."""
        self._all_failures.clear()

    def _fill_from_memo(
        self,
        chains: Sequence[TaskChain],
        resources: Resources,
        names: Sequence[str],
        arrays: dict[str, StrategyArrays],
    ) -> list[PendingInstance]:
        """Replay cached instances into ``arrays``; return what's left.

        The whole campaign is looked up in one
        :meth:`~repro.engine.memo.MemoCache.get_many` call — a single lock
        round-trip instead of ``chains x strategies`` of them — with hit and
        miss counters identical to the per-instance lookups it replaced
        (``tests/engine/test_memo.py`` pins the equivalence).
        """
        if self.memo is None:
            flat: list["InstanceResult | None"] = [None] * (
                len(chains) * len(names)
            )
        else:
            keys = [
                make_key(chain, resources, name)
                for chain in chains
                for name in names
            ]
            flat = self.memo.get_many(keys)
        pending: list[PendingInstance] = []
        hits = 0
        misses = 0
        cursor = 0
        for index, chain in enumerate(chains):
            missing: list[str] = []
            for name in names:
                cached = flat[cursor]
                cursor += 1
                if cached is None:
                    missing.append(name)
                else:
                    self._store(arrays, index, name, cached)
            if missing:
                pending.append(
                    PendingInstance(
                        index=index, chain=chain, strategies=tuple(missing)
                    )
                )
            hits += len(names) - len(missing)
            misses += len(missing)
        if self.memo is not None and self.obs.metrics.enabled:
            if hits:
                self.obs.metrics.add("memo.hits", hits)
            if misses:
                self.obs.metrics.add("memo.misses", misses)
        return pending

    @staticmethod
    def _store(
        arrays: dict[str, StrategyArrays],
        index: int,
        name: str,
        result: InstanceResult,
    ) -> None:
        columns = arrays[name]
        columns.periods[index] = result.period
        columns.big_used[index] = result.big_used
        columns.little_used[index] = result.little_used

    def _execute(
        self,
        pending: list[PendingInstance],
        resources: Resources,
        jobs: int,
        certify: bool = False,
    ) -> "Iterator[UnitOutcome]":
        """Run the pending instances on the configured backend.

        Yields one :class:`~repro.engine.batch.UnitOutcome` per completed
        work unit (the journal fsync granularity), every outcome already
        *hydrated*: units that published their cells to the shared-memory
        result planes are harvested back into ordinary rows here, so the
        assembly code upstream never knows which transport a result took.
        With resilience enabled, execution runs through the
        retry/degradation/quarantine ladder of
        :mod:`repro.engine.resilience`; otherwise failures propagate
        immediately (fail-fast), though the pool is still shut down with
        ``cancel_futures`` so a Ctrl-C never leaks workers.
        """
        pool_cls = _pool_factory(self.backend, jobs)
        tier = (
            "serial"
            if pool_cls is None
            else ("thread" if pool_cls is ThreadPoolExecutor else "process")
        )
        obs_config = self.obs.worker_config()
        if pool_cls is None and self.journal is None:
            # Serial fast path: one unit, zero chunk overhead.
            groups = [tuple(pending)]
        else:
            groups = plan_units(
                pending,
                jobs=jobs,
                cost_snapshot=self._cost_model.snapshot(),
                unit_wall=self.unit_wall,
                chunk_size=self.chunk_size,
                kernel=self.kernel,
            )

        planes: "ResultPlanes | None" = None
        if tier == "process" and self.shared_results:
            names = tuple(
                dict.fromkeys(
                    name for item in pending for name in item.strategies
                )
            )
            planes = ResultPlanes.allocate(
                names, 1 + max(item.index for item in pending), resources.ktype
            )
        self._active_planes = planes
        try:
            units = units_from_groups(
                groups, resources, certify=certify,
                faults=self.faults, tier=tier, obs=obs_config,
                kernel=self.kernel, worker_memo=self.worker_memo,
                planes=planes.descriptor if planes is not None else None,
            )

            if self.resilience is not None:
                report = ResilienceReport()
                self._last_report = report
                try:
                    for outcome in execute_with_resilience(
                        units, jobs=jobs, config=self.resilience,
                        report=report, planes=planes,
                    ):
                        yield self._hydrate(outcome, units, planes)
                finally:
                    self._all_failures.extend(report.failures)
                    self._absorb_report(report)
                return

            if pool_cls is None:
                for unit in units:
                    yield self._hydrate(solve_unit(unit), units, planes)
                return

            workers = min(jobs, len(units))
            pool = pool_cls(max_workers=workers)
            clean = False
            try:
                for outcome in pool.map(solve_unit, units):
                    yield self._hydrate(outcome, units, planes)
                clean = True
            finally:
                pool.shutdown(wait=clean, cancel_futures=not clean)
        finally:
            self._destroy_planes()

    def _hydrate(
        self,
        outcome: UnitOutcome,
        units: "list[WorkUnit]",
        planes: "ResultPlanes | None",
    ) -> UnitOutcome:
        """Harvest plane-published outcomes and feed the cost model.

        An outcome that comes home with empty rows and a ``unit_id``
        published its cells to shared memory: re-read exactly that unit's
        cells (sentinel cells — quarantined instances — simply stay
        absent).  The unit's measured solve wall updates the planner's cost
        model either way; estimates steer future chunking only, so this
        feedback cannot affect results.
        """
        if outcome.unit_id is None:
            return outcome
        unit = units[outcome.unit_id]
        if outcome.seconds is not None and outcome.seconds > 0:
            cells: dict[str, int] = {}
            for item in unit.pending:
                for name in item.strategies:
                    cells[name] = cells.get(name, 0) + 1
            self._cost_model.observe_unit(cells, outcome.seconds)
        if planes is not None and not outcome.rows:
            return replace(outcome, rows=planes.harvest(unit.pending))
        return outcome

    def _destroy_planes(self) -> None:
        """Unlink the active campaign's shared-memory planes (idempotent)."""
        if self._active_planes is not None:
            self._active_planes.destroy()
            self._active_planes = None

    def _absorb_report(self, report: ResilienceReport) -> None:
        """Record a resilient execution's recovery counters as metrics.

        Counted engine-side from the authoritative
        :class:`~repro.engine.resilience.ResilienceReport` rather than from
        worker payloads: payloads of *failed* unit attempts never make it
        home, so these counters are exact regardless of tier or job count.
        """
        metrics = self.obs.metrics
        if not metrics.enabled:
            return
        for name, value in (
            ("resilience.retries", report.retries),
            ("resilience.timeouts", report.timeouts),
            ("resilience.degradations", report.degradations),
            ("resilience.quarantined", report.quarantined),
        ):
            if value:
                metrics.add(name, value)

    # -- latency measurement ---------------------------------------------------

    def measure_latency(
        self,
        strategy: str,
        profiles: Sequence[ChainProfile],
        resources: Resources,
    ) -> float:
        """Mean wall seconds per solve of ``strategy`` over ``profiles``.

        Always serial and never memoized: this is the engine's measurement
        path (Figs. 3/4 protocol), where replaying a cache hit would report
        lookup time instead of scheduling time.

        Raises:
            InvalidParameterError: on an empty ``profiles`` sequence (there
                is no mean over zero solves).
        """
        if len(profiles) == 0:
            raise InvalidParameterError(
                "profiles must be a non-empty sequence: a latency mean over "
                "zero solves is undefined"
            )
        func = get_info(strategy).func
        with self.obs.span(
            "measure_latency", "engine", strategy=strategy, solves=len(profiles)
        ):
            start = monotonic()
            for profile in profiles:
                func(profile, resources)
            elapsed = monotonic() - start
        return elapsed / len(profiles)


_DEFAULT_ENGINE: CampaignEngine | None = None


def default_engine() -> CampaignEngine:
    """The process-wide engine (shared memo cache, all-cores default)."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = CampaignEngine()
    return _DEFAULT_ENGINE


def reset_default_engine() -> None:
    """Drop the process-wide engine (tests; frees its memo cache)."""
    global _DEFAULT_ENGINE
    _DEFAULT_ENGINE = None
