"""Journaled checkpoints: crash-safe persistence of campaign results.

A campaign is a pure map from ``(chain fingerprint, budget, strategy)`` keys
to :class:`~repro.engine.memo.InstanceResult` triples, so checkpointing needs
no coordination: an append-only JSONL journal of solved rows is enough to
resume a killed run.  The engine appends one line per solved instance and
fsyncs once per completed work unit; on resume the journal is replayed into
the memo cache, the already-solved instances short-circuit through the
ordinary memo path, and only the remainder is solved — producing arrays
bitwise identical to an uninterrupted run (floats round-trip exactly through
``json``'s shortest-repr encoding).

Crash safety: a process killed mid-write leaves at most one torn final line.
:func:`load_journal` is tolerant — any line that does not parse back into a
complete row is skipped, never fatal — and duplicate keys are fine (last
wins; a resumed run may legitimately re-append rows the first run already
journaled).

Format: one JSON object per line.  The row schema is a property of the
*result*, not of the transport: rows harvested from shared-memory result
planes (DESIGN.md §16) journal identically to rows pickled back from a
worker, so journals replay across tiers and engine versions.  Two-type
rows keep the original layout (journals written before the k-type
platform layer replay unchanged)::

    {"fp": "3f9a...", "big": 10, "little": 10, "strategy": "fertac",
     "period": 12.375, "big_used": 3, "little_used": 2}

Rows solved on a ``k > 2``-type budget carry the full type signature
instead, so they can never collide with a two-type instance::

    {"fp": "3f9a...", "counts": [10, 10, 4], "strategy": "ktype_ref",
     "period": 12.375, "used": [3, 2, 1]}

:func:`load_journal` accepts both layouts in the same file (a "mixed"
journal, e.g. after a campaign grew a third core type mid-way).
"""

from __future__ import annotations

import json
import logging
import os
from pathlib import Path
from typing import IO

from .memo import InstanceResult, MemoCache, MemoKey

__all__ = ["CheckpointJournal", "load_journal"]

_log = logging.getLogger(__name__)


def _encode(key: MemoKey, result: InstanceResult) -> str:
    fingerprint, counts, strategy = key
    row: dict[str, object]
    if len(counts) == 2 and not result.extra_used:
        # Paper-exact two-type rows keep the original journal layout, so
        # pre-k-type journals and freshly written ones stay interchangeable.
        row = {
            "fp": fingerprint,
            "big": counts[0],
            "little": counts[1],
            "strategy": strategy,
            "period": result.period,
            "big_used": result.big_used,
            "little_used": result.little_used,
        }
    else:
        row = {
            "fp": fingerprint,
            "counts": list(counts),
            "strategy": strategy,
            "period": result.period,
            "used": list(result.usage),
        }
    return json.dumps(row, separators=(",", ":"))


def _int_list(value: object) -> "list[int] | None":
    if not isinstance(value, list) or not all(
        isinstance(item, int) for item in value
    ):
        return None
    return value


def _decode(line: str) -> "tuple[MemoKey, InstanceResult] | None":
    """Parse one journal line; ``None`` for torn or foreign lines."""
    try:
        row = json.loads(line)
    except ValueError:
        return None
    if not isinstance(row, dict):
        return None
    fingerprint = row.get("fp")
    strategy = row.get("strategy")
    period = row.get("period")
    if not (
        isinstance(fingerprint, str)
        and isinstance(strategy, str)
        and isinstance(period, (int, float))
    ):
        return None
    if "counts" in row:  # k-type layout
        counts = _int_list(row.get("counts"))
        used = _int_list(row.get("used"))
        if counts is None or used is None or len(used) < 2:
            return None
        key: MemoKey = (fingerprint, tuple(counts), strategy)
        return key, InstanceResult(
            period=float(period),
            big_used=used[0],
            little_used=used[1],
            extra_used=tuple(used[2:]),
        )
    big = row.get("big")
    little = row.get("little")
    big_used = row.get("big_used")
    little_used = row.get("little_used")
    if not (
        isinstance(big, int)
        and isinstance(little, int)
        and isinstance(big_used, int)
        and isinstance(little_used, int)
    ):
        return None
    key = (fingerprint, (big, little), strategy)
    return key, InstanceResult(
        period=float(period), big_used=big_used, little_used=little_used
    )


def load_journal(path: "str | Path") -> "dict[MemoKey, InstanceResult]":
    """Replay a journal file into a key → result mapping.

    Missing files yield an empty mapping (a fresh ``--resume`` target);
    unparseable lines (a torn tail after a crash, stray garbage) are skipped.
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except FileNotFoundError:
        return {}
    rows: dict[MemoKey, InstanceResult] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        decoded = _decode(line)
        if decoded is not None:
            rows[decoded[0]] = decoded[1]
    return rows


class CheckpointJournal:
    """Append-only JSONL journal of solved campaign instances.

    The engine calls :meth:`record` per solved instance and :meth:`commit`
    (flush + fsync) per completed work unit, so a hard kill loses at most the
    in-flight unit.  One journal object may serve many campaigns in sequence
    (the CLI reuses one across every scenario of a sweep).
    """

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)
        self._file: "IO[str] | None" = None
        self._replayed = False
        self.rows_written = 0

    def load(self) -> "dict[MemoKey, InstanceResult]":
        """Parse the journal from disk (tolerant; see :func:`load_journal`)."""
        return load_journal(self.path)

    def replay_into(self, memo: MemoCache) -> int:
        """Load the journal into a memo cache; returns rows replayed."""
        replayed = memo.warm(self.load())
        if replayed:
            _log.debug("replayed %d journaled row(s) from %s", replayed, self.path)
        return replayed

    def replay_into_once(self, memo: MemoCache) -> int:
        """Like :meth:`replay_into`, but at most once per journal object.

        The engine calls this at the top of every campaign; after the first
        replay the journal's new rows are already in the cache, so re-reading
        the file would be wasted work.
        """
        if self._replayed:
            return 0
        self._replayed = True
        return self.replay_into(memo)

    def record(self, key: MemoKey, result: InstanceResult) -> None:
        """Append one solved row (buffered until :meth:`commit`)."""
        if self._file is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self.path, "a", encoding="utf-8")
        self._file.write(_encode(key, result) + "\n")
        self.rows_written += 1

    def commit(self) -> None:
        """Flush buffered rows and fsync them to disk (crash barrier)."""
        if self._file is None:
            return
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        """Commit and release the file handle (safe to call repeatedly)."""
        if self._file is None:
            return
        self.commit()
        self._file.close()
        self._file = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
