"""Shared-memory result planes: zero-pickle result transport for workers.

The process tier used to ship every solved ``InstanceResult`` home by
pickling it through the pool's result pipe — measurably the dominant cost at
campaign unit sizes (the ``worker.<pid>.pickle.bytes_out`` counters of
DESIGN.md §15 are what motivated this module).  Instead, the engine now
allocates the campaign's result arrays *once* in
:mod:`multiprocessing.shared_memory` and hands workers a tiny, picklable
:class:`PlaneDescriptor` — segment names plus shape metadata.  Workers
attach, write their cells in place, detach, and ship home a
:class:`~repro.engine.batch.UnitOutcome` that carries **no result rows at
all**, only metadata and observability payloads.

Layout
------
Two planes, allocated side by side:

* ``periods`` — ``float64[S, N]`` (``S`` strategies x ``N`` chains),
  prefilled with ``NaN``;
* ``usage`` — ``int64[S, N, W]`` with ``W = max(2, ktype)`` per-type core
  counts, prefilled with ``-1``.

The sentinels are exactly the engine's campaign-array sentinels: a cell
either holds a solved result or is *visibly* unsolved.  That makes harvest
metadata-free — the engine re-reads only the cells of the unit that just
completed and skips sentinel cells (quarantined or abandoned instances),
so no per-cell bookkeeping ever crosses the process boundary.  ``float64``
round-trips through shared memory bit-for-bit, which is what keeps the
bitwise-determinism guarantee intact.

Lifecycle discipline (the part resource trackers care about):

* the **engine** is the sole owner: it creates the segments and is the only
  party that ever calls :meth:`ResultPlanes.destroy` (close + unlink,
  idempotent) — always from a ``finally``, so crashes, ``KeyboardInterrupt``
  and the resilience ladder's process → thread degradation can never leak a
  segment;
* **workers** only ever attach by name and ``close()`` their mapping; they
  never unlink.  On Python ≥ 3.13 workers attach with ``track=False`` so the
  resource tracker is not involved at all; on older versions the duplicate
  worker-side registrations collapse in the tracker's name set and the
  engine's single unlink retires the name cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Protocol, Sequence

import numpy as np

from .memo import InstanceResult

__all__ = [
    "PlaneDescriptor",
    "PlaneView",
    "ResultPlanes",
    "HarvestRows",
]

#: ``(chain index, {strategy: result})`` rows reconstructed from the planes —
#: structurally identical to :data:`repro.engine.batch.UnitResult` (defined
#: here too so this module stays below ``batch`` in the import graph).
HarvestRows = list[tuple[int, dict[str, InstanceResult]]]


class _PendingLike(Protocol):
    """The slice of :class:`~repro.engine.batch.PendingInstance` harvest needs.

    A structural type rather than an import keeps this module below
    ``batch`` in the engine's import graph (``batch`` imports the
    descriptor from here).
    """

    index: int
    strategies: tuple[str, ...]


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without taking ownership.

    ``track=False`` (Python 3.13+) keeps the resource tracker entirely out
    of non-owning attachments; older interpreters do not accept the keyword
    and register the name a second time, which is harmless — the tracker
    stores names in a set, so the owner's single unlink still retires it.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no ``track`` parameter
        return shared_memory.SharedMemory(name=name)


@dataclass(frozen=True, slots=True)
class PlaneDescriptor:
    """The picklable handle workers receive instead of result pipes.

    Carries segment *names* (never handles — see lint rule REP203: a live
    ``SharedMemory`` object must not cross a ``WorkUnit`` boundary) plus the
    shape metadata needed to rebuild the numpy views on the other side.

    Attributes:
        periods_name: shared-memory segment name of the ``float64[S, N]``
            periods plane.
        usage_name: segment name of the ``int64[S, N, W]`` usage plane.
        strategies: canonical strategy names, in plane row order.
        chains: ``N`` — one column per campaign chain index.
        ktype: number of core types of the campaign budget (``W`` is
            ``max(2, ktype)`` so the two-type accessors always fit).
    """

    periods_name: str
    usage_name: str
    strategies: tuple[str, ...]
    chains: int
    ktype: int

    @property
    def usage_width(self) -> int:
        """Per-cell usage vector width (two-type floor)."""
        return max(2, self.ktype)

    def open(self) -> "PlaneView":
        """Attach to the planes (worker side).  Caller must ``close()``."""
        return PlaneView(self)


class PlaneView:
    """A live, non-owning mapping of the result planes.

    Workers (and the engine's harvest path) use this to read and write
    cells.  ``close()`` drops the numpy views before closing the mappings —
    numpy buffer exports must be released first or ``mmap.close()`` raises
    ``BufferError``.
    """

    def __init__(self, descriptor: PlaneDescriptor) -> None:
        self._descriptor = descriptor
        self._rows = {
            name: row for row, name in enumerate(descriptor.strategies)
        }
        self._periods_shm = _attach(descriptor.periods_name)
        usage_shm: "shared_memory.SharedMemory | None" = None
        try:
            usage_shm = _attach(descriptor.usage_name)
        finally:
            # Attaching the second segment failed: release the first before
            # the exception propagates, or the mapping would linger until GC.
            if usage_shm is None:
                self._periods_shm.close()
        self._usage_shm = usage_shm
        shape = (len(descriptor.strategies), descriptor.chains)
        self._periods: "np.ndarray | None" = np.ndarray(
            shape, dtype=np.float64, buffer=self._periods_shm.buf
        )
        self._usage: "np.ndarray | None" = np.ndarray(
            (*shape, descriptor.usage_width),
            dtype=np.int64,
            buffer=self._usage_shm.buf,
        )

    def write(self, index: int, strategy: str, result: InstanceResult) -> None:
        """Store one solved cell (pure data: identical bits on every rerun)."""
        assert self._periods is not None and self._usage is not None
        row = self._rows[strategy]
        usage = result.usage
        self._usage[row, index, : len(usage)] = usage
        # Period written last: a cell is "solved" once its period is finite,
        # so a torn write (worker killed mid-cell) can never expose a
        # half-written cell as solved.
        self._periods[row, index] = result.period

    def read(self, index: int, strategy: str) -> "InstanceResult | None":
        """Read one cell back, ``None`` while it still holds the sentinel."""
        assert self._periods is not None and self._usage is not None
        row = self._rows[strategy]
        period = float(self._periods[row, index])
        if np.isnan(period):
            return None
        usage = self._usage[row, index]
        ktype = self._descriptor.ktype
        return InstanceResult(
            period=period,
            big_used=int(usage[0]),
            little_used=int(usage[1]) if ktype > 1 else 0,
            extra_used=tuple(int(v) for v in usage[2:ktype]),
        )

    def close(self) -> None:
        """Release the views and detach (never unlinks; idempotent)."""
        self._periods = None
        self._usage = None
        self._periods_shm.close()
        self._usage_shm.close()


class ResultPlanes:
    """Engine-side owner of the campaign's shared result planes.

    Created via :meth:`allocate`, which returns ``None`` when shared memory
    is unavailable (permissions, exhausted ``/dev/shm``, exotic platforms) —
    the engine then simply falls back to pickled result rows, trading speed
    for nothing else.  :meth:`destroy` is idempotent and safe to call from
    multiple ``finally`` blocks.
    """

    def __init__(
        self,
        descriptor: PlaneDescriptor,
        periods_shm: shared_memory.SharedMemory,
        usage_shm: shared_memory.SharedMemory,
    ) -> None:
        self._descriptor = descriptor
        self._periods_shm: "shared_memory.SharedMemory | None" = periods_shm
        self._usage_shm: "shared_memory.SharedMemory | None" = usage_shm
        self._view: "PlaneView | None" = None

    @classmethod
    def allocate(
        cls, strategies: Sequence[str], chains: int, ktype: int
    ) -> "ResultPlanes | None":
        """Create sentinel-prefilled planes, or ``None`` if shm is unusable."""
        names = tuple(strategies)
        if not names or chains < 1:
            return None
        width = max(2, ktype)
        periods_bytes = len(names) * chains * 8
        usage_bytes = len(names) * chains * width * 8
        try:
            periods_shm = shared_memory.SharedMemory(
                create=True, size=periods_bytes
            )
        except (OSError, ValueError):
            return None
        try:
            usage_shm = shared_memory.SharedMemory(create=True, size=usage_bytes)
        except (OSError, ValueError):
            periods_shm.close()
            periods_shm.unlink()
            return None
        shape = (len(names), chains)
        periods = np.ndarray(shape, dtype=np.float64, buffer=periods_shm.buf)
        periods.fill(np.nan)
        usage = np.ndarray(
            (*shape, width), dtype=np.int64, buffer=usage_shm.buf
        )
        usage.fill(-1)
        del periods, usage  # release buffer exports before any close()
        descriptor = PlaneDescriptor(
            periods_name=periods_shm.name,
            usage_name=usage_shm.name,
            strategies=names,
            chains=chains,
            ktype=ktype,
        )
        return cls(descriptor, periods_shm, usage_shm)

    @property
    def descriptor(self) -> PlaneDescriptor:
        """The picklable handle to stamp onto work units."""
        return self._descriptor

    def harvest(self, pending: "Sequence[_PendingLike]") -> HarvestRows:
        """Re-read the cells of one completed unit from the planes.

        ``pending`` is the unit's :class:`~repro.engine.batch.PendingInstance`
        sequence.  Sentinel cells — quarantined or never-written instances —
        are simply absent from the returned rows, mirroring how failed
        instances are absent from pickled result rows.  All scalars are
        native Python (``float``/``int``), so rows journal exactly like
        worker-built ones.
        """
        if self._periods_shm is None:
            raise RuntimeError("result planes already destroyed")
        if self._view is None:
            self._view = PlaneView(self._descriptor)
        rows: HarvestRows = []
        for item in pending:
            results: dict[str, InstanceResult] = {}
            for name in item.strategies:
                cell = self._view.read(item.index, name)
                if cell is not None:
                    results[name] = cell
            rows.append((item.index, results))
        return rows

    def destroy(self) -> None:
        """Close and unlink both segments (idempotent; never raises on races)."""
        if self._view is not None:
            self._view.close()
            self._view = None
        for attr in ("_periods_shm", "_usage_shm"):
            segment: "shared_memory.SharedMemory | None" = getattr(self, attr)
            if segment is None:
                continue
            setattr(self, attr, None)
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # already gone (e.g. external cleanup)
                pass
