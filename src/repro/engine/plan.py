"""Cost-adaptive work-unit planning: size chunks by cost, not by row count.

Fixed-row chunking made the process tier pay dispatch overhead per unit
regardless of how much work a unit held — tiny units drown in IPC, huge
units serialize the campaign tail.  The planner instead targets a fixed
*unit wall* (:data:`DEFAULT_UNIT_WALL_S`): every unit is sized so its
estimated solve time lands near the target, using per-strategy cell costs
learned from earlier units.  This is the divisible-load idea of sizing
installments to communication cost, applied to an embarrassingly-parallel
campaign.

Two properties are load-bearing:

* **Determinism** — :func:`plan_units` is a pure function of the pending
  instances, a frozen cost snapshot, the job count, and the kernel.  The
  engine snapshots its :class:`AdaptiveCostModel` once per campaign, so the
  plan is computed entirely up front; and because result rows are keyed by
  chain index and strategies are pure functions, the assembled arrays are
  bitwise identical for *any* plan — cost feedback can only change wall
  time, never results (``tests/engine/test_plan.py``,
  ``tests/engine/test_scaling.py``).
* **Strategy grouping for the batch kernel** — with ``kernel="batch"`` the
  planner first explodes instances into single-strategy cells and packs
  units per strategy, so each worker's unit is one maximal
  :func:`repro.core.registry.solve_batch` call.  This is what makes
  ``--jobs N --kernel batch`` compose: the old fixed chunker handed workers
  strategy-mixed units that fragmented the vectorized groups.

The model is fed from two directions: always-on per-unit wall measurements
(:attr:`repro.engine.batch.UnitOutcome.seconds`, read off the sanctioned
:mod:`repro.obs.clock`), and — when engine metrics are enabled — the p50 of
the ``solve.seconds.<strategy>`` quantile sketches, which survive across
campaigns and tiers (DESIGN.md §15).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.errors import InvalidParameterError
from .batch import PendingInstance

__all__ = [
    "DEFAULT_UNIT_WALL_S",
    "AdaptiveCostModel",
    "plan_units",
]

#: Target estimated solve seconds per work unit — comfortably above the
#: ~ms-scale dispatch+IPC cost of one unit, low enough that a straggler
#: unit cannot serialize a campaign tail.
DEFAULT_UNIT_WALL_S: float = 0.1

#: Prior per-cell solve seconds before any feedback (a mid-size chain
#: through a registry strategy lands in the low single-digit milliseconds).
_PRIOR_CELL_COST_S: float = 2e-3

#: EWMA smoothing for cost feedback (recent units dominate, noise damped).
_EWMA_ALPHA: float = 0.3

#: Units-per-worker floor the planner keeps when the campaign is too small
#: to fill wall-sized units — the old fixed chunker's load-balance margin.
_UNITS_PER_WORKER: int = 4


class AdaptiveCostModel:
    """Per-strategy cell-cost estimates, updated by exponential averaging.

    Purely advisory: estimates steer unit sizing and nothing else, so a
    wildly wrong estimate costs wall time, never correctness.  Not
    thread-safe (owned and driven by one engine from its campaign loop).
    """

    def __init__(self) -> None:
        self._cost: dict[str, float] = {}

    def cell_cost(self, strategy: str) -> float:
        """Estimated solve seconds for one ``(chain, strategy)`` cell."""
        return self._cost.get(strategy, _PRIOR_CELL_COST_S)

    def observe_unit(self, cells: Mapping[str, int], seconds: float) -> None:
        """Fold one completed unit's measured wall into the estimates.

        The unit's wall covers all its cells, so it is apportioned to
        strategies proportionally to their *current* estimated share — the
        same trick iterative profilers use to split aggregate samples.
        """
        if seconds <= 0.0 or not cells:
            return
        estimated = {
            name: self.cell_cost(name) * count for name, count in cells.items()
        }
        total = sum(estimated.values())
        if total <= 0.0:
            return
        for name, count in cells.items():
            if count < 1:
                continue
            per_cell = (seconds * estimated[name] / total) / count
            self._fold(name, per_cell)

    def feed_sketch(self, strategy: str, p50_seconds: float) -> None:
        """Fold a ``solve.seconds.<strategy>`` sketch median in (PR 9 path)."""
        if p50_seconds > 0.0:
            self._fold(strategy, p50_seconds)

    def _fold(self, strategy: str, per_cell: float) -> None:
        previous = self._cost.get(strategy)
        if previous is None:
            self._cost[strategy] = per_cell
        else:
            self._cost[strategy] = (
                (1.0 - _EWMA_ALPHA) * previous + _EWMA_ALPHA * per_cell
            )

    def snapshot(self) -> tuple[tuple[str, float], ...]:
        """Frozen, ordered view of the estimates (what a plan is built from)."""
        return tuple(sorted(self._cost.items()))


def _instance_cost(
    item: PendingInstance, costs: Mapping[str, float]
) -> float:
    return sum(
        costs.get(name, _PRIOR_CELL_COST_S) for name in item.strategies
    )


def _pack(
    items: Sequence[PendingInstance],
    costs: Mapping[str, float],
    target: float,
) -> list[tuple[PendingInstance, ...]]:
    """Greedy in-order packing: cut a unit once it reaches ``target``."""
    groups: list[tuple[PendingInstance, ...]] = []
    unit: list[PendingInstance] = []
    acc = 0.0
    for item in items:
        unit.append(item)
        acc += _instance_cost(item, costs)
        if acc >= target:
            groups.append(tuple(unit))
            unit = []
            acc = 0.0
    if unit:
        groups.append(tuple(unit))
    return groups


def plan_units(
    pending: Sequence[PendingInstance],
    *,
    jobs: int,
    cost_snapshot: "tuple[tuple[str, float], ...]" = (),
    unit_wall: float = DEFAULT_UNIT_WALL_S,
    chunk_size: "int | None" = None,
    kernel: str = "python",
) -> list[tuple[PendingInstance, ...]]:
    """Split pending instances into work-unit groups, deterministically.

    A pure function: the same ``(pending, jobs, cost_snapshot, unit_wall,
    chunk_size, kernel)`` always yields the same plan, and every cell of
    every instance appears in exactly one group.

    ``chunk_size`` is the explicit fixed-row override (the engine's
    long-standing knob, kept bitwise-compatible with the old chunker);
    otherwise units target ``unit_wall`` estimated seconds, clamped so a
    small campaign still fans out into ~:data:`_UNITS_PER_WORKER` units per
    worker.  With ``kernel="batch"`` instances are first exploded into
    single-strategy cells grouped by strategy (first-appearance order), so
    each unit is one contiguous ``solve_batch`` shard.
    """
    if unit_wall <= 0.0:
        raise InvalidParameterError(
            f"unit_wall must be > 0 seconds, got {unit_wall}"
        )
    if chunk_size is not None and chunk_size < 1:
        raise InvalidParameterError(
            f"chunk_size must be >= 1, got {chunk_size}"
        )
    items = list(pending)
    if not items:
        return []

    if kernel == "batch" and chunk_size is None:
        order: list[str] = []
        cells_by_strategy: dict[str, list[PendingInstance]] = {}
        for item in items:
            for name in item.strategies:
                if name not in cells_by_strategy:
                    order.append(name)
                    cells_by_strategy[name] = []
                cells_by_strategy[name].append(
                    PendingInstance(
                        index=item.index, chain=item.chain, strategies=(name,)
                    )
                )
        items = [cell for name in order for cell in cells_by_strategy[name]]

    if chunk_size is not None:
        return [
            tuple(items[i : i + chunk_size])
            for i in range(0, len(items), chunk_size)
        ]

    costs = dict(cost_snapshot)
    total = sum(_instance_cost(item, costs) for item in items)
    workers = max(1, jobs)
    # Clamp the target so small campaigns still spread across workers: at
    # least ~_UNITS_PER_WORKER units per worker unless units would go
    # sub-instance (packing always keeps >= 1 instance per unit).
    target = min(unit_wall, total / (workers * _UNITS_PER_WORKER))
    target = max(target, 1e-9)
    return _pack(items, costs, target)
