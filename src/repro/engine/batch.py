"""Chunked work units for the campaign engine.

The unit of distribution is a *chunk* of scheduling instances, not a single
instance: one chain costs milliseconds to schedule, so per-instance dispatch
would drown in executor overhead.  A :class:`WorkUnit` carries a slice of the
campaign — ``(chain index, chain, strategies still to run)`` triples plus the
shared budget — and :func:`solve_unit` resolves it into indexed
:class:`~repro.engine.memo.InstanceResult` rows.

Everything here is picklable with module-level functions only, so the same
code path runs in-process (serial / thread tiers) and in worker processes
(process tier).  Results are keyed by chain index, which makes assembly
order-independent: however the executor interleaves chunks, the final arrays
are bitwise identical.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from ..core.binary_search import ScheduleOutcome
from ..core.certify import certify_outcome
from ..core.chain_stats import ChainProfile
from ..core.errors import InvalidParameterError
from ..core.registry import get_info, solve_batch
from ..core.task import TaskChain
from ..core.types import Resources
from ..obs.clock import monotonic
from ..obs.context import ObsConfig, ObsPayload, activate, current
from ..obs.metrics import MetricsLike
from .faults import FaultPlan
from .memo import InstanceResult, MemoKey, make_key
from .shm import PlaneDescriptor

__all__ = [
    "PendingInstance",
    "WorkUnit",
    "UnitResult",
    "UnitOutcome",
    "solve_instance",
    "solve_unit",
    "chunk_pending",
    "units_from_groups",
]


@dataclass(frozen=True, slots=True)
class PendingInstance:
    """One chain still needing one or more strategy solves.

    Attributes:
        index: the chain's position in its campaign (result-array row).
        chain: the chain itself (small: tens of tasks).
        strategies: canonical names of the strategies left to run on it.
    """

    index: int
    chain: TaskChain
    strategies: tuple[str, ...]


@dataclass(frozen=True, slots=True)
class WorkUnit:
    """A chunk of pending instances sharing one platform budget.

    Attributes:
        pending: the instances in this chunk.
        resources: the shared platform budget.
        certify: audit every solution with the independent certificate
            checker (:mod:`repro.core.certify`) as it is produced.
        faults: deterministic fault plan armed for this chunk (tests and the
            fault-injection smoke; ``None`` in production).
        tier: the execution tier running this chunk (``serial`` / ``thread``
            / ``process``) — lets tier-scoped faults target, say, only
            worker processes so the degradation ladder can be exercised.
        obs: observability switches for this chunk (``None`` = fully off).
            When set, the worker builds a local tracer/metrics context,
            records into it, and ships the resulting payload home in its
            :class:`UnitOutcome` — the only channel observability data has
            out of a worker process.
        kernel: solver tier for this chunk — ``"python"`` runs each cell
            through the scalar strategy functions, ``"batch"`` groups the
            chunk by strategy and solves each group in one vectorized
            :func:`repro.core.registry.solve_batch` call (bitwise-identical
            results; instances targeted by an armed fault plan are routed
            to the python path per instance, since faults trigger per cell).
        worker_memo: consult the process-local worker memo shard
            (:data:`_WORKER_MEMO`) before solving each cell.  Only honored
            on the process tier (worker processes die with their pool, so
            the shard's lifetime is one campaign) and bypassed entirely when
            certifying or when a fault plan is armed.
        dispatched_at: engine-side :func:`repro.obs.clock.monotonic` stamp
            taken when the unit was chunked for a process pool (``None``
            otherwise).  CLOCK_MONOTONIC is system-wide on Linux, so the
            worker can subtract it from its own clock read on entry to
            measure pool-wait (queueing) time.  Never consulted by the
            result path.
        planes: descriptor of the engine's shared-memory result planes
            (:mod:`repro.engine.shm`).  When set, the worker writes its
            solved cells into the planes and ships *empty* result rows home
            — the zero-pickle result path.  Always a name descriptor, never
            a live ``SharedMemory`` handle (lint rule REP203).
        unit_id: the unit's position in the engine's campaign plan; the key
            the engine harvests plane cells by when the rows come home
            empty.  ``None`` on units built outside the planner.
    """

    pending: tuple[PendingInstance, ...]
    resources: Resources
    certify: bool = False
    faults: "FaultPlan | None" = None
    tier: str = "serial"
    obs: "ObsConfig | None" = None
    kernel: str = "python"
    worker_memo: bool = False
    dispatched_at: "float | None" = None
    planes: "PlaneDescriptor | None" = None
    unit_id: "int | None" = None


#: ``(chain index, {strategy: result})`` rows produced by one unit.
UnitResult = list[tuple[int, dict[str, InstanceResult]]]


@dataclass(frozen=True, slots=True)
class UnitOutcome:
    """Everything one resolved work unit sends back to the engine.

    ``rows`` is the result payload; ``obs`` carries the spans and metric
    snapshot the unit recorded (``None`` when observability was off).
    Results and observations travel together but are consumed on strictly
    separate paths — the engine assembles arrays from ``rows`` only, which
    is what keeps tracing off the result path.

    When the unit carried a plane descriptor and published its cells to
    shared memory, ``rows`` comes home *empty* and ``unit_id`` tells the
    engine which unit's cells to harvest from the planes instead.
    ``seconds`` is the unit's measured solve wall (sanctioned
    :mod:`repro.obs.clock` read) — the always-on feedback signal of the
    cost-adaptive planner (:mod:`repro.engine.plan`); it steers future
    chunking only, never results.
    """

    rows: UnitResult
    obs: "ObsPayload | None" = None
    unit_id: "int | None" = None
    seconds: "float | None" = None


def solve_instance(
    profile: ChainProfile,
    resources: Resources,
    strategies: Iterable[str],
    certify: bool = False,
    faults: "FaultPlan | None" = None,
    tier: str = "serial",
) -> dict[str, InstanceResult]:
    """Run the given strategies on one profiled chain.

    The single authoritative "solve one campaign cell" routine — the serial
    path, the thread tier, and the process workers all funnel through it, so
    an instance's result cannot depend on where it was computed.

    With ``certify=True`` each outcome is audited by the independent
    certificate checker before the result row is recorded (raising
    :class:`~repro.core.errors.CertificationError` on any violation);
    registry-optimal strategies additionally get the optimality-bracket
    certificate.

    An armed fault plan is consulted per ``(instance, strategy)`` cell:
    pre-solve kinds (raise / bug / crash / hang / interrupt) trigger before
    the strategy runs; ``corrupt`` tampers with the finished outcome *before*
    certification, which is exactly how certification proves it catches
    corrupted results.

    When an observability context is ambient (:func:`repro.obs.context.current`),
    each strategy cell is wrapped in a ``solve`` span and its latency feeds a
    per-strategy histogram — recorded around the same code path, never
    altering it.
    """
    results: dict[str, InstanceResult] = {}
    obs = current()
    for name in strategies:
        if obs.active:
            with obs.span("solve", "solve", strategy=name, tier=tier):
                start = monotonic()
                results[name] = _solve_cell(
                    profile, resources, name, certify, faults, tier
                )
                obs.metrics.observe(f"solve.seconds.{name}", monotonic() - start)
                obs.metrics.add("solve.count")
                # Deterministic observation stream: the multiset of solved
                # periods is identical across tiers (bitwise-identical
                # results), so its sketch merges bitwise-identically too.
                obs.metrics.observe(
                    f"solve.period.{name}", results[name].period
                )
        else:
            results[name] = _solve_cell(
                profile, resources, name, certify, faults, tier
            )
    return results


def _solve_cell(
    profile: ChainProfile,
    resources: Resources,
    name: str,
    certify: bool,
    faults: "FaultPlan | None",
    tier: str,
) -> InstanceResult:
    """One ``(chain, strategy)`` cell: fault hook, solve, corrupt, audit."""
    info = get_info(name)
    spec = (
        faults.fire(profile.fingerprint, name, tier)
        if faults is not None
        else None
    )
    if spec is not None and spec.kind != "corrupt":
        spec.trigger()
    outcome = info.func(profile, resources)
    if spec is not None and spec.kind == "corrupt":
        outcome = spec.corrupt(outcome)
    if certify:
        certify_outcome(
            outcome,
            profile,
            resources,
            optimal=info.optimal,
            context=name,
        )
    return _result_of(outcome, resources)


def _result_of(outcome: ScheduleOutcome, resources: Resources) -> InstanceResult:
    """Collapse a schedule outcome into the campaign result scalars."""
    usage = outcome.solution.core_usage(resources.ktype)
    return InstanceResult(
        period=outcome.period,
        big_used=usage.counts[0],
        little_used=usage.counts[1] if usage.ktype > 1 else 0,
        extra_used=usage.counts[2:],
    )


_WORKER_MEMO: "dict[MemoKey, InstanceResult]" = {}
"""Process-local memo shard for process-tier workers.

Keyed exactly like the engine's :class:`~repro.engine.memo.MemoCache`, but
living (and dying) with the worker process: pools are campaign-scoped, so
the shard never leaks results across campaigns, and the serial/thread tiers
never touch it (their process is the engine's).  Values are a pure function
of the key — the same guarantee the engine memo rests on — so a hit returns
exactly what a fresh solve would, and the only observable difference is the
``worker.<pid>.memo.*`` attribution counters.
"""


def _shard_usable(unit: WorkUnit) -> bool:
    """Worker-shard gate: process tier only, never under certify or faults."""
    return (
        unit.worker_memo
        and unit.tier == "process"
        and not unit.certify
        and unit.faults is None
    )


def _replay_shard_hit(name: str, cached: InstanceResult) -> None:
    """Re-emit the deterministic ``solve.*`` observations for a shard hit.

    A shard hit elides an actual solve, but the cross-tier counter-parity
    guarantee (DESIGN.md §15) says ``solve.count`` and the
    ``solve.period.<strategy>`` observation stream depend only on the
    campaign, never on where or whether each cell was recomputed.  Cached
    values are a pure function of the key, so replaying them here makes the
    merged counters bitwise-independent of how units landed on workers —
    which is what lets the shard default on.  ``solve.seconds`` is wall
    clock (inherently run-dependent) and is deliberately not replayed.
    """
    metrics = current().metrics
    if metrics.enabled:
        metrics.add("solve.count")
        metrics.observe(f"solve.period.{name}", cached.period)


def _solve_with_shard(
    unit: WorkUnit, item: PendingInstance, profile: ChainProfile
) -> dict[str, InstanceResult]:
    """Solve one instance through the worker memo shard."""
    results: dict[str, InstanceResult] = {}
    todo: list[str] = []
    metrics = current().metrics
    prefix = f"worker.{os.getpid()}.memo"
    for name in item.strategies:
        cached = _WORKER_MEMO.get(make_key(item.chain, unit.resources, name))
        if cached is None:
            todo.append(name)
        else:
            results[name] = cached
            _replay_shard_hit(name, cached)
            if metrics.enabled:
                metrics.add(f"{prefix}.hits")
    if todo:
        fresh = solve_instance(
            profile,
            unit.resources,
            tuple(todo),
            certify=unit.certify,
            faults=unit.faults,
            tier=unit.tier,
        )
        for name, result in fresh.items():
            _WORKER_MEMO[make_key(item.chain, unit.resources, name)] = result
            if metrics.enabled:
                metrics.add(f"{prefix}.misses")
        results.update(fresh)
    return results


def _solve_rows(unit: WorkUnit) -> UnitResult:
    """Resolve a unit's instances into index-keyed rows."""
    use_shard = _shard_usable(unit)
    rows: UnitResult = []
    for item in unit.pending:
        profile = ChainProfile(item.chain)
        if use_shard:
            rows.append((item.index, _solve_with_shard(unit, item, profile)))
            continue
        rows.append(
            (
                item.index,
                solve_instance(
                    profile,
                    unit.resources,
                    item.strategies,
                    certify=unit.certify,
                    faults=unit.faults,
                    tier=unit.tier,
                ),
            )
        )
    return rows


def _solve_rows_batch(unit: WorkUnit) -> UnitResult:
    """Resolve a unit through the vectorized batch kernels.

    The unit's instances are grouped by strategy (first-appearance order,
    so the obs span sequence is deterministic) and each group goes through
    one :func:`repro.core.registry.solve_batch` call — which guarantees
    bitwise-identical outcomes to the scalar path, including the python
    fallback for instances the kernels reject.  Certification audits every
    batch-produced solution with the same independent checker as the scalar
    path; the memoized result rows are constructed identically, so engine
    assembly cannot tell the tiers apart.

    The worker memo shard composes with batching: shard-hit cells are
    answered (with their deterministic counter replay) before grouping, so
    each ``solve_batch`` call sees only genuinely unsolved cells, and fresh
    group results feed the shard for later units on the same worker.
    """
    profiles = [ChainProfile(item.chain) for item in unit.pending]
    use_shard = _shard_usable(unit)
    shard_metrics = current().metrics
    prefix = f"worker.{os.getpid()}.memo"
    by_strategy: dict[str, list[int]] = {}
    results: list[dict[str, InstanceResult]] = [{} for _ in unit.pending]
    for position, item in enumerate(unit.pending):
        for name in item.strategies:
            if use_shard:
                cached = _WORKER_MEMO.get(
                    make_key(item.chain, unit.resources, name)
                )
                if cached is not None:
                    results[position][name] = cached
                    _replay_shard_hit(name, cached)
                    if shard_metrics.enabled:
                        shard_metrics.add(f"{prefix}.hits")
                    continue
            by_strategy.setdefault(name, []).append(position)

    obs = current()
    for name, members in by_strategy.items():
        if obs.active:
            with obs.span(
                "solve_batch",
                "solve",
                strategy=name,
                tier=unit.tier,
                instances=len(members),
            ):
                start = monotonic()
                _solve_group(unit, name, members, profiles, results, use_shard)
                obs.metrics.observe(
                    f"solve_batch.seconds.{name}", monotonic() - start
                )
                obs.metrics.add("solve.count", len(members))
        else:
            _solve_group(unit, name, members, profiles, results, use_shard)

    return [
        (item.index, results[position])
        for position, item in enumerate(unit.pending)
    ]


def _solve_group(
    unit: WorkUnit,
    name: str,
    members: "list[int]",
    profiles: "list[ChainProfile]",
    results: "list[dict[str, InstanceResult]]",
    use_shard: bool = False,
) -> None:
    """Solve one strategy's group of a batched unit and record its rows."""
    info = get_info(name)
    group = [profiles[position] for position in members]
    outcomes = solve_batch(group, unit.resources, name)
    obs = current()
    prefix = f"worker.{os.getpid()}.memo"
    for position, outcome in zip(members, outcomes):
        if unit.certify:
            certify_outcome(
                outcome,
                profiles[position],
                unit.resources,
                optimal=info.optimal,
                context=name,
            )
        result = _result_of(outcome, unit.resources)
        if obs.metrics.enabled:
            # Same deterministic period stream as the scalar path, so the
            # sketch is kernel-invariant as well as tier-invariant.
            obs.metrics.observe(f"solve.period.{name}", result.period)
        if use_shard:
            key = make_key(unit.pending[position].chain, unit.resources, name)
            _WORKER_MEMO[key] = result
            if obs.metrics.enabled:
                obs.metrics.add(f"{prefix}.misses")
        results[position][name] = result


def _solve_rows_routed(unit: WorkUnit) -> UnitResult:
    """Batch-kernel unit with an armed fault plan: route per instance.

    Every instance the plan *could* target (non-consuming
    :meth:`~repro.engine.faults.FaultPlan.targets` check) goes through the
    scalar per-cell path — the only place faults get their ``fire()``
    consultation — while the rest of the unit keeps the vectorized batch
    kernels.  Routing all-or-nothing here used to silently bypass injection
    whenever a batched unit mixed targeted and untargeted instances; the
    split keeps injection unconditional without giving up batching.
    """
    assert unit.faults is not None
    targeted = tuple(
        item
        for item in unit.pending
        if unit.faults.targets(item.chain.fingerprint, item.strategies)
    )
    untargeted = tuple(
        item
        for item in unit.pending
        if not unit.faults.targets(item.chain.fingerprint, item.strategies)
    )
    rows: UnitResult = []
    if targeted:
        rows.extend(_solve_rows(replace(unit, pending=targeted)))
    if untargeted:
        rows.extend(
            _solve_rows_batch(replace(unit, pending=untargeted, faults=None))
        )
    return rows


def _publish_to_planes(unit: WorkUnit, rows: UnitResult) -> UnitResult:
    """Write a unit's solved cells into the shared result planes.

    Returns the rows the outcome should *ship* — empty once the cells are
    safely in shared memory, or the original rows when the unit carries no
    descriptor or the planes are already gone (e.g. the engine tore them
    down while this abandoned attempt was still running; the pickled-row
    fallback keeps the attempt harmless either way).  Writes are pure
    cell-data stores, so a retried unit republishing over a partial earlier
    attempt rewrites identical bits.
    """
    if unit.planes is None:
        return rows
    try:
        view = unit.planes.open()
    except (OSError, ValueError):
        return rows
    try:
        for index, results in rows:
            for name, result in results.items():
                view.write(index, name, result)
    finally:
        view.close()
    return []


def _attribute_worker_costs(
    unit: WorkUnit, rows: UnitResult, arrived: float, metrics: "MetricsLike"
) -> None:
    """Record process-tier cost attribution under the ``worker.*`` namespace.

    Everything here is keyed by the worker's pid and measured on wall
    clocks, so it is inherently tier- and run-dependent: ``worker.*`` is the
    one metric namespace exempt from the cross-tier counter-parity guarantee
    (DESIGN.md §15).  The pickle costs are measured by re-serializing the
    unit and its *shipped* rows with the same protocol the pool uses — the
    bytes counted are the bytes the IPC channel actually carried (with the
    shared-memory planes on, the result payload is an empty list and
    ``pickle.bytes_out`` collapses to its ~5-byte envelope), the seconds are
    a faithful re-run of the same work.
    """
    pid = os.getpid()
    prefix = f"worker.{pid}"
    metrics.add(f"{prefix}.units")
    if unit.dispatched_at is not None:
        wait = max(0.0, arrived - unit.dispatched_at)
        metrics.add(f"{prefix}.pool_wait.seconds", wait)
        metrics.observe("worker.pool_wait.seconds", wait)
    start = monotonic()
    bytes_in = len(pickle.dumps(unit, protocol=pickle.HIGHEST_PROTOCOL))
    seconds_in = monotonic() - start
    start = monotonic()
    bytes_out = len(pickle.dumps(rows, protocol=pickle.HIGHEST_PROTOCOL))
    seconds_out = monotonic() - start
    metrics.add(f"{prefix}.pickle.bytes_in", bytes_in)
    metrics.add(f"{prefix}.pickle.bytes_out", bytes_out)
    metrics.add(f"{prefix}.pickle.seconds_in", seconds_in)
    metrics.add(f"{prefix}.pickle.seconds_out", seconds_out)
    metrics.observe("worker.pickle.seconds", seconds_in + seconds_out)


def solve_unit(unit: WorkUnit) -> UnitOutcome:
    """Resolve one work unit (the process-pool entry point).

    Profiles each chain once, then runs every requested strategy on it —
    cell by cell on the python kernel, strategy-grouped through
    :func:`repro.core.registry.solve_batch` on the batch kernel.  An armed
    fault plan routes *fault-targeted* instances to the scalar per-cell
    path unconditionally (faults trigger per cell); the remaining instances
    of the same unit still go through the batch kernels.  With
    observability enabled on the unit, a fresh local context is built
    and activated for the duration — worker processes have no access to the
    engine's tracer, and thread-tier workers deliberately use the same
    ship-a-payload-home protocol so every tier aggregates identically.

    Process-tier units with metrics enabled additionally attribute their
    IPC costs (pool wait, pickle bytes/seconds in and out) to the worker's
    pid before the payload ships home — see :func:`_attribute_worker_costs`.

    Units carrying a plane descriptor publish their cells to the engine's
    shared-memory result planes and ship empty rows (plus their ``unit_id``
    so the engine knows which cells to harvest); the unit's measured solve
    wall rides along as planner feedback either way.
    """
    arrived = monotonic()
    if unit.kernel != "batch":
        solver = _solve_rows
    elif unit.faults is None:
        solver = _solve_rows_batch
    else:
        solver = _solve_rows_routed
    if unit.obs is None or not unit.obs.enabled:
        rows = solver(unit)
        solved_at = monotonic()
        shipped = _publish_to_planes(unit, rows)
        return UnitOutcome(
            rows=shipped,
            unit_id=unit.unit_id,
            seconds=solved_at - arrived,
        )
    context = unit.obs.create_context()
    with activate(context):
        with context.span(
            "unit", "engine", tier=unit.tier, instances=len(unit.pending)
        ):
            rows = solver(unit)
        solved_at = monotonic()
        shipped = _publish_to_planes(unit, rows)
        if unit.tier == "process" and context.metrics.enabled:
            _attribute_worker_costs(unit, shipped, arrived, context.metrics)
    return UnitOutcome(
        rows=shipped,
        obs=context.payload(),
        unit_id=unit.unit_id,
        seconds=solved_at - arrived,
    )


def units_from_groups(
    groups: Sequence[tuple[PendingInstance, ...]],
    resources: Resources,
    certify: bool = False,
    faults: "FaultPlan | None" = None,
    tier: str = "serial",
    obs: "ObsConfig | None" = None,
    kernel: str = "python",
    worker_memo: bool = False,
    planes: "PlaneDescriptor | None" = None,
) -> list[WorkUnit]:
    """Materialize planner groups (:func:`repro.engine.plan.plan_units`)
    into work units.

    Each unit's ``unit_id`` is its plan position — the handle the engine
    harvests shared-memory cells by.  Process-tier units built with metrics
    enabled carry a ``dispatched_at`` monotonic stamp so workers can
    attribute the dispatch-to-start (pool queueing) latency of each unit.
    """
    dispatched_at = (
        monotonic()
        if tier == "process" and obs is not None and obs.metrics
        else None
    )
    return [
        WorkUnit(
            pending=group,
            resources=resources,
            certify=certify,
            faults=faults,
            tier=tier,
            obs=obs,
            kernel=kernel,
            worker_memo=worker_memo,
            dispatched_at=dispatched_at,
            planes=planes,
            unit_id=unit_id,
        )
        for unit_id, group in enumerate(groups)
    ]


def chunk_pending(
    pending: Sequence[PendingInstance],
    resources: Resources,
    chunk_size: int,
    certify: bool = False,
    faults: "FaultPlan | None" = None,
    tier: str = "serial",
    obs: "ObsConfig | None" = None,
    kernel: str = "python",
    worker_memo: bool = False,
    planes: "PlaneDescriptor | None" = None,
) -> list[WorkUnit]:
    """Split pending instances into work units of at most ``chunk_size``.

    The fixed-row convenience chunker (tests and explicit ``chunk_size``
    overrides); the engine's default path plans cost-adaptive groups via
    :func:`repro.engine.plan.plan_units` and materializes them with
    :func:`units_from_groups`.
    """
    if chunk_size < 1:
        raise InvalidParameterError(f"chunk_size must be >= 1, got {chunk_size}")
    groups = [
        tuple(pending[i : i + chunk_size])
        for i in range(0, len(pending), chunk_size)
    ]
    return units_from_groups(
        groups,
        resources,
        certify=certify,
        faults=faults,
        tier=tier,
        obs=obs,
        kernel=kernel,
        worker_memo=worker_memo,
        planes=planes,
    )
