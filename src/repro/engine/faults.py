"""Deterministic fault injection for the campaign engine.

The resilience layer (:mod:`repro.engine.resilience`) is only trustworthy if
every one of its recovery paths is *provoked* under test, not just reasoned
about.  This module provides the provocation: a :class:`FaultPlan` is a
picklable, deterministic description of which scheduling instances fail, how,
and how many times.  Plans ride inside :class:`~repro.engine.batch.WorkUnit`
objects, so the same faults fire identically on the serial path, in thread
workers, and in freshly-spawned worker processes.

Fault kinds (:data:`FAULT_KINDS`):

* ``raise`` — raise :class:`InjectedFault` (a *transient* failure: the retry
  machinery is expected to recover).
* ``bug`` — raise a plain :class:`~repro.core.errors.SchedulingError` (a
  *deterministic* solver failure: retrying is useless, the instance must be
  quarantined).
* ``crash`` — hard-kill the worker with ``os._exit`` (surfaces as
  ``BrokenProcessPool`` on the process tier — the closest reproducible stand-in
  for an OOM-killed or segfaulted worker).
* ``hang`` — sleep for :attr:`FaultSpec.seconds` before solving (exercises the
  soft-deadline/timeout path).
* ``corrupt`` — let the solve finish, then *tamper with the claimed outcome*
  (period scaled by :attr:`FaultSpec.factor`).  Undetectable without
  ``--certify``; with it, :func:`repro.core.certify.certify_outcome` rejects
  the tampered claim — the test that proves the auditor earns its keep.
* ``interrupt`` — raise :class:`KeyboardInterrupt` (a Ctrl-C mid-campaign; the
  retry machinery must *not* swallow it).
* ``core_failure`` / ``core_recovery`` — *timed platform events* (see
  :data:`PLATFORM_FAULT_KINDS`): at simulated time :attr:`FaultSpec.at`,
  :attr:`FaultSpec.cores` cores of type :attr:`FaultSpec.core_type` go down
  (respectively come back).  These kinds never fire in the per-cell batch
  path — :meth:`FaultSpec.matches` is ``False`` for them — they are consumed
  by the discrete-event simulator (:mod:`repro.sim`), so one
  :class:`FaultPlan` can drive the batch engine and the simulator together.

Determinism: a fault fires based only on the instance fingerprint, strategy,
execution tier, and a firing counter — never on wall-clock or entropy.  The
counter lives in ``state_dir`` as one file per concrete instance (a byte
appended per firing), so "fail the first N attempts, then succeed" holds even
when attempts land in different worker processes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core.errors import InvalidParameterError, SchedulingError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.binary_search import ScheduleOutcome

__all__ = [
    "FAULT_KINDS",
    "PLATFORM_FAULT_KINDS",
    "InjectedFault",
    "FaultSpec",
    "FaultPlan",
]

#: Timed platform-event kinds, consumed by the simulator (never per-cell).
PLATFORM_FAULT_KINDS: tuple[str, ...] = (
    "core_failure",
    "core_recovery",
)

#: Recognized fault kinds (see module docstring).
FAULT_KINDS: tuple[str, ...] = (
    "raise",
    "bug",
    "crash",
    "hang",
    "corrupt",
    "interrupt",
    *PLATFORM_FAULT_KINDS,
)

#: Exit status used by ``crash`` faults (distinctive in worker post-mortems).
CRASH_EXIT_CODE: int = 13


class InjectedFault(SchedulingError):
    """A transient failure injected by a :class:`FaultPlan` (tests only)."""


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """One fault rule: *which* instances fail, *how*, and *how often*.

    Attributes:
        kind: one of :data:`FAULT_KINDS`.
        fingerprint: target chain fingerprint (``None`` matches every chain).
        strategy: target canonical strategy name (``None`` matches all).
        tiers: execution tiers the fault is armed on (``None`` = every tier);
            e.g. ``("process",)`` injects only in worker processes, so the
            thread/serial rungs of the degradation ladder run clean.
        times: firings per concrete ``(chain, strategy)`` instance before the
            fault disarms (1 = "fail once, then succeed").
        seconds: sleep duration of ``hang`` faults.
        factor: multiplier applied to the claimed period by ``corrupt``
            faults (0.5 claims an impossibly good schedule).
        at: simulated time of a timed platform event (``core_failure`` /
            ``core_recovery`` only; ignored by per-cell kinds).
        core_type: platform type index the timed event acts on.
        cores: number of cores the timed event takes down / brings back.
    """

    kind: str
    fingerprint: "str | None" = None
    strategy: "str | None" = None
    tiers: "tuple[str, ...] | None" = None
    times: int = 1
    seconds: float = 0.75
    factor: float = 0.5
    at: float = 0.0
    core_type: int = 0
    cores: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise InvalidParameterError(
                f"unknown fault kind {self.kind!r}; available: {FAULT_KINDS}"
            )
        if self.times < 1:
            raise InvalidParameterError(f"times must be >= 1, got {self.times}")
        if self.seconds < 0:
            raise InvalidParameterError(
                f"seconds must be >= 0, got {self.seconds}"
            )
        if self.factor <= 0:
            raise InvalidParameterError(
                f"factor must be > 0, got {self.factor}"
            )
        if self.at < 0:
            raise InvalidParameterError(f"at must be >= 0, got {self.at}")
        if self.core_type < 0:
            raise InvalidParameterError(
                f"core_type must be >= 0, got {self.core_type}"
            )
        if self.cores < 1:
            raise InvalidParameterError(
                f"cores must be >= 1, got {self.cores}"
            )

    @property
    def is_timed(self) -> bool:
        """True for timed platform events (simulator-only kinds)."""
        return self.kind in PLATFORM_FAULT_KINDS

    def matches(self, fingerprint: str, strategy: str, tier: str) -> bool:
        """Whether this rule targets the given instance on the given tier.

        Timed platform events never match a per-cell solve: they describe
        the *platform* over simulated time, not an instance, and are
        consumed by :mod:`repro.sim` instead.
        """
        if self.is_timed:
            return False
        if self.fingerprint is not None and self.fingerprint != fingerprint:
            return False
        if self.strategy is not None and self.strategy != strategy:
            return False
        if self.tiers is not None and tier not in self.tiers:
            return False
        return True

    def trigger(self) -> None:
        """Fire a pre-solve fault (``corrupt`` is applied post-solve instead)."""
        if self.kind == "raise":
            raise InjectedFault(
                f"injected transient fault (strategy={self.strategy}, "
                f"tiers={self.tiers})"
            )
        if self.kind == "bug":
            raise SchedulingError(
                "injected deterministic solver bug (retrying is useless)"
            )
        if self.kind == "interrupt":
            raise KeyboardInterrupt("injected Ctrl-C")
        if self.kind == "crash":
            os._exit(CRASH_EXIT_CODE)
        if self.kind == "hang":
            time.sleep(self.seconds)

    def corrupt(self, outcome: "ScheduleOutcome") -> "ScheduleOutcome":
        """Tamper with a finished outcome's claimed period."""
        return dataclasses.replace(outcome, period=outcome.period * self.factor)


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """An ordered set of fault rules plus a cross-process firing ledger.

    Attributes:
        specs: the rules, consulted in order; the first match wins.
        state_dir: directory holding one counter file per concrete
            ``(rule, chain, strategy)`` instance.  File size = firings so
            far, bumped by appending one byte — atomic enough for the
            engine's append-only usage, and shared by every worker process.
    """

    specs: tuple[FaultSpec, ...]
    state_dir: str

    def fire(
        self, fingerprint: str, strategy: str, tier: str
    ) -> "FaultSpec | None":
        """Consume one firing for the matching rule, if any remain.

        Returns the armed :class:`FaultSpec` (caller triggers/applies it) or
        ``None`` when no rule matches or the match is exhausted.
        """
        for index, spec in enumerate(self.specs):
            if not spec.matches(fingerprint, strategy, tier):
                continue
            if self._consume(index, fingerprint, strategy) < spec.times:
                return spec
            return None
        return None

    def targets(self, fingerprint: str, strategies: "tuple[str, ...]") -> bool:
        """Whether *any* rule could fire on this instance on *any* tier.

        Non-consuming (no ledger access) and deliberately tier-agnostic and
        firing-count-agnostic: the batch engine uses it to route instances a
        plan might touch through the scalar per-cell path, where the armed
        fault actually gets its :meth:`fire` consultation.  Over-approximating
        (routing an already-exhausted target to the scalar path) only costs
        the vectorized speedup for that instance — results stay identical.
        """
        for spec in self.specs:
            if spec.is_timed:
                continue
            if spec.fingerprint is not None and spec.fingerprint != fingerprint:
                continue
            if spec.strategy is not None and spec.strategy not in strategies:
                continue
            return True
        return False

    def platform_events(self) -> "tuple[FaultSpec, ...]":
        """The timed platform events, sorted by time (stable in spec order).

        This is the bridge to :mod:`repro.sim`: the simulator turns these
        into ``core_failure`` / ``core_recovery`` events on its clock, so a
        single plan drives per-cell solver faults *and* platform dynamics.
        """
        timed = [
            (spec.at, index, spec)
            for index, spec in enumerate(self.specs)
            if spec.is_timed
        ]
        timed.sort(key=lambda item: (item[0], item[1]))
        return tuple(spec for _, _, spec in timed)

    def firings(self, index: int, fingerprint: str, strategy: str) -> int:
        """How often rule ``index`` has fired for one concrete instance."""
        try:
            return os.path.getsize(self._ledger(index, fingerprint, strategy))
        except OSError:
            return 0

    def _ledger(self, index: int, fingerprint: str, strategy: str) -> str:
        token = f"{index}:{fingerprint}:{strategy}".encode()
        return os.path.join(
            self.state_dir, hashlib.sha256(token).hexdigest()[:24]
        )

    def _consume(self, index: int, fingerprint: str, strategy: str) -> int:
        """Record one firing; return the count *before* this one."""
        os.makedirs(self.state_dir, exist_ok=True)
        path = self._ledger(index, fingerprint, strategy)
        before = self.firings(index, fingerprint, strategy)
        with open(path, "ab") as ledger:
            ledger.write(b".")
        return before
