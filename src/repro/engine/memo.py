"""Memoization cache for scheduling-instance results.

A scheduling *instance* is fully determined by the chain's content
(weights + replicability — captured by
:attr:`repro.core.task.TaskChain.fingerprint`), the platform budget, and the
strategy.  Every strategy in the registry is a pure function of exactly that
data, so its ``(period, core usage)`` outcome can be cached and replayed
bitwise-identically.

The cache pays off whenever campaigns repeat instances: the figure drivers
re-run the Table I campaign verbatim (Fig. 1 uses the same nine scenarios),
ablations re-schedule the same populations, and ``repro all`` chains several
such drivers in one process.  With the cache, each distinct instance is
computed once per process.

Thread-safe; eviction is LRU.  The cache stores only the scalar outcome
triple (period, big cores, little cores) — a few dozen bytes per instance —
not solutions, so a million entries fit comfortably in memory.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, NamedTuple, Sequence

from ..core.chain_stats import ChainProfile
from ..core.task import TaskChain
from ..core.types import Resources

__all__ = [
    "InstanceResult",
    "MemoKey",
    "MemoStats",
    "MemoCache",
    "make_key",
    "DEFAULT_MAXSIZE",
]

#: Default cache capacity (instances); ~100 full paper campaigns.
DEFAULT_MAXSIZE: int = 500_000


class InstanceResult(NamedTuple):
    """The campaign-relevant outcome of one scheduling instance.

    ``extra_used`` carries per-type usage for type indices >= 2 on k-type
    platforms; it stays empty on the paper's two-type instances, so existing
    three-field constructions and comparisons are unaffected.
    """

    period: float
    big_used: int
    little_used: int
    extra_used: tuple[int, ...] = ()

    @property
    def usage(self) -> tuple[int, ...]:
        """Per-type usage vector, performant to efficient."""
        return (self.big_used, self.little_used, *self.extra_used)


#: ``(chain fingerprint, per-type budget counts, strategy name)``.
#:
#: The budget enters as the *full* counts tuple — the platform's type
#: signature — so a k-type budget whose first two counts match a two-type
#: one (e.g. ``(10, 10, 4)`` vs ``(10, 10)``) can never collide.
MemoKey = tuple[str, tuple[int, ...], str]


def make_key(
    chain: "TaskChain | ChainProfile", resources: Resources, strategy: str
) -> MemoKey:
    """Build the memo key of one scheduling instance.

    ``strategy`` must already be a canonical registry name (the engine
    resolves aliases before keying).
    """
    return (chain.fingerprint, resources.counts, strategy)


@dataclass(frozen=True, slots=True)
class MemoStats:
    """Cache counters snapshot.

    Attributes:
        hits: lookups answered from the cache.
        misses: lookups that required a solve.
        size: entries currently stored.
        maxsize: capacity before LRU eviction.
        evictions: entries dropped to respect ``maxsize``.
    """

    hits: int
    misses: int
    size: int
    maxsize: int
    evictions: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0 when untouched)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class MemoCache:
    """A bounded, thread-safe LRU cache of :class:`InstanceResult`.

    One instance is shared by the default campaign engine for the whole
    process; independent engines can carry private caches (or none).
    """

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._data: OrderedDict[MemoKey, InstanceResult] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get(self, key: MemoKey) -> InstanceResult | None:
        """Return the cached result, or None (counted as a miss)."""
        with self._lock:
            result = self._data.get(key)
            if result is None:
                self._misses += 1
                return None
            self._data.move_to_end(key)
            self._hits += 1
            return result

    def get_many(self, keys: "Sequence[MemoKey]") -> "list[InstanceResult | None]":
        """Bulk lookup under a single lock acquisition.

        Returns one entry per key, in order, with ``None`` for misses.  The
        hit/miss counters and LRU recency update exactly as the equivalent
        sequence of :meth:`get` calls would — bulk lookups are an overhead
        optimization (one lock round-trip per work unit instead of one per
        instance), never a semantic change
        (``tests/engine/test_memo.py``).
        """
        results: list[InstanceResult | None] = []
        with self._lock:
            for key in keys:
                result = self._data.get(key)
                if result is None:
                    self._misses += 1
                else:
                    self._data.move_to_end(key)
                    self._hits += 1
                results.append(result)
        return results

    def put(self, key: MemoKey, result: InstanceResult) -> None:
        """Insert (or refresh) one result, evicting LRU entries if full."""
        with self._lock:
            self._data[key] = result
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self._evictions += 1

    def put_many(
        self, items: "Iterable[tuple[MemoKey, InstanceResult]]"
    ) -> None:
        """Bulk insert under a single lock acquisition.

        Equivalent to :meth:`put` per item: every inserted key becomes
        most-recently-used in iteration order and LRU eviction respects
        ``maxsize`` (deferring eviction to the end of the batch drops the
        same entries as evicting after each insert, since fresh inserts are
        always at the MRU end).
        """
        with self._lock:
            for key, result in items:
                self._data[key] = result
                self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self._evictions += 1

    def warm(self, rows: "dict[MemoKey, InstanceResult]") -> int:
        """Bulk-insert rows (checkpoint replay); returns entries inserted.

        One lock acquisition for the whole batch — a resumed campaign can
        replay hundreds of thousands of journal rows in one call.
        """
        with self._lock:
            for key, result in rows.items():
                self._data[key] = result
                self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self._evictions += 1
        return len(rows)

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        with self._lock:
            self._data.clear()

    @property
    def stats(self) -> MemoStats:
        """A consistent snapshot of the cache counters."""
        with self._lock:
            return MemoStats(
                hits=self._hits,
                misses=self._misses,
                size=len(self._data),
                maxsize=self.maxsize,
                evictions=self._evictions,
            )
