"""Campaign execution engine: parallel fan-out + memoized scheduling.

Public API:

* :class:`~repro.engine.executor.CampaignEngine` — solve batches of
  ``(chain, budget, strategy)`` instances over a serial / thread / process
  backend, deterministically.
* :func:`~repro.engine.executor.default_engine` — the process-wide engine
  with a shared memo cache (what ``run_campaign`` uses).
* :class:`~repro.engine.memo.MemoCache` — the instance-result cache keyed by
  chain fingerprint + budget + strategy.
* :class:`~repro.engine.shm.ResultPlanes` /
  :class:`~repro.engine.shm.PlaneDescriptor` — the process tier's
  zero-pickle result transport (workers write solved cells straight into
  shared memory).
* :func:`~repro.engine.plan.plan_units` /
  :class:`~repro.engine.plan.AdaptiveCostModel` — deterministic
  cost-adaptive work-unit planning (DESIGN.md §16).
* :class:`~repro.engine.resilience.ResilienceConfig` /
  :class:`~repro.engine.resilience.RetryPolicy` — retries with deterministic
  backoff, soft deadlines, backend degradation, and per-instance quarantine
  (:class:`~repro.engine.resilience.FailureRecord`).
* :class:`~repro.engine.checkpoint.CheckpointJournal` — crash-safe JSONL
  checkpointing behind ``--resume``.
* :class:`~repro.engine.faults.FaultPlan` — deterministic fault injection
  used to prove every recovery path.
* Observability (``obs=`` on the engine): spans, counters, and worker
  payloads from :mod:`repro.obs`, merged exactly across tiers
  (:class:`~repro.engine.batch.UnitOutcome` carries them home).

See DESIGN.md §7 for the architecture and the determinism guarantee,
§9 for the resilience layer, and §10 for observability.
"""

from .batch import (
    PendingInstance,
    UnitOutcome,
    WorkUnit,
    chunk_pending,
    solve_instance,
    solve_unit,
    units_from_groups,
)
from .checkpoint import CheckpointJournal, load_journal
from .executor import (
    BACKENDS,
    KERNELS,
    CampaignEngine,
    StrategyArrays,
    default_engine,
    reset_default_engine,
    resolve_jobs,
)
from .faults import (
    FAULT_KINDS,
    PLATFORM_FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    InjectedFault,
)
from .memo import DEFAULT_MAXSIZE, InstanceResult, MemoCache, MemoStats, make_key
from .plan import DEFAULT_UNIT_WALL_S, AdaptiveCostModel, plan_units
from .resilience import (
    TIERS,
    FailureRecord,
    ResilienceConfig,
    ResilienceReport,
    RetryPolicy,
    is_transient,
)
from .shm import PlaneDescriptor, ResultPlanes

__all__ = [
    "BACKENDS",
    "KERNELS",
    "CampaignEngine",
    "StrategyArrays",
    "default_engine",
    "reset_default_engine",
    "resolve_jobs",
    "PendingInstance",
    "UnitOutcome",
    "WorkUnit",
    "chunk_pending",
    "solve_instance",
    "solve_unit",
    "units_from_groups",
    "DEFAULT_UNIT_WALL_S",
    "AdaptiveCostModel",
    "plan_units",
    "PlaneDescriptor",
    "ResultPlanes",
    "DEFAULT_MAXSIZE",
    "InstanceResult",
    "MemoCache",
    "MemoStats",
    "make_key",
    "CheckpointJournal",
    "load_journal",
    "FAULT_KINDS",
    "PLATFORM_FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "TIERS",
    "FailureRecord",
    "ResilienceConfig",
    "ResilienceReport",
    "RetryPolicy",
    "is_transient",
]
