"""Campaign execution engine: parallel fan-out + memoized scheduling.

Public API:

* :class:`~repro.engine.executor.CampaignEngine` — solve batches of
  ``(chain, budget, strategy)`` instances over a serial / thread / process
  backend, deterministically.
* :func:`~repro.engine.executor.default_engine` — the process-wide engine
  with a shared memo cache (what ``run_campaign`` uses).
* :class:`~repro.engine.memo.MemoCache` — the instance-result cache keyed by
  chain fingerprint + budget + strategy.

See DESIGN.md §7 for the architecture and the determinism guarantee.
"""

from .batch import PendingInstance, WorkUnit, chunk_pending, solve_instance, solve_unit
from .executor import (
    BACKENDS,
    CampaignEngine,
    StrategyArrays,
    default_engine,
    reset_default_engine,
    resolve_jobs,
)
from .memo import DEFAULT_MAXSIZE, InstanceResult, MemoCache, MemoStats, make_key

__all__ = [
    "BACKENDS",
    "CampaignEngine",
    "StrategyArrays",
    "default_engine",
    "reset_default_engine",
    "resolve_jobs",
    "PendingInstance",
    "WorkUnit",
    "chunk_pending",
    "solve_instance",
    "solve_unit",
    "DEFAULT_MAXSIZE",
    "InstanceResult",
    "MemoCache",
    "MemoStats",
    "make_key",
]
