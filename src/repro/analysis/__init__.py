"""Analysis toolkit: slowdowns, campaign statistics, heatmaps, rendering."""

from .gantt import render_gantt
from .heatmap import UsageHeatmap, usage_heatmap
from .slowdown import (
    OPTIMAL_TOLERANCE,
    SlowdownCdf,
    slowdown_cdf,
    slowdown_ratios,
)
from .stats import ScenarioStats, aggregate_scenario
from .tables import render_step_curves, render_table

__all__ = [
    "slowdown_ratios",
    "slowdown_cdf",
    "SlowdownCdf",
    "OPTIMAL_TOLERANCE",
    "ScenarioStats",
    "aggregate_scenario",
    "UsageHeatmap",
    "usage_heatmap",
    "render_table",
    "render_step_curves",
    "render_gantt",
]
