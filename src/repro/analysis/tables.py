"""Plain-text table and curve rendering for experiment reports.

The experiment drivers print their tables/figures to the terminal (no
plotting dependency).  :func:`render_table` aligns columns;
:func:`render_step_curves` draws CDF-style curves as ASCII art, enough to
eyeball the shapes of Fig. 1 next to the paper.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["render_table", "render_step_curves"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned monospace table.

    Args:
        headers: column headers.
        rows: table body; cells are stringified.
        title: optional title line.
    """
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))

    def fmt(row: Sequence[str]) -> str:
        return " | ".join(c.ljust(widths[i]) for i, c in enumerate(row))

    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append(sep)
    lines.extend(fmt(row) for row in cells)
    return "\n".join(lines)


def render_step_curves(
    curves: dict[str, tuple[np.ndarray, np.ndarray]],
    x_range: tuple[float, float],
    width: int = 72,
    height: int = 18,
    x_label: str = "slowdown",
    y_label: str = "cumulative fraction",
) -> str:
    """Draw step curves (e.g. CDFs) as ASCII art.

    Args:
        curves: name -> (x values, cumulative y in [0, 1]); each curve is a
            right-continuous step function.
        x_range: plotted abscissa interval.
        width: plot width in characters.
        height: plot height in characters.
        x_label: abscissa label.
        y_label: ordinate label.
    """
    if not curves:
        raise ValueError("need at least one curve")
    lo, hi = x_range
    if not (hi > lo):
        raise ValueError(f"invalid x range {x_range}")

    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#@%&"
    legend = []
    for (name, (xs, ys)), marker in zip(curves.items(), markers):
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        legend.append(f"{marker} = {name}")
        for col in range(width):
            x = lo + (hi - lo) * col / (width - 1)
            idx = np.searchsorted(xs, x, side="right") - 1
            y = 0.0 if idx < 0 else float(ys[idx])
            row = height - 1 - int(round(y * (height - 1)))
            row = min(max(row, 0), height - 1)
            if grid[row][col] == " ":
                grid[row][col] = marker

    lines = [f"{y_label} (1.0 top, 0.0 bottom)"]
    for r, row in enumerate(grid):
        frac = 1.0 - r / (height - 1)
        lines.append(f"{frac:4.2f} |" + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append(f"      {lo:<10.3g}{' ' * max(0, width - 22)}{hi:>10.3g}  ({x_label})")
    lines.append("      " + "   ".join(legend))
    return "\n".join(lines)
