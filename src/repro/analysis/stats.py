"""Campaign aggregation — the statistics of Table I.

For each (resources, stateless ratio, strategy) scenario the paper reports a
4-tuple of period statistics — percentage of optimal periods, average,
median and maximum slowdown — and the average number of big/little cores
used.  :class:`ScenarioStats` holds one such entry;
:func:`aggregate_scenario` computes it from raw campaign outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .slowdown import OPTIMAL_TOLERANCE, slowdown_ratios

__all__ = ["ScenarioStats", "aggregate_scenario"]


@dataclass(frozen=True, slots=True)
class ScenarioStats:
    """Table I cell: period statistics and core usage for one scenario.

    Attributes:
        strategy: canonical strategy name.
        num_chains: population size.
        percent_optimal: share of instances at the optimal period (in %).
        avg_slowdown: mean slowdown ratio.
        med_slowdown: median slowdown ratio.
        max_slowdown: maximum slowdown ratio.
        avg_big_used: mean number of big cores used.
        avg_little_used: mean number of little cores used.
    """

    strategy: str
    num_chains: int
    percent_optimal: float
    avg_slowdown: float
    med_slowdown: float
    max_slowdown: float
    avg_big_used: float
    avg_little_used: float

    def period_tuple(self) -> tuple[float, float, float, float]:
        """The paper's 4-tuple ``(% opt, avg, med, max)``."""
        return (
            self.percent_optimal,
            self.avg_slowdown,
            self.med_slowdown,
            self.max_slowdown,
        )

    def usage_pair(self) -> tuple[float, float]:
        """The paper's core-usage pair ``(b_used, l_used)``."""
        return (self.avg_big_used, self.avg_little_used)

    def render_period(self) -> str:
        """Paper-style period cell, e.g. ``( 99.2%, 1.00, 1.00, 1.14 )``."""
        return (
            f"( {self.percent_optimal:5.1f}%, {self.avg_slowdown:4.2f}, "
            f"{self.med_slowdown:4.2f}, {self.max_slowdown:4.2f} )"
        )

    def render_usage(self) -> str:
        """Paper-style usage cell, e.g. ``( 12.44, 3.91 )``."""
        return f"( {self.avg_big_used:5.2f}, {self.avg_little_used:5.2f} )"


def aggregate_scenario(
    strategy: str,
    periods: "np.ndarray | list[float]",
    optimal_periods: "np.ndarray | list[float]",
    big_used: "np.ndarray | list[int]",
    little_used: "np.ndarray | list[int]",
    tolerance: float = OPTIMAL_TOLERANCE,
) -> ScenarioStats:
    """Aggregate raw campaign outcomes into one Table I entry.

    Args:
        strategy: canonical strategy name.
        periods: achieved period per chain.
        optimal_periods: HeRAD's period per chain.
        big_used: big cores used per chain.
        little_used: little cores used per chain.
        tolerance: relative tolerance for counting a period as optimal.
    """
    ratios = slowdown_ratios(periods, optimal_periods)
    big = np.asarray(big_used, dtype=np.float64)
    little = np.asarray(little_used, dtype=np.float64)
    if big.shape != ratios.shape or little.shape != ratios.shape:
        raise ValueError("usage arrays must match the period arrays")
    return ScenarioStats(
        strategy=strategy,
        num_chains=int(ratios.size),
        percent_optimal=float((ratios <= 1.0 + tolerance).mean() * 100.0),
        avg_slowdown=float(ratios.mean()),
        med_slowdown=float(np.median(ratios)),
        max_slowdown=float(ratios.max()),
        avg_big_used=float(big.mean()),
        avg_little_used=float(little.mean()),
    )
