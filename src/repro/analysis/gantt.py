"""ASCII Gantt rendering of simulated pipeline executions.

Turns a :class:`~repro.streampu.simulator.SimulationResult` into a terminal
timeline: one row per pipeline stage, one column per time bucket, digits
showing which frame a stage is delivering.  Useful for eyeballing pipeline
fill, replication overlap, and bottleneck stalls in examples and docs.
"""

from __future__ import annotations

import numpy as np

from ..streampu.simulator import SimulationResult

__all__ = ["render_gantt"]


def render_gantt(
    result: SimulationResult,
    max_frames: int = 12,
    width: int = 78,
) -> str:
    """Render the first frames of a simulation as an ASCII timeline.

    Args:
        result: a simulation result.
        max_frames: how many leading frames to display (digits cycle 0-9).
        width: characters available for the time axis.

    Returns:
        A multi-line string; row ``stage i`` marks the bucket where each
        frame *leaves* the stage.
    """
    if max_frames < 1:
        raise ValueError("max_frames must be >= 1")
    finish = result.finish_times[:, :max_frames]
    horizon = float(finish.max())
    if horizon <= 0:
        raise ValueError("simulation produced no positive timestamps")
    scale = (width - 1) / horizon

    lines = [
        f"Gantt — first {finish.shape[1]} frames over "
        f"{horizon:.6g} time units ('3' = frame 3 leaves the stage)"
    ]
    for i, stage in enumerate(result.spec.stages):
        row = [" "] * width
        for f in range(finish.shape[1]):
            col = int(np.floor(finish[i, f] * scale))
            col = min(max(col, 0), width - 1)
            row[col] = str(f % 10)
        label = (
            f"s{i} x{stage.replicas}{stage.core_type.symbol}"
        )
        lines.append(f"{label:>8} |" + "".join(row))
    lines.append(f"{'':>8} +" + "-" * width)
    lines.append(f"{'':>9}0{'':>{width - 12}}{horizon:.6g}")
    return "\n".join(lines)
