"""Core-usage difference heatmaps (Fig. 2).

Fig. 2 compares FERTAC's resource usage against HeRAD's for one scenario:
each heatmap cell ``(delta_b, delta_l)`` counts the percentage of chains for
which FERTAC used ``delta_b`` more big cores and ``delta_l`` more little
cores than HeRAD (negative deltas mean fewer).  Two views are reported: all
chains, and only the chains where FERTAC reached the optimal period.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["UsageHeatmap", "usage_heatmap"]


@dataclass(frozen=True)
class UsageHeatmap:
    """A 2-D histogram of core-usage differences.

    Attributes:
        delta_big: sorted distinct big-core deltas (row labels).
        delta_little: sorted distinct little-core deltas (column labels).
        percent: ``percent[i, j]`` — share (in %) of chains with deltas
            ``(delta_big[i], delta_little[j])``.
        num_chains: population size.
    """

    delta_big: np.ndarray
    delta_little: np.ndarray
    percent: np.ndarray
    num_chains: int

    def at(self, delta_b: int, delta_l: int) -> float:
        """Percentage of chains at the given delta pair (0 if unseen)."""
        i = np.flatnonzero(self.delta_big == delta_b)
        j = np.flatnonzero(self.delta_little == delta_l)
        if i.size == 0 or j.size == 0:
            return 0.0
        return float(self.percent[i[0], j[0]])

    def share_within_extra_cores(self, extra: int) -> float:
        """Share (in %) of chains using at most ``extra`` extra cores total.

        The paper quotes e.g. "FERTAC uses at most 1 or 2 extra cores 59%
        and 83.1% of the times".
        """
        total = 0.0
        for i, db in enumerate(self.delta_big):
            for j, dl in enumerate(self.delta_little):
                if db + dl <= extra:
                    total += float(self.percent[i, j])
        return total

    def render(self) -> str:
        """Text rendering of the heatmap (rows: delta big, cols: delta little)."""
        header = "Δbig\\Δlittle " + " ".join(
            f"{int(d):>6}" for d in self.delta_little
        )
        lines = [header]
        for i, db in enumerate(self.delta_big):
            row = " ".join(f"{self.percent[i, j]:6.1f}" for j in range(self.percent.shape[1]))
            lines.append(f"{int(db):>11}  {row}")
        return "\n".join(lines)


def usage_heatmap(
    strategy_big: "np.ndarray | list[int]",
    strategy_little: "np.ndarray | list[int]",
    optimal_big: "np.ndarray | list[int]",
    optimal_little: "np.ndarray | list[int]",
    mask: "np.ndarray | None" = None,
    population: int | None = None,
) -> UsageHeatmap:
    """Build the usage-difference heatmap between a strategy and HeRAD.

    Args:
        strategy_big: big cores used by the strategy, per chain.
        strategy_little: little cores used by the strategy, per chain.
        optimal_big: big cores used by HeRAD, per chain.
        optimal_little: little cores used by HeRAD, per chain.
        mask: optional boolean selector (e.g. "only chains where the
            strategy reached the optimal period" for Fig. 2b).
        population: denominator for the percentages; defaults to the number
            of *selected* chains.  Fig. 2b keeps the full population as the
            denominator, so its cells report shares of all chains.
    """
    sb = np.asarray(strategy_big, dtype=np.int64)
    sl = np.asarray(strategy_little, dtype=np.int64)
    ob = np.asarray(optimal_big, dtype=np.int64)
    ol = np.asarray(optimal_little, dtype=np.int64)
    if not (sb.shape == sl.shape == ob.shape == ol.shape):
        raise ValueError("usage arrays must share one shape")
    if mask is not None:
        m = np.asarray(mask, dtype=bool)
        if m.shape != sb.shape:
            raise ValueError("mask must match the usage arrays")
        sb, sl, ob, ol = sb[m], sl[m], ob[m], ol[m]
    if sb.size == 0:
        raise ValueError("no chains selected for the heatmap")

    delta_b = sb - ob
    delta_l = sl - ol
    rows = np.unique(delta_b)
    cols = np.unique(delta_l)
    percent = np.zeros((rows.size, cols.size), dtype=np.float64)
    for db, dl in zip(delta_b, delta_l):
        i = int(np.searchsorted(rows, db))
        j = int(np.searchsorted(cols, dl))
        percent[i, j] += 1.0
    denominator = population if population is not None else delta_b.size
    if denominator <= 0:
        raise ValueError("population must be positive")
    percent *= 100.0 / denominator
    return UsageHeatmap(
        delta_big=rows, delta_little=cols, percent=percent, num_chains=int(delta_b.size)
    )
