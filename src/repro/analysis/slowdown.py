"""Slowdown ratios and cumulative distributions (Fig. 1).

HeRAD always achieves the minimal period, so strategies are compared through
their *slowdown ratio* ``P(S_other) / P(S_HeRAD)`` (Section VI-B).  The
cumulative distribution of that ratio over a chain population is the paper's
Fig. 1; :func:`slowdown_cdf` computes the exact step curve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["slowdown_ratios", "SlowdownCdf", "slowdown_cdf", "OPTIMAL_TOLERANCE"]

#: Relative tolerance under which a slowdown counts as "optimal".  Periods
#: are ratios of exact float sums, but the greedy binary search may stop an
#: epsilon away from the true optimum; the paper counts those as optimal.
OPTIMAL_TOLERANCE = 1e-9


def slowdown_ratios(
    periods: "np.ndarray | list[float]",
    optimal_periods: "np.ndarray | list[float]",
) -> np.ndarray:
    """Per-instance slowdown ratios ``P / P_opt``.

    Args:
        periods: a strategy's achieved periods.
        optimal_periods: HeRAD's periods on the same instances.

    Raises:
        ValueError: on length mismatch or non-positive optimal periods.
    """
    p = np.asarray(periods, dtype=np.float64)
    opt = np.asarray(optimal_periods, dtype=np.float64)
    if p.shape != opt.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {opt.shape}")
    if (opt <= 0).any():
        raise ValueError("optimal periods must be positive")
    return p / opt


@dataclass(frozen=True)
class SlowdownCdf:
    """An empirical cumulative distribution of slowdown ratios.

    Attributes:
        values: sorted distinct slowdown values (the step abscissae).
        cumulative: fraction of instances with slowdown <= the value.
    """

    values: np.ndarray
    cumulative: np.ndarray

    def at(self, slowdown: float) -> float:
        """Fraction of instances with ratio at most ``slowdown``."""
        idx = np.searchsorted(self.values, slowdown, side="right")
        if idx == 0:
            return 0.0
        return float(self.cumulative[idx - 1])

    @property
    def fraction_optimal(self) -> float:
        """Fraction of instances achieving the optimal period."""
        return self.at(1.0 + OPTIMAL_TOLERANCE)

    def quantile(self, q: float) -> float:
        """Smallest slowdown value reached by at least fraction ``q``."""
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        idx = int(np.searchsorted(self.cumulative, q, side="left"))
        idx = min(idx, self.values.size - 1)
        return float(self.values[idx])


def slowdown_cdf(ratios: "np.ndarray | list[float]") -> SlowdownCdf:
    """Build the empirical CDF of a set of slowdown ratios."""
    r = np.asarray(ratios, dtype=np.float64)
    if r.size == 0:
        raise ValueError("cannot build a CDF from no ratios")
    values, counts = np.unique(r, return_counts=True)
    cumulative = np.cumsum(counts) / r.size
    return SlowdownCdf(values=values, cumulative=cumulative)
