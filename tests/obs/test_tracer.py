"""Tests for the span tracer (repro.obs.tracer / repro.obs.span)."""

from __future__ import annotations

import pickle
import threading

from repro.obs import NULL_TRACER, Span, Tracer
from repro.obs.tracer import _iter_buffers_for_test


class TestSpanRecording:
    def test_single_span_has_duration_and_attrs(self):
        tracer = Tracer()
        with tracer.span("solve", "engine", strategy="herad", tier="serial"):
            pass
        (span,) = tracer.collect()
        assert span.name == "solve"
        assert span.category == "engine"
        assert span.end >= span.start
        assert span.duration == span.end - span.start
        assert span.attr_dict() == {"strategy": "herad", "tier": "serial"}
        assert span.parent_id is None
        assert span.depth == 0

    def test_nesting_links_parent_and_depth(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        spans = {span.name: span for span in tracer.collect()}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["inner"].depth == 1
        assert spans["outer"].depth == 0
        # The child closed first but collect() orders by start time.
        assert tracer.collect()[0].name == "outer"

    def test_siblings_share_a_parent(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        spans = {span.name: span for span in tracer.collect()}
        assert spans["a"].parent_id == spans["parent"].span_id
        assert spans["b"].parent_id == spans["parent"].span_id
        assert spans["a"].span_id != spans["b"].span_id

    def test_span_survives_exceptions(self):
        tracer = Tracer()
        try:
            with tracer.span("doomed"):
                raise ValueError("boom")
        except ValueError:
            pass
        (span,) = tracer.collect()
        assert span.name == "doomed"
        assert span.end >= span.start

    def test_clear_drops_spans(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.clear()
        assert tracer.collect() == ()


class TestThreading:
    def test_each_thread_gets_its_own_buffer(self):
        tracer = Tracer()

        def record(name):
            with tracer.span(name):
                pass

        threads = [
            threading.Thread(target=record, args=(f"t{i}",)) for i in range(4)
        ]
        with tracer.span("main"):
            pass
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        spans = tracer.collect()
        assert {span.name for span in spans} == {"main", "t0", "t1", "t2", "t3"}
        # One buffer per recording thread, one span each.  (Thread *idents*
        # may be reused by the OS, so tids are not asserted unique.)
        assert sorted(_iter_buffers_for_test(tracer)) == [1, 1, 1, 1, 1]

    def test_parenting_never_crosses_threads(self):
        tracer = Tracer()
        child_parent = []

        def record():
            with tracer.span("worker"):
                pass
            child_parent.append(
                next(s for s in tracer.collect() if s.name == "worker").parent_id
            )

        with tracer.span("ambient-on-main"):
            thread = threading.Thread(target=record)
            thread.start()
            thread.join()
        assert child_parent == [None]


class TestAbsorb:
    def test_absorbed_spans_interleave_by_start_time(self):
        local = Tracer()
        remote = Tracer()
        with remote.span("remote-early"):
            pass
        with local.span("local-late"):
            pass
        local.absorb(remote.collect())
        names = [span.name for span in local.collect()]
        assert names == ["remote-early", "local-late"]

    def test_absorb_remaps_colliding_ids_from_reused_workers(self):
        # A reused pool worker rebuilds its tracer per work unit, so two
        # payloads from the same pid arrive with identical span ids.  Absorb
        # must remap them or self-time attribution silently corrupts.
        parent = Tracer()
        payloads = []
        for _ in range(2):
            worker = Tracer()  # same pid (this process), ids restart at 1
            with worker.span("unit", "engine"):
                with worker.span("solve", "solve"):
                    pass
            payloads.append(worker.collect())
        for payload in payloads:
            parent.absorb(payload)

        spans = parent.collect()
        keys = [(span.pid, span.span_id) for span in spans]
        assert len(keys) == len(set(keys)) == 4
        # Nesting survives the remap: each solve's parent is its own unit.
        by_key = {(s.pid, s.span_id): s for s in spans}
        for span in spans:
            if span.name == "solve":
                assert by_key[(span.pid, span.parent_id)].name == "unit"

    def test_absorb_roots_spans_whose_parent_was_not_collected(self):
        worker = Tracer()
        with worker.span("outer"):
            with worker.span("inner"):
                pass
        orphan = [span for span in worker.collect() if span.name == "inner"]
        parent = Tracer()
        parent.absorb(orphan)
        (absorbed,) = parent.collect()
        assert absorbed.parent_id is None

    def test_spans_pickle_round_trip(self):
        tracer = Tracer()
        with tracer.span("unit", "engine", instances=3):
            pass
        spans = tracer.collect()
        restored = pickle.loads(pickle.dumps(spans))
        assert restored == spans
        assert isinstance(restored[0], Span)


class TestNullTracer:
    def test_null_tracer_records_nothing(self):
        with NULL_TRACER.span("anything", attr=1):
            pass
        assert NULL_TRACER.collect() == ()
        assert NULL_TRACER.enabled is False

    def test_null_scope_is_shared(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")
