"""Tests for the metrics registry (repro.obs.metrics)."""

from __future__ import annotations

import pickle
import threading

from repro.obs import NULL_METRICS, HistogramStats, MetricsRegistry


class TestCounters:
    def test_add_and_read(self):
        registry = MetricsRegistry()
        registry.add("memo.hits")
        registry.add("memo.hits", 4.0)
        assert registry.counter("memo.hits") == 5.0
        assert registry.counter("never.touched") == 0.0
        assert registry.counters() == {"memo.hits": 5.0}

    def test_concurrent_increments_are_exact(self):
        registry = MetricsRegistry()

        def bump():
            for _ in range(1000):
                registry.add("n")

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter("n") == 8000.0


class TestHistograms:
    def test_observe_tracks_count_total_min_max(self):
        registry = MetricsRegistry()
        for value in (3.0, 1.0, 2.0):
            registry.observe("solve.seconds.herad", value)
        ((name, stats),) = registry.snapshot().histograms
        assert name == "solve.seconds.herad"
        assert stats == HistogramStats(count=3, total=6.0, minimum=1.0, maximum=3.0)
        assert stats.mean == 2.0

    def test_merged_is_exact(self):
        a = HistogramStats(count=2, total=3.0, minimum=1.0, maximum=2.0)
        b = HistogramStats(count=1, total=5.0, minimum=5.0, maximum=5.0)
        merged = a.merged(b)
        assert merged == HistogramStats(count=3, total=8.0, minimum=1.0, maximum=5.0)

    def test_merged_with_empty_is_identity(self):
        stats = HistogramStats(count=2, total=3.0, minimum=1.0, maximum=2.0)
        empty = HistogramStats(count=0, total=0.0, minimum=0.0, maximum=0.0)
        assert stats.merged(empty) == stats
        assert empty.merged(stats) == stats


class TestSnapshotAndMerge:
    def test_snapshot_is_sorted_and_picklable(self):
        registry = MetricsRegistry()
        registry.add("z.last")
        registry.add("a.first")
        registry.set_gauge("pool.workers", 4.0)
        snapshot = registry.snapshot()
        assert [name for name, _ in snapshot.counters] == ["a.first", "z.last"]
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot

    def test_identical_state_pickles_to_identical_bytes(self):
        def build():
            registry = MetricsRegistry()
            registry.add("b")
            registry.add("a", 2.0)
            registry.observe("h", 1.5)
            return registry.snapshot()

        assert pickle.dumps(build()) == pickle.dumps(build())

    def test_split_work_merges_to_the_serial_answer(self):
        """Counters from two 'workers' merge to exactly one registry's view."""
        serial = MetricsRegistry()
        workers = [MetricsRegistry(), MetricsRegistry()]
        for i in range(10):
            serial.add("solve.count")
            serial.observe("latency", float(i))
            workers[i % 2].add("solve.count")
            workers[i % 2].observe("latency", float(i))
        merged = MetricsRegistry()
        for worker in workers:
            merged.merge(worker.snapshot())
        assert merged.snapshot() == serial.snapshot()

    def test_gauge_merge_is_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("jobs", 1.0)
        other = MetricsRegistry()
        other.set_gauge("jobs", 4.0)
        registry.merge(other.snapshot())
        assert dict(registry.snapshot().gauges) == {"jobs": 4.0}

    def test_empty_property(self):
        assert MetricsRegistry().snapshot().empty
        registry = MetricsRegistry()
        registry.add("x")
        assert not registry.snapshot().empty


class TestNullMetrics:
    def test_everything_is_a_no_op(self):
        NULL_METRICS.add("x")
        NULL_METRICS.set_gauge("g", 1.0)
        NULL_METRICS.observe("h", 1.0)
        assert NULL_METRICS.counter("x") == 0.0
        assert NULL_METRICS.counters() == {}
        assert NULL_METRICS.snapshot().empty
        assert NULL_METRICS.enabled is False
