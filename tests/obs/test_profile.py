"""Tests for self-time profiles and flamegraph export (repro.obs.profile)."""

from __future__ import annotations

import pytest

from repro.obs import (
    Span,
    Tracer,
    aggregate_self,
    collapsed_stacks,
    leaf_attribution,
    self_seconds,
    validate_flamegraph,
    write_flamegraph,
)


def _span(name, start, end, span_id, parent_id=None, pid=1, depth=0, category="x"):
    return Span(
        name=name,
        category=category,
        start=start,
        end=end,
        pid=pid,
        tid=1,
        span_id=span_id,
        parent_id=parent_id,
        depth=depth,
    )


def _forest():
    """campaign(0..10) > unit(1..9) > solve(2..5), solve(6..8); root2(20..21)."""
    return (
        _span("campaign", 0.0, 10.0, span_id=1),
        _span("unit", 1.0, 9.0, span_id=2, parent_id=1, depth=1),
        _span("solve", 2.0, 5.0, span_id=3, parent_id=2, depth=2),
        _span("solve", 6.0, 8.0, span_id=4, parent_id=2, depth=2),
        _span("io", 20.0, 21.0, span_id=5),
    )


class TestSelfTime:
    def test_self_is_duration_minus_direct_children(self):
        selfs = self_seconds(_forest())
        assert selfs[(1, 1)] == pytest.approx(2.0)  # campaign: 10 - unit's 8
        assert selfs[(1, 2)] == pytest.approx(3.0)  # unit: 8 - (3 + 2)
        assert selfs[(1, 3)] == pytest.approx(3.0)  # leaf: own duration
        assert selfs[(1, 5)] == pytest.approx(1.0)

    def test_self_times_partition_root_inclusive_time_exactly(self):
        spans = _forest()
        total_self = sum(self_seconds(spans).values())
        total_roots = sum(s.duration for s in spans if s.parent_id is None)
        assert total_self == pytest.approx(total_roots)

    def test_same_span_ids_in_different_pids_do_not_collide(self):
        spans = (
            _span("campaign", 0.0, 4.0, span_id=1, pid=1),
            _span("unit", 0.0, 4.0, span_id=1, pid=2),  # other process's root
            _span("solve", 1.0, 2.0, span_id=2, parent_id=1, pid=2, depth=1),
        )
        selfs = self_seconds(spans)
        assert selfs[(1, 1)] == pytest.approx(4.0)  # untouched by pid 2's child
        assert selfs[(2, 1)] == pytest.approx(3.0)

    def test_negative_residue_clamps_to_zero(self):
        spans = (
            _span("parent", 0.0, 1.0, span_id=1),
            # Child longer than parent: only possible via clock quirks.
            _span("child", 0.0, 1.5, span_id=2, parent_id=1, depth=1),
        )
        assert self_seconds(spans)[(1, 1)] == 0.0

    def test_aggregate_orders_by_self_time(self):
        stats = aggregate_self(_forest())
        assert [s.name for s in stats][:2] == ["solve", "unit"]
        by_name = {s.name: s for s in stats}
        assert by_name["solve"].count == 2
        assert by_name["solve"].inclusive_seconds == pytest.approx(5.0)
        assert by_name["solve"].self_seconds == pytest.approx(5.0)
        assert by_name["campaign"].inclusive_seconds == pytest.approx(10.0)
        assert by_name["campaign"].self_seconds == pytest.approx(2.0)


class TestCollapsedStacks:
    def test_stack_paths_and_microsecond_values(self):
        stacks = collapsed_stacks(_forest())
        assert stacks == {
            "campaign": 2_000_000,
            "campaign;unit": 3_000_000,
            "campaign;unit;solve": 5_000_000,
            "io": 1_000_000,
        }

    def test_orphan_spans_root_their_own_stacks(self):
        spans = (_span("solve", 0.0, 1.0, span_id=7, parent_id=99, depth=2),)
        assert collapsed_stacks(spans) == {"solve": 1_000_000}

    def test_frame_names_are_sanitized(self):
        spans = (_span("a b;c", 0.0, 1.0, span_id=1),)
        assert list(collapsed_stacks(spans)) == ["a_b:c"]


class TestFlamegraphFile:
    def test_write_and_validate_round_trip(self, tmp_path):
        path = tmp_path / "flame.txt"
        count = write_flamegraph(str(path), _forest())
        lines = path.read_text().splitlines()
        assert count == len(lines) == 4
        assert validate_flamegraph(lines, _forest()) == []
        assert leaf_attribution(lines, _forest()) == pytest.approx(1.0)

    def test_validator_rejects_bad_grammar(self):
        spans = _forest()
        errors = validate_flamegraph(["campaign -3"], spans)
        assert any("grammar" in error for error in errors)

    def test_validator_rejects_foreign_roots(self):
        spans = _forest()
        lines = [
            "campaign 2000000",
            "campaign;unit 3000000",
            "campaign;unit;solve 5000000",
            "io 500000",
            "mystery;frame 500000",
        ]
        errors = validate_flamegraph(lines, spans)
        assert any("mystery" in error for error in errors)

    def test_validator_enforces_the_attribution_floor(self):
        spans = _forest()
        errors = validate_flamegraph(["campaign 1000000"], spans)
        assert any("95%" in error for error in errors)

    def test_traced_campaign_spans_validate_end_to_end(self, tmp_path):
        tracer = Tracer()
        with tracer.span("campaign", "campaign"):
            for _ in range(3):
                with tracer.span("solve", "solve"):
                    sum(range(50_000))
        spans = tracer.collect()
        path = tmp_path / "flame.txt"
        write_flamegraph(str(path), spans)
        lines = path.read_text().splitlines()
        assert validate_flamegraph(lines, spans) == []
        assert leaf_attribution(lines, spans) >= 0.95
