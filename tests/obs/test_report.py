"""Tests for the end-of-run report (repro.obs.report) and the ambient context."""

from __future__ import annotations

from repro.obs import (
    NULL_CONTEXT,
    MetricsRegistry,
    MetricsSnapshot,
    Observability,
    ObsConfig,
    RunReport,
    Tracer,
    activate,
    counter_add,
    current,
)
from repro.obs.context import histogram_observe


def _snapshot(**counters):
    registry = MetricsRegistry()
    for name, value in counters.items():
        registry.add(name.replace("__", "."), value)
    return registry.snapshot()


class TestRunReport:
    def test_sinks_aggregate_and_sort_by_total(self):
        tracer = Tracer()
        with tracer.span("campaign", "campaign"):
            for _ in range(3):
                with tracer.span("solve", "solve"):
                    pass
        report = RunReport.from_parts(tracer.collect(), MetricsSnapshot(), 1.0)
        assert report.sinks[0].name == "campaign"  # outermost = largest inclusive
        solve = next(sink for sink in report.sinks if sink.name == "solve")
        assert solve.count == 3
        assert solve.mean_seconds * 3 == solve.total_seconds

    def test_memo_hit_rate(self):
        report = RunReport.from_parts(
            (), _snapshot(memo__hits=9.0, memo__misses=1.0), 1.0
        )
        assert report.memo_hits == 9.0
        assert report.memo_hit_rate == 0.9
        assert "memo: 9/10 hits (90.0%)" in report.render()

    def test_zero_lookups_is_not_a_division(self):
        report = RunReport.from_parts((), MetricsSnapshot(), 1.0)
        assert report.memo_hit_rate == 0.0

    def test_render_reports_failures(self):
        report = RunReport.from_parts(
            (),
            _snapshot(resilience__retries=5.0, resilience__quarantined=1.0),
            2.0,
        )
        rendered = report.render()
        assert rendered.startswith("== Run report ==")
        assert "failures: 1 quarantined, 5 retries, 0 degradations" in rendered

    def test_render_clean_run(self):
        report = RunReport.from_parts((), MetricsSnapshot(), 0.5)
        rendered = report.render()
        assert "failures: none" in rendered
        assert "no spans recorded" in rendered

    def test_from_observability(self):
        obs = Observability(ObsConfig(trace=True, metrics=True))
        with obs.span("campaign", "campaign"):
            pass
        obs.metrics.add("memo.hits", 2.0)
        report = RunReport.from_observability(obs, 1.5)
        assert report.wall_seconds == 1.5
        assert report.memo_hits == 2.0
        assert report.sinks[0].name == "campaign"


class TestAmbientContext:
    def test_default_is_null(self):
        assert current() is NULL_CONTEXT
        counter_add("ignored")  # must not raise, must not record anywhere

    def test_activate_scopes_the_context(self):
        obs = Observability(ObsConfig(metrics=True))
        with activate(obs.context()):
            assert current() is obs.context()
            counter_add("binary_search.calls")
            histogram_observe("latency", 0.25)
        assert current() is NULL_CONTEXT
        assert obs.metrics.counter("binary_search.calls") == 1.0

    def test_activation_restores_prior_context_on_error(self):
        obs = Observability(ObsConfig(metrics=True))
        try:
            with activate(obs.context()):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert current() is NULL_CONTEXT

    def test_disabled_observability_activates_null(self):
        obs = Observability()
        assert obs.enabled is False
        assert obs.context() is NULL_CONTEXT
        assert obs.worker_config() is None

    def test_worker_payload_round_trip(self):
        config = ObsConfig(trace=True, metrics=True)
        context = config.create_context()
        with activate(context):
            with context.span("unit", "engine"):
                counter_add("solve.count")
        payload = context.payload()
        assert not payload.empty
        home = Observability(config)
        home.absorb(payload)
        assert home.metrics.counter("solve.count") == 1.0
        assert [span.name for span in home.spans()] == ["unit"]
